"""Tier-2 perf smoke: the execution-backend layer must not regress.

Runs ``scripts/bench_dbengine.py --quick`` in-process and asserts the
deterministic gates — result digests bit-identical across 1/2/4
reader threads (and across backends when more than one is installed),
exactly one pool checkout per query, zero execution errors, and exact
``data_version``/pool-refresh counters around an ``apply_write``.
Wall-clock figures (thread speedup, scan times, the DuckDB-vs-SQLite
scan ratio) are recorded for trend tracking but never gated; the full
``scripts/bench_dbengine.py`` run refreshes the tracked
``BENCH_dbengine.json`` at the repo root (which this quick smoke
therefore does *not* overwrite).  When DuckDB is absent the document
records it as unavailable and the gates still pass — hermetic CI needs
no optional engine.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_dbengine", REPO_ROOT / "scripts" / "bench_dbengine.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_dbengine_quick_smoke(tmp_path):
    bench_dbengine = _load_bench_module()
    out = tmp_path / "BENCH_dbengine.json"
    exit_code = bench_dbengine.main(["--quick", "--out", str(out)])
    assert exit_code == 0

    result = json.loads(out.read_text())
    assert result["quick"]
    assert result["gates_ok"]
    # The default engine is always measured; every one of its
    # deterministic gates must hold.
    sqlite_stage = result["concurrent_reads"]["sqlite"]
    assert sqlite_stage["available"]
    assert all(sqlite_stage["gates"].values())
    # Exactly one pool checkout per query at every thread count — the
    # read path never bypasses the pool and never double-executes.
    for doc in sqlite_stage["passes"].values():
        assert doc["checkouts"] == sqlite_stage["queries"]
        assert doc["errors"] == 0
    # Refresh semantics around a write are exact: one version bump, the
    # write visible to the very next read, one replica refresh paid.
    refresh = result["refresh"]["sqlite"]
    assert all(refresh["gates"].values())
    assert refresh["version_delta"] == 1
    # The scan stage agrees across every installed backend.
    assert all(result["scan"]["gates"].values())
    assert result["cross_backend_digest_identical"]
    # Optional engines degrade to an honest "not measured" record.
    for stage_name in ("concurrent_reads", "refresh"):
        for doc in result[stage_name].values():
            assert doc.get("available") is not None


def test_tracked_dbengine_document_gates_hold():
    """The committed BENCH_dbengine.json must itself pass its gates."""
    tracked = json.loads((REPO_ROOT / "BENCH_dbengine.json").read_text())
    assert tracked["gates_ok"]
    assert tracked["cross_backend_digest_identical"]
