"""Table 5 — Accuracy vs LLM economy on the Spider-like and BIRD-like dev sets.

Regenerates tokens/query, $/query, EX, and EX/avg-cost for the
prompt-based methods and asserts the paper's Finding 9: C3SQL (GPT-3.5)
is by far the most cost-effective, DIN-SQL the least; self-consistency
raises cost over plain DAIL-SQL; SuperSQL uses fewer tokens than DIN-SQL
while achieving higher EX.
"""

from repro.core.economy import economy_table, most_cost_effective
from repro.core.report import format_table
from repro.methods.zoo import method_config

SPIDER_PROMPT_METHODS = ["C3SQL", "DINSQL", "DAILSQL", "DAILSQL(SC)", "SuperSQL"]
BIRD_PROMPT_METHODS = ["C3SQL", "DAILSQL", "DAILSQL(SC)", "SuperSQL"]


def _regenerate(spider_bundle, bird_bundle):
    spider_rows = economy_table(
        spider_bundle.reports(SPIDER_PROMPT_METHODS),
        backbones={m: method_config(m).backbone for m in SPIDER_PROMPT_METHODS},
    )
    bird_rows = economy_table(
        bird_bundle.reports(BIRD_PROMPT_METHODS),
        backbones={m: method_config(m).backbone for m in BIRD_PROMPT_METHODS},
    )
    return spider_rows, bird_rows


def test_table5_llm_economy(benchmark, spider_bundle, bird_bundle):
    spider_bundle.reports(SPIDER_PROMPT_METHODS)
    bird_bundle.reports(BIRD_PROMPT_METHODS)
    spider_rows, bird_rows = benchmark(_regenerate, spider_bundle, bird_bundle)

    for label, rows in (("Spider-like", spider_rows), ("BIRD-like", bird_rows)):
        print()
        print(format_table(
            ["Method", "LLM", "Tok/query", "$/query", "EX", "EX/$"],
            [[r.method, r.backbone, f"{r.avg_tokens:.0f}", f"{r.avg_cost:.4f}",
              f"{r.ex:.1f}", f"{r.ex_per_cost:.0f}"] for r in rows],
            title=f"Table 5 ({label}): Accuracy vs LLM economy",
        ))

    spider = {row.method: row for row in spider_rows}
    bird = {row.method: row for row in bird_rows}

    # Finding 9: GPT-3.5 pricing makes C3 the most cost-effective.
    assert most_cost_effective(spider_rows).method == "C3SQL"
    assert most_cost_effective(bird_rows).method == "C3SQL"

    # DIN-SQL is the least cost-effective GPT-4 method (huge prompts).
    gpt4_rows = [row for row in spider_rows if row.backbone == "gpt-4"]
    assert min(gpt4_rows, key=lambda r: r.ex_per_cost).method == "DINSQL"
    assert spider["DINSQL"].avg_tokens == max(r.avg_tokens for r in spider_rows)

    # Self-consistency costs more than the plain variant.
    assert spider["DAILSQL(SC)"].avg_cost > spider["DAILSQL"].avg_cost
    assert bird["DAILSQL(SC)"].avg_cost > bird["DAILSQL"].avg_cost

    # SuperSQL: fewer tokens than DIN-SQL, higher EX than every baseline.
    assert spider["SuperSQL"].avg_tokens < spider["DINSQL"].avg_tokens
    assert spider["SuperSQL"].ex >= max(
        spider[m].ex for m in SPIDER_PROMPT_METHODS if m != "SuperSQL"
    )

    # BIRD prompts are bigger than Spider prompts (wider schemas).
    assert bird["DAILSQL"].avg_tokens > spider["DAILSQL"].avg_tokens

    # Token magnitudes in the paper's ballpark (within ~2.5x).
    assert 2000 < spider["C3SQL"].avg_tokens < 14000
    assert 3500 < spider["DINSQL"].avg_tokens < 24000
    assert 300 < spider["DAILSQL"].avg_tokens < 2300
