"""Shared benchmark fixtures: datasets and lazily-cached method reports.

Datasets and evaluations are expensive, so they are built once per session
and shared across every table/figure benchmark.  Individual benchmarks
time the *regeneration* of their artifact (aggregation over cached
records) and assert the paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.core.metrics import MethodReport
from repro.core.parallel import ParallelEvaluator
from repro.datagen.benchmark import (
    Dataset,
    bird_like_config,
    build_benchmark,
    spider_like_config,
)
from repro.methods.zoo import build_method

SPIDER_SCALE = 0.45
BIRD_SCALE = 0.9


class ReportBundle:
    """Lazily evaluates and caches method reports on one dataset."""

    def __init__(self, dataset: Dataset, measure_timing: bool) -> None:
        self.dataset = dataset
        # The parallel engine shards each method's examples across workers
        # and shares one gold-execution precompute across all methods.
        self.evaluator = ParallelEvaluator(
            dataset, measure_timing=measure_timing, timing_repeats=3
        )
        self._reports: dict[str, MethodReport] = {}

    def close(self) -> None:
        self.evaluator.close()

    def report(self, method_name: str) -> MethodReport:
        if method_name not in self._reports:
            method = build_method(method_name)
            self._reports[method_name] = self.evaluator.evaluate_method(method)
        return self._reports[method_name]

    def reports(self, method_names: list[str]) -> dict[str, MethodReport]:
        return {name: self.report(name) for name in method_names}


@pytest.fixture(scope="session")
def spider_dataset() -> Dataset:
    dataset = build_benchmark(spider_like_config(scale=SPIDER_SCALE))
    yield dataset
    dataset.close()


@pytest.fixture(scope="session")
def bird_dataset() -> Dataset:
    dataset = build_benchmark(bird_like_config(scale=BIRD_SCALE))
    yield dataset
    dataset.close()


@pytest.fixture(scope="session")
def spider_bundle(spider_dataset) -> ReportBundle:
    bundle = ReportBundle(spider_dataset, measure_timing=True)
    yield bundle
    bundle.close()


@pytest.fixture(scope="session")
def bird_bundle(bird_dataset) -> ReportBundle:
    bundle = ReportBundle(bird_dataset, measure_timing=True)
    yield bundle
    bundle.close()
