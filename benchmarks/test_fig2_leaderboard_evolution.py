"""Figure 2 — Evolution of PLM- and LLM-based models on the Spider leaderboard.

Regenerates the two best-so-far envelopes over the historical submission
records and asserts the figure's story: PLM progress plateaus in the high
70s while the LLM line, starting Feb 2023 at comparable accuracy, climbs
past it and ends clearly on top.
"""

from repro.core.report import (
    format_table,
    leaderboard_timeline,
    timeline_series,
)


def _regenerate():
    return {
        "plm": timeline_series("plm"),
        "llm": timeline_series("llm"),
    }


def test_fig2_leaderboard_evolution(benchmark):
    series = benchmark(_regenerate)

    rows = []
    for kind, points in series.items():
        for date, value in points:
            rows.append([kind.upper(), date, f"{value:.1f}"])
    print()
    print(format_table(
        ["Family", "Date", "Best-so-far EX"],
        rows,
        title="Figure 2: Spider leaderboard evolution (test-set EX)",
    ))

    plm, llm = series["plm"], series["llm"]

    # Envelopes are monotone non-decreasing.
    for points in (plm, llm):
        values = [v for __, v in points]
        assert values == sorted(values)

    # The first LLM entry is comparable to the contemporary PLM SOTA
    # (DIN-SQL + CodeX, Feb 2023).
    first_llm = llm[0][1]
    plm_at_that_time = max(v for date, v in plm if date <= llm[0][0])
    assert abs(first_llm - plm_at_that_time) < 5.0

    # The gap then widens: final LLM SOTA clearly exceeds final PLM SOTA.
    assert llm[-1][1] - plm[-1][1] > 5.0

    # PLM timeline starts years earlier.
    assert min(e.date for e in leaderboard_timeline("plm")) < "2022"
