"""Figure 6 — per-method EX heatmap over SQL characteristics (Spider-like).

Regenerates the method x subset matrix behind Figure 6's heatmap and
asserts the per-method observations the paper draws from it: DIN-SQL is
the best prompt method on JOIN queries, RESDSQL-3B+NatSQL the best PLM on
JOIN queries (both use NatSQL), and subquery subsets are the weakest cell
for most methods.
"""

from repro.core.report import format_table
from repro.methods.zoo import CORE_SPIDER_METHODS

SUBSETS = {
    "with_subquery": lambda r: r.has_subquery,
    "without_subquery": lambda r: not r.has_subquery,
    "with_join": lambda r: r.has_join,
    "without_join": lambda r: not r.has_join,
    "with_connector": lambda r: r.has_logical_connector,
    "without_connector": lambda r: not r.has_logical_connector,
    "with_order_by": lambda r: r.has_order_by,
    "without_order_by": lambda r: not r.has_order_by,
}


def _regenerate(bundle):
    matrix = {}
    for name in CORE_SPIDER_METHODS:
        report = bundle.report(name)
        matrix[name] = {
            subset: report.subset(predicate).ex
            for subset, predicate in SUBSETS.items()
        }
    return matrix


def test_fig6_spider_characteristic_heatmap(benchmark, spider_bundle):
    spider_bundle.reports(CORE_SPIDER_METHODS)
    matrix = benchmark(_regenerate, spider_bundle)

    print()
    print(format_table(
        ["Method", *SUBSETS.keys()],
        [[name] + [f"{matrix[name][s]:.1f}" for s in SUBSETS] for name in matrix],
        title="Figure 6: EX heatmap over SQL characteristics (Spider-like)",
    ))

    prompt_methods = ["C3SQL", "DINSQL", "DAILSQL", "DAILSQL(SC)"]

    # DIN-SQL's NatSQL IR makes it the strongest prompt method on JOINs.
    join_scores = {m: matrix[m]["with_join"] for m in prompt_methods}
    assert join_scores["DINSQL"] >= max(join_scores.values()) - 3.0

    # RESDSQL+NatSQL beats plain RESDSQL on JOIN queries.
    assert (
        matrix["RESDSQL-3B + NatSQL"]["with_join"]
        >= matrix["RESDSQL-3B"]["with_join"] - 2.0
    )

    # Subqueries are the weakest characteristic for a majority of methods.
    weakest_is_subquery = sum(
        1
        for name in matrix
        if matrix[name]["with_subquery"]
        <= min(
            matrix[name]["with_join"],
            matrix[name]["with_connector"],
            matrix[name]["with_order_by"],
        )
        + 8.0
    )
    assert weakest_is_subquery >= len(matrix) // 2

    # All cells are valid percentages over non-empty subsets.
    for name, row in matrix.items():
        for subset, value in row.items():
            assert 0.0 <= value <= 100.0, (name, subset)
