"""Figure 11 — EX after SFT vs the base model's HumanEval score (Exp-5).

Fine-tunes the five open-source 7B-class LLMs with the SQL-style
zero-shot prompt (Figure 10) and regenerates the (HumanEval, EX-after-SFT)
scatter.  Asserts Finding 8: a positive correlation between coding
ability before SFT and NL2SQL accuracy after SFT — and that SFT improves
over zero-shot for every base model.
"""

from repro.core.report import format_table
from repro.llm.registry import get_profile

BASE_MODELS = ["llama2-7b", "llama3-8b", "starcoder-7b", "codellama-7b",
               "deepseek-coder-7b"]


def _pearson(xs, ys):
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs) ** 0.5
    var_y = sum((y - mean_y) ** 2 for y in ys) ** 0.5
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y)


def _regenerate(bundle):
    rows = {}
    for backbone in BASE_MODELS:
        sft = bundle.report(f"SFT {backbone}")
        zero_shot = bundle.report(f"ZS {backbone}")
        rows[backbone] = {
            "humaneval": get_profile(backbone).humaneval * 100,
            "ex_sft": sft.ex,
            "ex_zero_shot": zero_shot.ex,
        }
    return rows


def test_fig11_sft_vs_humaneval(benchmark, spider_bundle):
    for backbone in BASE_MODELS:
        spider_bundle.report(f"SFT {backbone}")
        spider_bundle.report(f"ZS {backbone}")
    rows = benchmark(_regenerate, spider_bundle)

    print()
    print(format_table(
        ["Base model", "HumanEval", "EX (zero-shot)", "EX (after SFT)"],
        [[name, f"{row['humaneval']:.1f}", f"{row['ex_zero_shot']:.1f}",
          f"{row['ex_sft']:.1f}"] for name, row in rows.items()],
        title="Figure 11: EX after SFT vs base-model HumanEval (Spider-like dev)",
    ))

    # SFT improves every base model (the paper's bar-pair structure).
    for name, row in rows.items():
        assert row["ex_sft"] > row["ex_zero_shot"], name

    # Finding 8: positive correlation between HumanEval and EX after SFT.
    humaneval = [row["humaneval"] for row in rows.values()]
    ex_after = [row["ex_sft"] for row in rows.values()]
    correlation = _pearson(humaneval, ex_after)
    print(f"Pearson r(HumanEval, EX after SFT) = {correlation:.3f}")
    assert correlation > 0.35

    # The extremes line up: Deepseek-Coder (best HumanEval) beats
    # Llama2 (worst HumanEval) after SFT.
    assert rows["deepseek-coder-7b"]["ex_sft"] > rows["llama2-7b"]["ex_sft"]
