"""Tier-2 perf smoke: the parallel engine must not regress.

Runs ``scripts/bench_eval.py --quick`` in-process: times sequential vs
parallel vs warm-cache evaluation on a small dataset, asserts the
warm-cache run performs zero predictions and is not slower than the
sequential loop, and writes ``BENCH_eval.json`` so future PRs can track
the perf trajectory.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_eval", REPO_ROOT / "scripts" / "bench_eval.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_eval_quick_smoke(tmp_path):
    bench_eval = _load_bench_module()
    out = tmp_path / "BENCH_eval.json"
    exit_code = bench_eval.main(["--quick", "--out", str(out)])
    assert exit_code == 0

    result = json.loads(out.read_text())
    assert result["records_identical"]
    assert result["warm_stats"]["predictions"] == 0
    assert (
        result["seconds"]["parallel_warm"]
        <= result["seconds"]["sequential"] * 1.10
    )
    # Refresh the tracked trajectory file at the repo root.
    (REPO_ROOT / "BENCH_eval.json").write_text(json.dumps(result, indent=2) + "\n")
