"""Tier-2 perf smoke: the parallel engine and hot-path caches must not regress.

Runs ``scripts/bench_eval.py --quick`` in-process: times sequential vs
parallel vs warm-cache evaluation on a small dataset and enforces the
stage-level perf gates — the warm-cache run performs zero predictions
and is not slower than the sequential loop, the hot-path memo layers are
bit-identical on vs off and register hits (deterministic counters, not
wall-clock ratios), and with the few-shot retrieval index the
``fewshot`` stage stays below a 10% share of median traced stage time.
Writes ``BENCH_eval.json`` so future PRs can track the perf trajectory.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_eval", REPO_ROOT / "scripts" / "bench_eval.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_eval_quick_smoke(tmp_path):
    bench_eval = _load_bench_module()
    out = tmp_path / "BENCH_eval.json"
    exit_code = bench_eval.main(["--quick", "--out", str(out)])
    assert exit_code == 0

    result = json.loads(out.read_text())
    assert result["records_identical"]
    assert result["cache_records_identical"]
    assert result["warm_stats"]["predictions"] == 0
    assert (
        result["seconds"]["parallel_warm"]
        <= result["seconds"]["sequential"] * 1.10
    )
    # Stage-level perf gate: the retrieval index + selection memo keep the
    # fewshot stage a single-digit share of traced stage time.  The share
    # is computed from per-stage medians across the traced passes, so one
    # noisy pass on a loaded host cannot trip it.
    fewshot_share = result["tracing"]["stage_share_pct"].get("fewshot", 0.0)
    assert fewshot_share < bench_eval.FEWSHOT_SHARE_BOUND_PCT
    # The memo and inference-engine layers must demonstrably engage —
    # gated on deterministic hit counters, not wall-clock ratios, which
    # flake under CI load.  (The old decode-stage memo gate is gone:
    # batched decoding does one intent lookup per example instead of one
    # per draw, so the prefix/batch counters are the load-bearing ones.)
    assert result["tracing"]["stage_memo_hits"].get("fewshot", 0) > 0
    assert result["tracing"]["prefix_hits"] > 0
    assert result["tracing"]["llm_batched_calls"] > 0
    assert (
        result["tracing"]["llm_batch_draws"]
        >= result["tracing"]["llm_batched_calls"]
    )
    # The warm-cache and hot-path speedups must stay in the trajectory
    # file for trend tracking; their magnitudes are reported, not gated.
    assert result["speedup"]["parallel_warm"] > 0
    assert result["speedup"]["hot_path_caches"] > 0
    assert "fewshot" in result["tracing"]["cache_stage_speedup"]
    # Refresh the tracked trajectory file at the repo root.
    (REPO_ROOT / "BENCH_eval.json").write_text(json.dumps(result, indent=2) + "\n")
