"""Figure 14 / §5.3 — the NL2SQL360-AAS case study.

Runs the genetic design-space search (GPT-3.5 backbone, EX target metric,
paper probabilities p_swap=0.5, p_mutate=0.2; population/generations
scaled down from N=10/T=20 for runtime) and asserts the case study's
outcome: the search converges, the discovered individual beats a plain
zero-shot pipeline, and — promoted to GPT-4 — it is competitive with the
hand-rolled SuperSQL composition and beats the strongest baseline.
"""

import pytest

from repro.core.aas import AASConfig, run_aas
from repro.core.design_space import SearchSpace
from repro.methods.base import MethodGroup, PipelineMethod


def _search(bundle, examples):
    config = AASConfig(
        population_size=6,
        generations=5,
        swap_probability=0.5,
        mutation_probability=0.2,
        metric="ex",
        seed=17,
    )
    return run_aas(SearchSpace(), bundle.evaluator, examples, config)


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_fig14_aas_case_study(benchmark, spider_bundle):
    examples = spider_bundle.dataset.dev_examples[:60]
    result = benchmark.pedantic(
        _search, args=(spider_bundle, examples), rounds=1, iterations=1
    )

    print()
    print("Best-of-generation EX:", [f"{v:.1f}" for v in result.best_per_generation])
    print("Discovered composition:", result.best.assignment)
    print(f"Distinct individuals evaluated: {result.evaluations}")

    # The search improves (or at worst holds) across generations.
    series = result.best_per_generation
    assert series[-1] >= series[0]

    # The best individual beats a bare zero-shot GPT-3.5 pipeline.
    bare_config = SearchSpace().to_config("bare", {
        "schema_linking": None, "db_content": None, "prompting": "zero_shot",
        "multi_step": None, "intermediate": None, "post_processing": None,
    })
    bare = spider_bundle.evaluator.evaluate_method(
        PipelineMethod(bare_config, MethodGroup.PROMPT_LLM), examples=examples
    )
    assert result.best.fitness >= bare.ex

    # Promote the discovered composition to GPT-4 (as the paper does for
    # SuperSQL) and compare on the full dev set.
    promoted_config = SearchSpace(backbone="gpt-4").to_config(
        "aas-best@gpt4", result.best.assignment
    )
    promoted = spider_bundle.evaluator.evaluate_method(
        PipelineMethod(promoted_config, MethodGroup.HYBRID)
    )
    supersql = spider_bundle.report("SuperSQL")
    strongest_baseline = max(
        spider_bundle.report(name).ex for name in ("DAILSQL", "DAILSQL(SC)", "DINSQL")
    )
    print(f"Promoted pipeline EX: {promoted.ex:.1f} | SuperSQL: {supersql.ex:.1f} "
          f"| strongest baseline: {strongest_baseline:.1f}")

    # The promoted search product is competitive with SuperSQL and beats
    # the strongest prompt baseline (paper: +3.4 EX over DAILSQL(SC)).
    assert promoted.ex >= strongest_baseline - 2.0
    assert abs(promoted.ex - supersql.ex) < 8.0
