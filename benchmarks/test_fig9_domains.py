"""Figure 9 — EX across data domains and the role of in-domain training data.

Regenerates (a) the per-domain EX matrix over the Spider-like dev set and
(b) the data-rich vs data-poor comparison behind Finding 7: fine-tuned
methods win in domains with many training databases (College,
Competition, Transportation), while prompt-based methods are relatively
stronger in domains with no training data at all.
"""

from repro.core.report import format_table
from repro.datagen.benchmark import SPIDER_TRAIN_DB_COUNTS

METHODS = ["DAILSQL", "DAILSQL(SC)", "C3SQL",
           "SFT CodeS-7B", "SFT CodeS-15B", "RESDSQL-3B", "RESDSQL-3B + NatSQL"]
FINETUNED = ["SFT CodeS-7B", "SFT CodeS-15B", "RESDSQL-3B", "RESDSQL-3B + NatSQL"]
PROMPT = ["DAILSQL", "DAILSQL(SC)", "C3SQL"]

RICH_DOMAINS = ["college", "competition", "transportation"]
POOR_DOMAINS = ["pets", "hr", "events"]  # zero training databases


def _regenerate(bundle):
    domains = sorted({e.domain for e in bundle.dataset.dev_examples})
    matrix = {}
    for name in METHODS:
        report = bundle.report(name)
        matrix[name] = {domain: report.by_domain(domain).ex for domain in domains}

    def bucket_mean(names, bucket_domains):
        values = [
            matrix[name][domain]
            for name in names
            for domain in bucket_domains
            if domain in matrix[name]
        ]
        return sum(values) / len(values)

    summary = {
        "finetuned_rich": bucket_mean(FINETUNED, RICH_DOMAINS),
        "finetuned_poor": bucket_mean(FINETUNED, POOR_DOMAINS),
        "prompt_rich": bucket_mean(PROMPT, RICH_DOMAINS),
        "prompt_poor": bucket_mean(PROMPT, POOR_DOMAINS),
    }
    return matrix, summary


def test_fig9_domain_adaptation(benchmark, spider_bundle):
    spider_bundle.reports(METHODS)
    matrix, summary = benchmark(_regenerate, spider_bundle)

    domains = sorted(next(iter(matrix.values())))
    print()
    print(format_table(
        ["Method", *domains],
        [[name] + [f"{matrix[name][d]:.0f}" for d in domains] for name in matrix],
        title="Figure 9(a): EX per data domain (Spider-like dev)",
    ))
    print()
    print(format_table(
        ["Bucket", "Fine-tuned EX", "Prompt EX"],
        [
            ["data-rich domains", f"{summary['finetuned_rich']:.1f}", f"{summary['prompt_rich']:.1f}"],
            ["zero-train domains", f"{summary['finetuned_poor']:.1f}", f"{summary['prompt_poor']:.1f}"],
        ],
        title="Figure 9(b): in-domain training data drives fine-tuned methods",
    ))

    # Config sanity: the rich/poor buckets reflect the train-DB allocation.
    for domain in RICH_DOMAINS:
        assert SPIDER_TRAIN_DB_COUNTS[domain] >= 7
    for domain in POOR_DOMAINS:
        assert SPIDER_TRAIN_DB_COUNTS[domain] == 0

    # Finding 7 crossover: fine-tuned methods benefit from in-domain data —
    # their edge over prompt methods is larger (or their deficit smaller)
    # in data-rich domains than in zero-train domains.
    rich_gap = summary["finetuned_rich"] - summary["prompt_rich"]
    poor_gap = summary["finetuned_poor"] - summary["prompt_poor"]
    assert rich_gap > poor_gap

    # Fine-tuned methods themselves do better in-domain than out-of-domain.
    assert summary["finetuned_rich"] > summary["finetuned_poor"]

    # No clear winner across *all* domains: each family wins somewhere.
    finetuned_wins = 0
    prompt_wins = 0
    for domain in domains:
        best_ft = max(matrix[m][domain] for m in FINETUNED)
        best_prompt = max(matrix[m][domain] for m in PROMPT)
        if best_ft > best_prompt:
            finetuned_wins += 1
        elif best_prompt > best_ft:
            prompt_wins += 1
    assert finetuned_wins > 0 and prompt_wins > 0
