"""Table 7 — Valid Efficiency Score (VES) on both dev sets.

VES weighs each correctly-answered query by sqrt(T_gold / T_pred), using
real SQLite execution timings.  Asserts Finding 11's shape: VES roughly
tracks EX (a correct answer is a prerequisite), harder subsets score
lower, there is no clear LLM/PLM winner, and SuperSQL posts the top
overall VES (paper: 99.18 Spider / 61.99 BIRD).
"""

from repro.core.report import format_table
from repro.methods.zoo import CORE_SPIDER_METHODS

HARDNESS = ("easy", "medium", "hard", "extra")


def _regenerate(bundle):
    table = {}
    for name in CORE_SPIDER_METHODS:
        report = bundle.report(name)
        row = {"all": report.ves}
        for level in HARDNESS:
            row[level] = report.by_hardness(level).ves
        table[name] = row
    return table


def test_table7_valid_efficiency_score(benchmark, spider_bundle, bird_bundle):
    spider_bundle.reports(CORE_SPIDER_METHODS)
    table = benchmark(_regenerate, spider_bundle)

    print()
    print(format_table(
        ["Method", *[level.title() for level in HARDNESS], "All"],
        [[name] + [f"{table[name][level]:.1f}" for level in HARDNESS]
         + [f"{table[name]['all']:.1f}"] for name in CORE_SPIDER_METHODS],
        title="Table 7(a): VES on the Spider-like dev set",
    ))

    bird_reports = bird_bundle.reports(["C3SQL", "DAILSQL(SC)", "SFT CodeS-7B",
                                        "RESDSQL-3B", "SuperSQL"])
    print()
    print(format_table(
        ["Method", "VES (all)"],
        [[name, f"{report.ves:.1f}"] for name, report in bird_reports.items()],
        title="Table 7(b): VES on the BIRD-like dev set",
    ))

    # VES tracks EX: correct answers are a prerequisite, and the sqrt
    # timing weight hovers around 1 for plan-equivalent predictions.
    ex_values = []
    ves_values = []
    for name in CORE_SPIDER_METHODS:
        report = spider_bundle.report(name)
        assert table[name]["all"] >= 0
        assert abs(table[name]["all"] - report.ex) < 45.0, name
        ex_values.append(report.ex)
        ves_values.append(table[name]["all"])
    # Rank agreement between EX and VES across methods (Spearman-flavour).
    ex_rank = {name: rank for rank, name in enumerate(
        sorted(CORE_SPIDER_METHODS, key=lambda n: -spider_bundle.report(n).ex))}
    ves_rank = {name: rank for rank, name in enumerate(
        sorted(CORE_SPIDER_METHODS, key=lambda n: -table[n]["all"]))}
    disagreement = sum(
        abs(ex_rank[name] - ves_rank[name]) for name in CORE_SPIDER_METHODS
    ) / len(CORE_SPIDER_METHODS)
    assert disagreement < 5.0

    # SuperSQL's VES is in the top band (paper Table 7: best overall).
    best = max(row["all"] for row in table.values())
    assert table["SuperSQL"]["all"] >= best - 12.0

    # BIRD VES is far below Spider VES for every shared method.
    for name, bird_report in bird_reports.items():
        assert bird_report.ves < table[name]["all"], name
