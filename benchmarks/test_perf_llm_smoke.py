"""Tier-2 perf smoke: the inference-engine hot paths must not regress.

Runs ``scripts/bench_llm.py --quick`` in-process: times the prompt-prefix
cache (cold/warm/uncached) and batched vs sequential decoding on a small
dataset and enforces the deterministic gates — byte-identical prompts
with exact summed token counts, bit-identical records across the
batching switch, and the engagement counters (``prefix_hits`` and one
``llm_batched_calls`` per decode, exactly).  Wall-clock numbers are
recorded in ``BENCH_llm.json`` for trend tracking, never gated.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_llm", REPO_ROOT / "scripts" / "bench_llm.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_llm_quick_smoke(tmp_path):
    bench_llm = _load_bench_module()
    out = tmp_path / "BENCH_llm.json"
    exit_code = bench_llm.main(["--quick", "--out", str(out)])
    assert exit_code == 0

    result = json.loads(out.read_text())
    # Correctness gates: the engine layers must be invisible in results.
    assert result["prefix_cache"]["byte_identical"]
    assert result["prefix_cache"]["token_counts_exact"]
    assert result["batching"]["records_identical"]
    # Engagement gates — deterministic counters, not wall-clock ratios.
    # Every (method, example) decode routes its draws through exactly one
    # batched model call; repair and PICARD top-ups go through the
    # unbatched path, so the count is exact, not a lower bound.
    assert result["batching"]["llm_batched_calls"] == (
        len(result["methods"]) * result["dev_examples"]
    )
    assert result["batching"]["llm_batch_draws"] >= (
        result["batching"]["llm_batched_calls"]
    )
    assert result["batching"]["prefix_hits"] > 0
    # Warm prefix passes must be pure hits: every segment kind registers
    # hits and the warm passes add no misses beyond the cold pass's
    # (one miss per distinct key, all incurred cold).
    for kind in ("overhead", "schema", "fewshot"):
        stats = result["prefix_cache"]["segment_stats"][kind]
        assert stats["hits"] > 0
        assert stats["misses"] <= stats["hits"]
    # The serving scheduler must actually open decode windows.
    assert result["serving"]["decode_windows"] > 0
    assert result["serving"]["decode_draws"] >= result["serving"]["decode_windows"]
    # Wall-clock speedups stay in the trajectory file; magnitudes are
    # reported, not gated.
    assert result["prefix_cache"]["warm_speedup_vs_cold"] > 0
    assert result["batching"]["batched_speedup"] > 0
    # Refresh the tracked trajectory file at the repo root.
    (REPO_ROOT / "BENCH_llm.json").write_text(json.dumps(result, indent=2) + "\n")
