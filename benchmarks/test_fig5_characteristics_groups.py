"""Figure 5 — EX vs SQL characteristics by method group, Spider & BIRD.

Regenerates the group-level distributions (prompt LLMs, fine-tuned LLMs,
fine-tuned PLMs) over the with/without subsets of the four
characteristics and asserts the paper's findings 2-5:

* with subqueries, LLM-based methods beat PLM-based methods, prompt-based
  GPT-4 methods strongest of all;
* with logical connectors, LLM-based methods lead;
* with JOINs, LLM-based methods lead;
* ORDER BY: mixed on Spider, LLM lead on BIRD (generalization).
"""

from repro.core.report import format_table
from repro.methods.base import MethodGroup
from repro.methods.zoo import CORE_BIRD_METHODS, CORE_SPIDER_METHODS, METHOD_GROUPS

CHARACTERISTICS = ("subquery", "logical_connector", "join", "order_by")

_FLAG = {
    "subquery": "has_subquery",
    "logical_connector": "has_logical_connector",
    "join": "has_join",
    "order_by": "has_order_by",
}


def _group_of(name: str) -> str:
    return METHOD_GROUPS[name].value


def _regenerate(bundle, methods):
    """group -> characteristic -> (with_ex, without_ex) averaged over methods."""
    sums: dict[tuple, list[float]] = {}
    for name in methods:
        if name == "SuperSQL":
            continue
        report = bundle.report(name)
        group = _group_of(name)
        for characteristic in CHARACTERISTICS:
            flag = _FLAG[characteristic]
            with_subset = report.subset(lambda r, f=flag: getattr(r, f))
            without_subset = report.subset(lambda r, f=flag: not getattr(r, f))
            if len(with_subset):
                sums.setdefault((group, characteristic, True), []).append(with_subset.ex)
            if len(without_subset):
                sums.setdefault((group, characteristic, False), []).append(without_subset.ex)
    return {
        key: sum(values) / len(values) for key, values in sums.items()
    }


def test_fig5_characteristics_by_group(benchmark, spider_bundle, bird_bundle):
    spider_bundle.reports([m for m in CORE_SPIDER_METHODS if m != "SuperSQL"])
    bird_bundle.reports([m for m in CORE_BIRD_METHODS if m != "SuperSQL"])

    def regenerate_both():
        return (
            _regenerate(spider_bundle, CORE_SPIDER_METHODS),
            _regenerate(bird_bundle, CORE_BIRD_METHODS),
        )

    spider, bird = benchmark(regenerate_both)

    for label, data in (("Spider-like", spider), ("BIRD-like", bird)):
        rows = []
        for characteristic in CHARACTERISTICS:
            for group in ("llm_prompt", "llm_finetuned", "plm"):
                with_ex = data.get((group, characteristic, True), float("nan"))
                without_ex = data.get((group, characteristic, False), float("nan"))
                rows.append([characteristic, group, f"{with_ex:.1f}", f"{without_ex:.1f}"])
        print()
        print(format_table(
            ["Characteristic", "Group", "EX (with)", "EX (without)"],
            rows,
            title=f"Figure 5 ({label}): EX vs SQL characteristics by group",
        ))

    margin = 4.0  # group averages are much more stable than single methods

    def llm_best(data, characteristic, present=True):
        return max(
            data[("llm_prompt", characteristic, present)],
            data[("llm_finetuned", characteristic, present)],
        )

    for data in (spider, bird):
        # Finding 2: subqueries — LLMs beat PLMs.
        assert llm_best(data, "subquery") > data[("plm", "subquery", True)] - margin
        # Finding 3: logical connectors — LLMs lead.
        assert llm_best(data, "logical_connector") > data[
            ("plm", "logical_connector", True)
        ] - margin
        # Finding 4: JOINs — LLMs lead.
        assert llm_best(data, "join") > data[("plm", "join", True)] - margin

    # The GPT-4-prompting edge on subqueries is a Spider-side observation
    # (on BIRD the prompt group's mean is dragged down by GPT-3.5's C3SQL).
    assert (
        spider[("llm_prompt", "subquery", True)]
        >= spider[("plm", "subquery", True)] - margin
    )

    # Finding 5 (ORDER BY): LLMs lead on BIRD; Spider is mixed, so no
    # Spider-side assertion beyond sanity.
    assert llm_best(bird, "order_by") > bird[("plm", "order_by", True)] - margin

    # Subqueries are the hardest characteristic for every group (paper:
    # "all methods perform worst in cases with subqueries").
    for group in ("llm_prompt", "llm_finetuned", "plm"):
        assert (
            spider[(group, "subquery", True)]
            <= spider[(group, "subquery", False)] + margin
        )
