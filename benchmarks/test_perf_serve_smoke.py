"""Tier-2 perf smoke: the online serving engine must not regress.

Runs ``scripts/bench_serve.py --quick`` in-process and asserts the
deterministic gates — every served response bit-identical to the
offline evaluator's record, open-loop coalescing exact (hits equal
requests minus distinct keys), every read routed through the connection
pool, zero timeouts on the no-deadline runs, full-workload timeouts
under the zero-deadline degradation run, and exact response-cache
counters (cold misses, warm hits, data_version invalidation, zero
stale serves).  Wall-clock speedups are
recorded for trend tracking but the tier-2 gate is counter-based; the
hard 3x-at-concurrency-8 speedup gate is enforced by the full
``scripts/bench_serve.py`` run that refreshes the tracked
``BENCH_serve.json`` at the repo root (which this quick smoke therefore
does *not* overwrite).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_serve", REPO_ROOT / "scripts" / "bench_serve.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_serve_quick_smoke(tmp_path):
    bench_serve = _load_bench_module()
    out = tmp_path / "BENCH_serve.json"
    exit_code = bench_serve.main(["--quick", "--out", str(out)])
    assert exit_code == 0

    result = json.loads(out.read_text())
    assert result["quick"]
    # Correctness under concurrency: every response matched the offline
    # evaluator's record, across all concurrency levels and both loops.
    assert result["responses_identical"]
    assert result["timeouts_total"] == 0
    # Coalescing is exact under the open loop: all requests are queued
    # before the scheduler resumes, so duplicates must all coalesce.
    coalesce = result["coalesce"]
    assert coalesce["open_hits_at_8"] == coalesce["expected_open_hits"]
    assert coalesce["expected_open_hits"] == (
        result["requests"] - result["distinct_keys"]
    )
    # Every read went through the per-database pool (query_only replicas).
    assert result["pool"]["checkouts"] > 0
    assert result["pool"]["created"] >= 1
    # Graceful degradation: a zero deadline times every request out with a
    # typed response instead of hanging, and the engine recovers.
    degradation = result["degradation"]
    assert degradation["timeouts"] == degradation["requests"]
    assert degradation["recovered_ok"]
    # Response cache: the open-loop passes pause submission, so the
    # hit/miss counters are schedule-independent and gate exactly.
    cache = result["response_cache"]
    assert cache["enabled"]
    assert cache["cold"]["cache_hits"] == 0
    assert cache["cold"]["cache_misses"] == result["requests"]
    assert cache["warm"]["cache_hits"] == result["requests"]
    assert cache["warm"]["cache_misses"] == 0
    assert cache["warm"]["served_cached"] == result["requests"]
    # Whitespace/case variants of cached questions still hit (shared
    # normalize_question key).
    assert cache["variant_probes"]["hits"] == cache["variant_probes"]["requests"]
    # data_version invalidation: the mutated database's entries are all
    # purged (counter matches the distinct affected keys), the replay
    # hits exactly the unaffected entries, recomputes exactly the
    # affected ones, and never serves a stale record.
    invalidation = cache["invalidation"]
    assert invalidation["invalidated_entries"] == invalidation["expected_invalidated"]
    assert invalidation["expected_invalidated"] > 0
    assert invalidation["replay_hits"] == invalidation["unaffected_requests"]
    assert invalidation["replay_misses"] == invalidation["affected_requests"]
    assert invalidation["stale_serves"] == 0
    # The semantic-key probe rides along as a risk measurement, never a
    # gate: it reports collision and mismatch counts.
    semantic = cache["semantic"]
    assert semantic["distinct_semantic_keys"] <= semantic["distinct_base_keys"]
    assert semantic["warm_hits"] == result["requests"]
    # Throughput numbers ride along for trend tracking; the quick run
    # reports them but only the full run gates on the 3x speedup (and
    # the 10x warm-cache speedup).
    assert result["serial"]["throughput_rps"] > 0
    for level in ("1", "4", "8"):
        assert result["concurrency"][level]["closed"]["throughput_rps"] > 0
    assert result["speedup_at_8"] > 0
    assert cache["warm_speedup_vs_off"] > 0
