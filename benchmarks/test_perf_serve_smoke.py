"""Tier-2 perf smoke: the online serving engine must not regress.

Runs ``scripts/bench_serve.py --quick`` in-process and asserts the
deterministic gates — every served response bit-identical to the
offline evaluator's record, open-loop coalescing exact (hits equal
requests minus distinct keys), every read routed through the connection
pool, zero timeouts on the no-deadline runs, and full-workload timeouts
under the zero-deadline degradation run.  Wall-clock speedups are
recorded for trend tracking but the tier-2 gate is counter-based; the
hard 3x-at-concurrency-8 speedup gate is enforced by the full
``scripts/bench_serve.py`` run that refreshes the tracked
``BENCH_serve.json`` at the repo root (which this quick smoke therefore
does *not* overwrite).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_serve", REPO_ROOT / "scripts" / "bench_serve.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_serve_quick_smoke(tmp_path):
    bench_serve = _load_bench_module()
    out = tmp_path / "BENCH_serve.json"
    exit_code = bench_serve.main(["--quick", "--out", str(out)])
    assert exit_code == 0

    result = json.loads(out.read_text())
    assert result["quick"]
    # Correctness under concurrency: every response matched the offline
    # evaluator's record, across all concurrency levels and both loops.
    assert result["responses_identical"]
    assert result["timeouts_total"] == 0
    # Coalescing is exact under the open loop: all requests are queued
    # before the scheduler resumes, so duplicates must all coalesce.
    coalesce = result["coalesce"]
    assert coalesce["open_hits_at_8"] == coalesce["expected_open_hits"]
    assert coalesce["expected_open_hits"] == (
        result["requests"] - result["distinct_keys"]
    )
    # Every read went through the per-database pool (query_only replicas).
    assert result["pool"]["checkouts"] > 0
    assert result["pool"]["created"] >= 1
    # Graceful degradation: a zero deadline times every request out with a
    # typed response instead of hanging, and the engine recovers.
    degradation = result["degradation"]
    assert degradation["timeouts"] == degradation["requests"]
    assert degradation["recovered_ok"]
    # Throughput numbers ride along for trend tracking; the quick run
    # reports them but only the full run gates on the 3x speedup.
    assert result["serial"]["throughput_rps"] > 0
    for level in ("1", "4", "8"):
        assert result["concurrency"][level]["closed"]["throughput_rps"] > 0
    assert result["speedup_at_8"] > 0
