"""Figure 3 — NL2SQL models from different angles (intro motivating figure).

Four panels: (a) a specific data domain, (b) JOIN-only queries, (c)
nested-only queries, (d) query-variance testing.  The asserted story is
Example 1's: *one size does not fit all* — the per-angle winners are not
all the same method, fine-tuned methods lead the domain panel, and
prompt-based GPT-4 methods lead the nested panel.
"""

from repro.core.filter import DatasetFilter
from repro.core.qvt import qvt_score
from repro.core.report import format_table

PANEL_METHODS = ["DAILSQL", "DAILSQL(SC)", "SFT CodeS-7B", "RESDSQL-3B + NatSQL",
                 "Graphix-3B + PICARD"]
FINETUNED = {"SFT CodeS-7B", "RESDSQL-3B + NatSQL", "Graphix-3B + PICARD"}


def _regenerate(bundle):
    dev_filter = DatasetFilter(bundle.dataset.dev_examples)
    domain_ids = {e.example_id for e in dev_filter.domain("competition")}
    join_ids = {e.example_id for e in dev_filter.with_join()}
    nested_ids = {e.example_id for e in dev_filter.with_subquery()}
    panels: dict[str, dict[str, float]] = {
        "competition_domain": {}, "join_only": {}, "nested_only": {}, "qvt": {},
    }
    for name in PANEL_METHODS:
        report = bundle.report(name)
        panels["competition_domain"][name] = report.by_example_ids(domain_ids).ex
        panels["join_only"][name] = report.by_example_ids(join_ids).ex
        panels["nested_only"][name] = report.by_example_ids(nested_ids).ex
        panels["qvt"][name] = qvt_score(report)
    return panels


def test_fig3_multi_angle_comparison(benchmark, spider_bundle):
    spider_bundle.reports(PANEL_METHODS)
    panels = benchmark(_regenerate, spider_bundle)

    print()
    print(format_table(
        ["Method", *panels.keys()],
        [[name] + [f"{panels[panel][name]:.1f}" for panel in panels]
         for name in PANEL_METHODS],
        title="Figure 3: multi-angle comparison (Spider-like dev, EX/QVT)",
    ))

    winners = {panel: max(scores, key=scores.get) for panel, scores in panels.items()}
    print("Panel winners:", winners)

    # "One size does not fit all": at least two different winners.
    assert len(set(winners.values())) >= 2

    # Panel (a): a fine-tuned method tops the domain-specific panel
    # (paper: RESDSQL-3B+NatSQL beats DAIL-SQL in Competition).
    assert winners["competition_domain"] in FINETUNED

    # Panel (c): prompt-based GPT-4 methods lead on nested queries
    # (paper Finding 2), with a small tolerance.
    nested = panels["nested_only"]
    best_prompt = max(nested["DAILSQL"], nested["DAILSQL(SC)"])
    best_finetuned = max(nested[m] for m in FINETUNED)
    assert best_prompt >= best_finetuned - 6.0

    # Panel (d): every method's QVT is high (both families handle
    # variants reasonably), in the paper's 60-90 band.
    for name in PANEL_METHODS:
        assert 55.0 <= panels["qvt"][name] <= 100.0, name
