"""Figure 8 — QVT vs EX scatter (Exp-3).

Regenerates each method's (EX, QVT) pair on the Spider-like dev set and
asserts Finding 6: fine-tuned methods (LLM and PLM) generally exhibit
higher QVT than prompt-based LLMs, there is no overall QVT winner between
the LLM and PLM families, and Graphix+PICARD over-performs its EX rank on
QVT.
"""

from repro.core.qvt import qvt_score
from repro.core.report import format_table
from repro.methods.base import MethodGroup
from repro.methods.zoo import CORE_SPIDER_METHODS, METHOD_GROUPS


def _regenerate(bundle):
    table = {}
    for name in CORE_SPIDER_METHODS:
        if name == "SuperSQL":
            continue
        report = bundle.report(name)
        table[name] = {
            "ex": report.ex,
            "qvt": qvt_score(report),
            "group": METHOD_GROUPS[name].value,
        }
    return table


def test_fig8_qvt_vs_ex(benchmark, spider_bundle):
    spider_bundle.reports([m for m in CORE_SPIDER_METHODS if m != "SuperSQL"])
    table = benchmark(_regenerate, spider_bundle)

    print()
    print(format_table(
        ["Method", "Group", "EX", "QVT"],
        [[name, row["group"], f"{row['ex']:.1f}", f"{row['qvt']:.1f}"]
         for name, row in table.items()],
        title="Figure 8: QVT vs EX (Spider-like dev)",
    ))

    def group_mean_qvt(group: MethodGroup) -> float:
        values = [row["qvt"] for row in table.values() if row["group"] == group.value]
        return sum(values) / len(values)

    prompt = group_mean_qvt(MethodGroup.PROMPT_LLM)
    finetuned_llm = group_mean_qvt(MethodGroup.FINETUNED_LLM)
    plm = group_mean_qvt(MethodGroup.PLM)

    # Finding 6: fine-tuned LLMs exceed prompt-based LLMs on QVT.
    assert finetuned_llm > prompt - 1.0

    # No runaway winner between LLM-FT and PLM families.
    assert abs(finetuned_llm - plm) < 12.0

    # QVT scores all live in a sane band.
    for name, row in table.items():
        assert 50.0 <= row["qvt"] <= 100.0, name

    # Graphix+PICARD: modest EX, strong QVT (paper's highlighted point) —
    # its QVT rank should beat its EX rank.
    ex_rank = sorted(table, key=lambda n: -table[n]["ex"]).index("Graphix-3B + PICARD")
    qvt_rank = sorted(table, key=lambda n: -table[n]["qvt"]).index("Graphix-3B + PICARD")
    assert qvt_rank <= ex_rank + 2
