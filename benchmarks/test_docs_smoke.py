"""Tier-2 docs smoke: the ``repro docs-check`` gate must pass.

Runs the CLI subcommand in-process (it shells out to pytest over
``tests/test_docs_consistency.py``) and asserts a zero exit — the same
invocation a contributor runs by hand after touching any markdown or
any symbol the docs reference (see docs/PIPELINE.md).
"""

from __future__ import annotations

from repro.cli import main


def test_docs_check_gate_passes(capsys):
    assert main(["docs-check"]) == 0
    out = capsys.readouterr().out
    assert "docs-check: OK" in out
