"""Figures 10 & 15 — the SQL-style prompt and SuperSQL's enriched prompt.

Figure 10 shows the SQL-style zero-shot prompt used for SFT (CREATE TABLE
schema + ``/* Answer the following: ... */`` + the SELECT cue); Figure 15
shows SuperSQL's "Clear Schema with DB Content" prompt, where matched
cell values are appended as comments after the corresponding columns.
This benchmark regenerates both prompts on a live database and asserts
their structure.
"""

from repro.llm.tokens import count_tokens
from repro.methods.zoo import method_config
from repro.modules.prompts import build_prompt


def test_fig10_and_fig15_prompt_formats(benchmark, spider_dataset):
    example = next(
        e for e in spider_dataset.dev_examples if "'" in e.gold_sql
    )  # has a string literal, so DB-content matching has work to do
    database = spider_dataset.database(example.db_id)

    def regenerate():
        sql_style = build_prompt(
            method_config("SFT starcoder-7b"), database, example.question
        )
        supersql = build_prompt(
            method_config("SuperSQL"), database, example.question,
            train_pairs=[(e.question, e.gold_sql) for e in spider_dataset.train_examples[:200]],
        )
        return sql_style, supersql

    sql_style, supersql = benchmark(regenerate)

    print()
    print("---- Figure 10 analogue (SQL-style zero-shot prompt, head) ----")
    print("\n".join(sql_style.text.splitlines()[:12]))
    print("---- Figure 15 analogue (SuperSQL prompt, head) ----")
    print("\n".join(supersql.text.splitlines()[:14]))

    # Figure 10 structure: schema as CREATE TABLE, question comment, SELECT cue.
    assert "/* Given the following database schema: */" in sql_style.text
    assert "CREATE TABLE" in sql_style.text
    assert f"/* Answer the following: {example.question} */" in sql_style.text
    assert sql_style.text.rstrip().endswith("SELECT")
    assert sql_style.features.sql_style

    # Figure 15 structure: linked (pruned) schema, value comments on
    # columns, similarity-selected examples, same question framing.
    assert supersql.features.schema_tables is not None
    assert supersql.features.db_content is not None
    assert "-- values:" in supersql.text
    assert supersql.features.few_shot_count > 0
    assert f"/* Answer the following: {example.question} */" in supersql.text

    # The pruned+enriched SuperSQL prompt stays lean — far smaller than a
    # DIN-SQL-style manual prompt (paper Table 5's token economics).
    din = build_prompt(method_config("DINSQL"), database, example.question)
    assert count_tokens(supersql.text) < count_tokens(din.text) / 3
