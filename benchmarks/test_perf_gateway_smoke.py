"""Tier-2 perf smoke: the sharded gateway must not regress.

Runs ``scripts/bench_serve.py --quick --gateway`` in-process and asserts
the deterministic gates — full-record responses bit-identical to the
offline evaluator at every shard layout, the digest volume pass fully
cache-served with zero digest mismatches, exact per-shard routing and
cache counters (fill misses equal the shard's owned distinct keys,
volume hits equal its routed requests, ``spans_dropped`` exactly the
request-log overflow), exact ``apply_write`` invalidation accounting
with zero stale serves, and a live HTTP ``/query`` / ``/healthz`` /
``/metrics`` probe.  Per-shard p50/p95/p99 and scaling efficiency ride
along for trend tracking but are never gated — tier-2 gates are
counter-based only (a 1-CPU host cannot scale), and the quick smoke
does not overwrite the tracked ``BENCH_serve.json``.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_serve", REPO_ROOT / "scripts" / "bench_serve.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_gateway_quick_smoke(tmp_path):
    bench_serve = _load_bench_module()
    out = tmp_path / "BENCH_serve.json"
    exit_code = bench_serve.main(["--quick", "--gateway", "--out", str(out)])
    assert exit_code == 0

    gateway = json.loads(out.read_text())["gateway"]
    assert gateway["quick"]
    gates = gateway["gates"]
    assert gates["identical_all_layouts"], "gateway records diverged from offline"
    assert gates["volume_all_cached"]
    assert gates["counters_exact"]
    assert gates["mutation_exact"]
    assert gates["spans_dropped_exact"]
    assert gates["http_ok"]

    for shards, layout in gateway["layouts"].items():
        # Fill pass: every full-record response matched the offline
        # evaluator's record, at this layout.
        assert layout["fill"]["mismatches"] == 0
        # Volume pass: after the fill, every digest response is a cache
        # hit and every digest matches the offline reference.
        assert layout["volume"]["not_cached"] == 0
        assert layout["volume"]["digest_mismatches"] == 0
        assert layout["volume"]["requests"] == gateway["volume_requests"]
        # Per-shard counters are exact, never approximate: each shard
        # misses exactly its owned distinct keys once, serves exactly
        # its routed volume slice from cache, and drops exactly the
        # spans that overflow its request log.
        rows = layout["shards"]
        assert len(rows) == int(shards)
        assert sum(row["volume_requests"] for row in rows) == (
            gateway["volume_requests"]
        )
        for row in rows:
            assert row["fill_misses"] == row["distinct_keys"]
            assert row["fill_computed"] == row["distinct_keys"]
            assert row["volume_hits"] == row["volume_requests"]
            assert row["spans_dropped"] == row["expected_spans_dropped"]
            assert row["p99_ms"] >= row["p50_ms"] >= 0.0
        # Mutation stage: the write reached the owner shard, purged
        # exactly the affected entries, and nothing stale was served.
        mutation = layout["mutation"]
        assert mutation["applied_rows"] >= 1
        assert mutation["invalidated_entries"] == mutation["affected_distinct"]
        assert mutation["replay_misses"] == mutation["affected_distinct"]
        assert mutation["stale_serves"] == 0
        # Parent-side routing accounting covers every request exactly.
        routing = layout["routing"]
        assert sum(routing["routed"].values()) == routing["requests"]
        assert routing["worker_errors"] == 0
        assert routing["apply_writes"] == 1

    # Scaling numbers ride along for trend tracking only; the smoke
    # asserts presence and sanity, never a wall-clock floor.
    for shards in gateway["shard_counts"]:
        entry = gateway["scaling"][str(shards)]
        assert entry["throughput_rps"] > 0
        assert entry["efficiency"] > 0
    assert gateway["scaling"]["1"]["speedup_vs_1"] == 1.0

    http = gateway["http"]
    assert http["mismatches"] == 0
    assert http["healthz"] == "ok"
    assert http["has_serve_requests"] and http["has_gateway_requests"]
