"""Table 6 — Efficiency of PLM-based methods (RESDSQL family).

Regenerates EX, latency per sample, and GPU memory for the six RESDSQL
variants and asserts Finding 10: latency and memory rise with parameter
count; NatSQL variants are cheaper at similar-or-better accuracy; and the
paper's headline pairing — RESDSQL-Base+NatSQL achieves EX comparable to
the much bigger RESDSQL-Large at a fraction of the resources.
"""

from repro.core.report import format_table
from repro.methods.zoo import build_method

PLM_METHODS = [
    "RESDSQL-Base", "RESDSQL-Base + NatSQL",
    "RESDSQL-Large", "RESDSQL-Large + NatSQL",
    "RESDSQL-3B", "RESDSQL-3B + NatSQL",
]

PARAMS = {
    "RESDSQL-Base": 0.22, "RESDSQL-Base + NatSQL": 0.22,
    "RESDSQL-Large": 0.77, "RESDSQL-Large + NatSQL": 0.77,
    "RESDSQL-3B": 3.0, "RESDSQL-3B + NatSQL": 3.0,
}


def _regenerate(bundle):
    table = {}
    for name in PLM_METHODS:
        report = bundle.report(name)
        method = build_method(name)
        table[name] = {
            "params": PARAMS[name],
            "ex": report.ex,
            "latency": report.avg_latency,
            "memory": method.gpu_memory_gb,
        }
    return table


def test_table6_plm_efficiency(benchmark, spider_bundle):
    spider_bundle.reports(PLM_METHODS)
    table = benchmark(_regenerate, spider_bundle)

    print()
    print(format_table(
        ["Method", "Params (B)", "EX", "Latency/sample (s)", "GPU mem (GiB)"],
        [[name, f"{row['params']}", f"{row['ex']:.1f}", f"{row['latency']:.2f}",
          f"{row['memory']:.2f}"] for name, row in table.items()],
        title="Table 6: Efficiency of PLM-based methods (Spider-like dev)",
    ))

    # Latency and memory increase with parameter count (Finding 10).
    assert (
        table["RESDSQL-Base"]["latency"]
        < table["RESDSQL-Large"]["latency"]
        < table["RESDSQL-3B"]["latency"]
    )
    assert (
        table["RESDSQL-Base"]["memory"]
        < table["RESDSQL-Large"]["memory"]
        < table["RESDSQL-3B"]["memory"]
    )

    # NatSQL variants are cheaper than their plain counterparts.
    for size in ("Base", "Large", "3B"):
        plain, natsql = f"RESDSQL-{size}", f"RESDSQL-{size} + NatSQL"
        assert table[natsql]["latency"] < table[plain]["latency"]
        assert table[natsql]["memory"] < table[plain]["memory"]
        # ... at similar or better accuracy (sigma tolerance).
        assert table[natsql]["ex"] >= table[plain]["ex"] - 4.0

    # The paper's headline: Base+NatSQL (0.22B) reaches EX comparable to
    # Large (0.77B) while being faster and smaller.
    assert (
        abs(table["RESDSQL-Base + NatSQL"]["ex"] - table["RESDSQL-Large"]["ex"]) < 8.0
    )
    assert (
        table["RESDSQL-Base + NatSQL"]["latency"] < table["RESDSQL-Large"]["latency"]
    )

    # Accuracy grows with size within the plain family (noise tolerance).
    assert table["RESDSQL-3B"]["ex"] >= table["RESDSQL-Base"]["ex"] - 2.0
