"""Figure 7 — per-method EX heatmap over SQL characteristics (BIRD-like).

The BIRD companion to Figure 6: regenerates the method x subset matrix
and asserts the BIRD-side observations: every method scores much lower
than on Spider, subqueries remain the hardest cells, and LLM-based
methods out-handle the PLM family on the with-JOIN subset.
"""

from repro.core.report import format_table
from repro.methods.zoo import CORE_BIRD_METHODS

SUBSETS = {
    "with_subquery": lambda r: r.has_subquery,
    "with_join": lambda r: r.has_join,
    "with_connector": lambda r: r.has_logical_connector,
    "with_order_by": lambda r: r.has_order_by,
    "all": lambda r: True,
}


def _regenerate(bundle):
    matrix = {}
    for name in CORE_BIRD_METHODS:
        report = bundle.report(name)
        matrix[name] = {
            subset: report.subset(predicate).ex
            for subset, predicate in SUBSETS.items()
        }
    return matrix


def test_fig7_bird_characteristic_heatmap(benchmark, bird_bundle, spider_bundle):
    bird_bundle.reports(CORE_BIRD_METHODS)
    matrix = benchmark(_regenerate, bird_bundle)

    print()
    print(format_table(
        ["Method", *SUBSETS.keys()],
        [[name] + [f"{matrix[name][s]:.1f}" for s in SUBSETS] for name in matrix],
        title="Figure 7: EX heatmap over SQL characteristics (BIRD-like)",
    ))

    # Every shared method is weaker on BIRD than on Spider overall.
    for name in ("C3SQL", "DAILSQL", "RESDSQL-3B", "SuperSQL"):
        spider_ex = spider_bundle.report(name).ex
        assert matrix[name]["all"] < spider_ex, name

    # LLM-based methods beat the RESDSQL family on the with-JOIN subset.
    llm_join = max(
        matrix[name]["with_join"]
        for name in ("DAILSQL", "DAILSQL(SC)", "SFT CodeS-7B", "SFT CodeS-15B")
    )
    plm_join = max(
        matrix[name]["with_join"]
        for name in ("RESDSQL-Base", "RESDSQL-Large", "RESDSQL-3B")
    )
    assert llm_join > plm_join - 3.0

    # Subquery cells are the hardest for a majority of methods.
    weakest = sum(
        1
        for name in matrix
        if matrix[name]["with_subquery"]
        <= min(matrix[name]["with_join"], matrix[name]["with_connector"]) + 10.0
    )
    assert weakest >= len(matrix) // 2
