"""Figure 12 — EX vs number of training samples (Exp-9).

Sweeps the training-set size for four tunable methods (RESDSQL-3B with
and without NatSQL, SFT CodeS-7B, SFT Deepseek-Coder-7B analogue) and
regenerates the learning curves.  Asserts Finding 12's shape: accuracy
rises with more data, gains flatten (concavity), and performance is
already acceptable around the curve's knee.
"""

import pytest

from repro.core.report import format_table
from repro.methods.zoo import build_method

SWEEP_METHODS = ["RESDSQL-3B", "RESDSQL-3B + NatSQL", "SFT CodeS-7B",
                 "SFT deepseek-coder-7b"]


def _sweep(bundle, sizes):
    dataset = bundle.dataset
    train = dataset.train_examples
    dev = dataset.dev_examples
    curves: dict[str, list[float]] = {}
    for name in SWEEP_METHODS:
        curve = []
        for size in sizes:
            method = build_method(name)
            method.prepare_with_examples(dataset.name, train[:size])
            report = bundle.evaluator.evaluate_method(
                method, examples=dev, prepare=False
            )
            curve.append(report.ex)
        curves[name] = curve
    return curves


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_fig12_ex_vs_training_samples(benchmark, spider_bundle):
    train_size = len(spider_bundle.dataset.train_examples)
    sizes = [s for s in (60, 150, 300, 600, 1000) if s <= train_size]
    sizes.append(train_size)

    curves = benchmark.pedantic(
        _sweep, args=(spider_bundle, sizes), rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["Method", *[str(s) for s in sizes]],
        [[name] + [f"{v:.1f}" for v in curve] for name, curve in curves.items()],
        title="Figure 12: EX vs #-training samples (Spider-like dev)",
    ))

    for name, curve in curves.items():
        # Monotone rise overall (small-sample noise tolerated pointwise).
        assert curve[-1] > curve[0] + 3.0, name
        # The bulk of the gain arrives early (concavity / diminishing
        # returns): the first half of the sweep captures most of the lift.
        total_gain = curve[-1] - curve[0]
        early_gain = curve[len(curve) // 2] - curve[0]
        assert early_gain >= 0.35 * total_gain, (name, curve)

    # With the full train split, fine-tuned methods reach a usable band.
    for name, curve in curves.items():
        assert curve[-1] > 60.0, (name, curve)
