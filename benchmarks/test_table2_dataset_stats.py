"""Table 2 — Spider vs BIRD dataset statistics.

Regenerates the min/max/avg of tables/DB, columns/DB, columns/table,
PKs/DB, and FKs/DB for both benchmarks' train and dev splits, and asserts
the paper's qualitative shape: BIRD databases are wider and more complex
than Spider databases on every aggregate.
"""

from repro.core.report import format_table
from repro.schema.stats import corpus_statistics


def _stats_rows(dataset, split):
    schemas = dataset.schemas(split=split)
    stats = corpus_statistics(schemas)
    label = f"{dataset.name} {split}"
    row = [label]
    for key in ("tables_per_db", "columns_per_db", "columns_per_table",
                "pks_per_db", "fks_per_db"):
        triple = stats[key].as_row()
        row.append(f"{triple[0]:.0f}/{triple[1]:.0f}/{triple[2]:.1f}")
    return stats, row


def test_table2_dataset_statistics(benchmark, spider_dataset, bird_dataset):
    def regenerate():
        table = {}
        rows = []
        for dataset in (spider_dataset, bird_dataset):
            for split in ("train", "dev"):
                stats, row = _stats_rows(dataset, split)
                table[(dataset.name, split)] = stats
                rows.append(row)
        return table, rows

    table, rows = benchmark(regenerate)
    print()
    print(format_table(
        ["Dataset/split", "#T/DB (min/max/avg)", "#C/DB", "#C/T", "#PK/DB", "#FK/DB"],
        rows,
        title="Table 2: Spider-like vs BIRD-like dataset statistics",
    ))

    spider_dev = table[("spider-like", "dev")]
    bird_dev = table[("bird-like", "dev")]
    # BIRD databases are wider/denser than Spider databases (paper Table 2).
    assert bird_dev["columns_per_db"].average > spider_dev["columns_per_db"].average
    assert bird_dev["columns_per_table"].average > spider_dev["columns_per_table"].average
    assert bird_dev["tables_per_db"].average >= spider_dev["tables_per_db"].average - 0.5

    # Sanity ranges in the ballpark of the paper's Spider numbers.
    assert 2 <= spider_dev["tables_per_db"].minimum
    assert spider_dev["tables_per_db"].average < 8
    for key in ("pks_per_db", "fks_per_db"):
        assert spider_dev[key].average >= 1
