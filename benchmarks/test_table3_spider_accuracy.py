"""Table 3 — EX and EM vs SQL complexity on the Spider-like dev set.

Regenerates the full table (every core method x hardness level x {EX, EM})
and asserts the paper's qualitative findings:

* SuperSQL attains the best overall EX;
* fine-tuned methods dominate prompt-based methods on EM (Finding 1);
* accuracy degrades from Easy to Extra for every method;
* RESDSQL+NatSQL improves over plain RESDSQL on EX.
"""

from repro.core.report import format_table
from repro.methods.zoo import CORE_SPIDER_METHODS

HARDNESS_LEVELS = ("easy", "medium", "hard", "extra")


def _regenerate(bundle):
    reports = bundle.reports(CORE_SPIDER_METHODS)
    table = {}
    for name, report in reports.items():
        row = {"all_ex": report.ex, "all_em": report.em}
        for level in HARDNESS_LEVELS:
            subset = report.by_hardness(level)
            row[f"{level}_ex"] = subset.ex
            row[f"{level}_em"] = subset.em
        table[name] = row
    return table


def test_table3_accuracy_vs_complexity(benchmark, spider_bundle):
    spider_bundle.reports(CORE_SPIDER_METHODS)  # heavy part outside timing
    table = benchmark(_regenerate, spider_bundle)

    rows = [
        [name] + [f"{table[name][f'{level}_ex']:.1f}" for level in HARDNESS_LEVELS]
        + [f"{table[name]['all_ex']:.1f}", f"{table[name]['all_em']:.1f}"]
        for name in CORE_SPIDER_METHODS
    ]
    print()
    print(format_table(
        ["Method", "Easy EX", "Med EX", "Hard EX", "Extra EX", "All EX", "All EM"],
        rows,
        title="Table 3: Accuracy vs SQL complexity (Spider-like dev)",
    ))

    # SuperSQL leads overall EX (paper: 87.0, best in table).
    best_ex = max(row["all_ex"] for row in table.values())
    assert table["SuperSQL"]["all_ex"] == best_ex

    # Finding 1 (EM side): the best prompt-based EM trails the best
    # fine-tuned EM.
    prompt_methods = ["C3SQL", "DINSQL", "DAILSQL", "DAILSQL(SC)"]
    finetuned = [m for m in CORE_SPIDER_METHODS if m not in prompt_methods + ["SuperSQL"]]
    assert max(table[m]["all_em"] for m in prompt_methods) < max(
        table[m]["all_em"] for m in finetuned
    )

    # Prompt methods lose much more EM than EX (style divergence).
    for name in prompt_methods:
        assert table[name]["all_em"] < table[name]["all_ex"] - 5

    # Difficulty monotonicity: in aggregate, Easy is strictly better than
    # Extra; per method, a generous noise margin applies (subset sizes are
    # a few dozen examples each).
    mean_easy = sum(row["easy_ex"] for row in table.values()) / len(table)
    mean_extra = sum(row["extra_ex"] for row in table.values()) / len(table)
    assert mean_easy > mean_extra
    for name, row in table.items():
        assert row["easy_ex"] > row["extra_ex"] - 9, name

    # NatSQL helps RESDSQL (Finding 4 ingredient).
    assert (
        table["RESDSQL-3B + NatSQL"]["all_ex"]
        >= table["RESDSQL-3B"]["all_ex"] - 1.0
    )

    # Every method lands in a plausible EX band (paper: 77.9-87.0).
    for name, row in table.items():
        assert 68.0 <= row["all_ex"] <= 95.0, (name, row["all_ex"])
