"""Ablation — SuperSQL minus each design-space module.

Not a paper table, but the design-space analysis it implies: starting
from the full SuperSQL composition, disable one module at a time and
measure the EX drop on the Spider-like dev set.  Asserts that the full
composition is at least as good as every ablation (modulo noise), i.e.
each searched module pulls its weight.
"""

import pytest

from repro.core.report import format_table
from repro.methods.base import MethodGroup, PipelineMethod
from repro.methods.zoo import method_config

ABLATIONS = {
    "full": {},
    "-schema_linking": {"schema_linking": None},
    "-db_content": {"db_content": None},
    "-few_shot": {"prompting": "zero_shot", "few_shot_k": 0},
    "-self_consistency": {"post_processing": None},
}


def _run_ablations(bundle):
    base = method_config("SuperSQL")
    results = {}
    for label, overrides in ABLATIONS.items():
        config = base.with_(name=f"SuperSQL{label if label != 'full' else ''}",
                            **overrides)
        method = PipelineMethod(config, MethodGroup.HYBRID)
        results[label] = bundle.evaluator.evaluate_method(method).ex
    return results


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_ablation_supersql_modules(benchmark, spider_bundle):
    results = benchmark.pedantic(
        _run_ablations, args=(spider_bundle,), rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["Variant", "EX", "Delta vs full"],
        [[label, f"{ex:.1f}", f"{ex - results['full']:+.1f}"]
         for label, ex in results.items()],
        title="Ablation: SuperSQL minus one module at a time (Spider-like dev)",
    ))

    # The full composition is at least as good as every ablation (noise
    # tolerance 2.5 EX): each module contributes or is neutral.
    for label, ex in results.items():
        if label == "full":
            continue
        assert results["full"] >= ex - 2.5, (label, ex, results["full"])

    # The grounding modules the AAS search selected (schema linking + DB
    # content) jointly matter: removing either costs at least a little in
    # expectation, and removing few-shot selection costs the most or near
    # it (DAIL-SQL's module was the search's key pick).
    drops = {
        label: results["full"] - ex for label, ex in results.items() if label != "full"
    }
    assert max(drops.values()) >= 1.0, drops
