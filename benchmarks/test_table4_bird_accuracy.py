"""Table 4 — EX vs SQL complexity on the BIRD-like dev set.

Asserts the paper's shape: overall EX drops sharply relative to Spider
(BIRD is harder), fine-tuning scales with model size within the CodeS
family, RESDSQL (retrained) trails the LLM-based methods, and SuperSQL is
at or near the top.
"""

from repro.core.report import format_table
from repro.methods.zoo import CORE_BIRD_METHODS

LEVELS = ("simple", "moderate", "challenging")


def _regenerate(bundle):
    reports = bundle.reports(CORE_BIRD_METHODS)
    table = {}
    for name, report in reports.items():
        row = {"all": report.ex}
        for level in LEVELS:
            row[level] = report.by_bird_difficulty(level).ex
        table[name] = row
    return table


def test_table4_bird_accuracy(benchmark, bird_bundle, spider_bundle):
    bird_bundle.reports(CORE_BIRD_METHODS)
    table = benchmark(_regenerate, bird_bundle)

    rows = [
        [name] + [f"{table[name][level]:.1f}" for level in LEVELS]
        + [f"{table[name]['all']:.1f}"]
        for name in CORE_BIRD_METHODS
    ]
    print()
    print(format_table(
        ["Method", "Simple", "Moderate", "Challenging", "All"],
        rows,
        title="Table 4: Accuracy vs SQL complexity (BIRD-like dev, EX)",
    ))

    # BIRD is much harder than Spider for the same methods (paper: ~56 vs ~84).
    spider_super = spider_bundle.report("SuperSQL").ex
    assert table["SuperSQL"]["all"] < spider_super

    # SuperSQL within the top band (paper: ties SFT CodeS-15B at 58.5).
    best = max(row["all"] for row in table.values())
    assert table["SuperSQL"]["all"] >= best - 3.0

    # CodeS family: scaling helps, modulo simulation noise (sigma ~3).
    assert table["SFT CodeS-15B"]["all"] >= table["SFT CodeS-1B"]["all"] - 5.0
    assert table["SFT CodeS-7B"]["all"] >= table["SFT CodeS-1B"]["all"] - 5.0

    # RESDSQL (PLM) trails the hybrid/top LLM methods on BIRD and its
    # Base variant sits in the bottom tier (paper: 33.1, worst in table).
    assert table["RESDSQL-3B"]["all"] >= table["RESDSQL-Base"]["all"] - 4.0
    assert table["RESDSQL-Base"]["all"] <= table["SuperSQL"]["all"] - 8.0
    ranked = sorted(table, key=lambda name: table[name]["all"])
    assert "RESDSQL-Base" in ranked[:4]

    # Simple > challenging in aggregate (per-method cells are tiny and
    # noisy at this scale; the paper's monotonicity is a population trend).
    mean_simple = sum(row["simple"] for row in table.values()) / len(table)
    mean_challenging = sum(row["challenging"] for row in table.values()) / len(table)
    assert mean_simple > mean_challenging
