"""Figure 1 — the NL2SQL evolutionary tree.

Regenerates the four-branch taxonomy and asserts its chronology: the
branches emerge in order (rules → neural networks → PLMs → LLMs), each
era overlaps its successor, and every zoo backbone family appears in the
tree's PLM/LLM branches.
"""

from repro.core.taxonomy import (
    BRANCHES,
    EVOLUTIONARY_TREE,
    era_span,
    render_tree,
    systems_in_branch,
)


def test_fig1_evolutionary_tree(benchmark):
    tree_text = benchmark(render_tree)
    print()
    print(tree_text)

    # Branch chronology: each era starts after the previous one started.
    starts = [era_span(branch)[0] for branch in BRANCHES]
    assert starts == sorted(starts)

    # The NN era begins around WikiSQL (2017), the PLM era around
    # Transformer+Spider (2020 entries), the LLM era in the 2020s.
    assert era_span("neural_network")[0] >= 2015
    assert era_span("plm")[0] >= 2019
    assert era_span("llm")[0] >= 2022

    # Eras overlap: PLM systems keep appearing after the LLM era starts.
    assert era_span("plm")[1] >= era_span("llm")[0]

    # Every branch is populated and the tree covers two decades+.
    for branch in BRANCHES:
        assert len(systems_in_branch(branch)) >= 4
    years = [entry.year for entry in EVOLUTIONARY_TREE]
    assert max(years) - min(years) >= 20

    # The study's protagonists are all present.
    names = {entry.name for entry in EVOLUTIONARY_TREE}
    for name in ("RESDSQL", "DIN-SQL", "DAIL-SQL", "C3", "CodeS", "SuperSQL"):
        assert name in names
