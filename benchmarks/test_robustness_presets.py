"""Robustness presets — Spider-Realistic / Dr.Spider-style evaluation.

The testbed lists Spider-Realistic and Dr.Spider among its maintained
datasets (paper §3): both perturb the NL side of Spider to probe
robustness.  This benchmark evaluates a prompt-based method and a
fine-tuned method on the Spider-Realistic-like preset (every question
paraphrased, many with rare phrasings) and asserts the robustness story
behind Finding 6: the fine-tuned model, whose lexicon covers the dataset's
phrasing distribution, degrades less on hard paraphrases than the
canonical-vs-variant gap of a prompt-only model.
"""

import pytest

from repro.core.evaluator import Evaluator
from repro.core.report import format_table
from repro.datagen.benchmark import build_benchmark, spider_realistic_config
from repro.methods.zoo import build_method

# Same backbone, with and without dataset fine-tuning: isolates the
# phrasing-coverage mechanism.
METHODS = ["ZS starcoder-7b", "SFT starcoder-7b", "DAILSQL", "RESDSQL-3B"]


def _evaluate(dataset):
    evaluator = Evaluator(dataset, measure_timing=False)
    hard_ids = {
        e.example_id for e in dataset.dev_examples if e.linguistic_difficulty > 0
    }
    easy_ids = {
        e.example_id for e in dataset.dev_examples if e.linguistic_difficulty == 0
    }
    table = {}
    for name in METHODS:
        report = evaluator.evaluate_method(build_method(name))
        easy = report.by_example_ids(easy_ids)
        hard = report.by_example_ids(hard_ids)
        table[name] = {
            "easy_phrasing": easy.ex,
            "hard_phrasing": hard.ex,
            "drop": easy.ex - hard.ex,
            "all": report.ex,
        }
    return table


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_spider_realistic_robustness(benchmark):
    dataset = build_benchmark(spider_realistic_config(scale=0.3))
    try:
        table = benchmark.pedantic(_evaluate, args=(dataset,), rounds=1, iterations=1)
    finally:
        dataset.close()

    print()
    print(format_table(
        ["Method", "EX easy phrasing", "EX hard phrasing", "Drop", "EX all"],
        [[name, f"{row['easy_phrasing']:.1f}", f"{row['hard_phrasing']:.1f}",
          f"{row['drop']:+.1f}", f"{row['all']:.1f}"] for name, row in table.items()],
        title="Spider-Realistic-like: robustness to rare phrasings",
    ))

    # The same backbone, fine-tuned on the dataset's phrasing distribution,
    # absorbs hard paraphrases far better than its zero-shot self.
    assert table["SFT starcoder-7b"]["drop"] < table["ZS starcoder-7b"]["drop"]
    assert (
        table["SFT starcoder-7b"]["hard_phrasing"]
        > table["ZS starcoder-7b"]["hard_phrasing"] + 5.0
    )

    # Strong-linguistic GPT-4 prompting and fine-tuned PLMs both stay
    # comparatively stable (paper Finding 6's "no clear winner").
    assert abs(table["DAILSQL"]["drop"]) < 18.0
    assert abs(table["RESDSQL-3B"]["drop"]) < 18.0
