"""Tracing and run reports: spans, per-stage metrics, and report-run.

Run with::

    python examples/tracing_and_reports.py

Evaluates one method with the observability layer enabled, prints the
self-documenting run report (stage-time breakdown, failure categories,
cache effectiveness, cost per correct query), then persists the traced
run into an ExperimentLogStore and rebuilds the identical report from
the database — which is exactly what ``python -m repro report-run``
does. Reference: docs/OBSERVABILITY.md.
"""

from repro import Evaluator, build_benchmark, build_method, spider_like_config
from repro.core.logs import ExperimentLogStore
from repro.obs import (
    build_run_report,
    build_run_trace,
    render_markdown,
    report_from_store,
    tracing,
)


def main() -> None:
    print("Building spider-like benchmark ...")
    dataset = build_benchmark(spider_like_config(scale=0.1))

    # 1. Evaluate inside a tracing() block: every example records a span
    #    tree over the pipeline stages, and tracer.metrics aggregates the
    #    labelled counters/histograms.
    method = build_method("SuperSQL")
    evaluator = Evaluator(dataset, measure_timing=False)
    with tracing() as tracer:
        print(f"Evaluating {method.name} (traced) ...")
        report = evaluator.evaluate_method(method)
    spans = evaluator.trace_spans
    print(f"  collected {len(spans)} example spans, "
          f"{sum(len(s.stages) for s in spans)} stage spans")

    # 2. Peek at the raw span hierarchy for one example.
    run_trace = build_run_trace(dataset.name, spans)
    first = run_trace.methods[0].examples[0]
    print(f"\nSpan tree for {first.method} / {first.example_id}:")
    for stage in first.stages:
        print(f"  {stage.stage:<16} {stage.seconds * 1e3:8.3f} ms"
              f"  cache_hit={stage.cache_hit}  llm_calls={stage.llm_calls}")
    print(f"  failure tag: {first.failure or 'none (correct)'}")

    # 3. The self-documenting run report.
    print()
    print(render_markdown(build_run_report(
        report.records,
        spans=spans,
        metrics=tracer.metrics,
        dataset=dataset.name,
    )))

    # 4. Persist the traced run and rebuild the report from the store —
    #    this is what `python -m repro report-run --log-db ...` does.
    with ExperimentLogStore(":memory:") as store:
        run_id = store.store_records(dataset.name, report.records)
        store.store_trace(run_id, spans)
        # One method evaluated, so the tracer's merged registry is exactly
        # this run's registry.
        store.store_metrics(run_id, tracer.metrics)
        rebuilt = report_from_store(store)
        same = rebuilt.equivalence_key() == build_run_report(
            report.records, spans=spans, metrics=tracer.metrics,
            dataset=dataset.name,
        ).equivalence_key()
        print(f"report rebuilt from log store: run_id={run_id}, "
              f"failure/cache/economy sections identical: {same}")
    dataset.close()


if __name__ == "__main__":
    main()
