"""Online serving quickstart: scheduler, coalescing, cache, deadlines.

Builds a small synthetic Spider-like benchmark, starts a
:class:`repro.serve.ServingEngine` serving C3SQL, and walks through the
serving features end to end:

1. a single request answered with the exact offline evaluation record;
2. a Zipf-skewed workload served through the micro-batching scheduler,
   with the open-loop submission coalescing every duplicate question;
3. the cross-request response cache: a repeat of the same workload hits
   on every request, and a ``data_version`` bump invalidates cleanly;
4. a zero-deadline request resolving as a typed TIMEOUT (never a hang);
5. admission-control and connection-pool counters.

Run with: ``PYTHONPATH=src python examples/serving_quickstart.py``
(see docs/SERVING.md for the full reference).
"""

from repro import build_benchmark, spider_like_config
from repro.serve import (
    ServeConfig,
    ServeRequest,
    ServingEngine,
    WorkloadSpec,
    build_workload,
)


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.05))
    config = ServeConfig(methods=("C3SQL",), workers=4, response_cache=True)

    with ServingEngine(dataset, config) as engine:
        # 1. One request: the response carries the offline-identical record.
        example = dataset.dev_examples[0]
        response = engine.ask("C3SQL", example.db_id, example.question).response()
        print(f"status={response.status.value}  ex={response.record.ex}")
        print(f"predicted: {response.record.predicted_sql}")

        # 2. A skewed workload: popular questions repeat, so submitting
        # everything before the scheduler resumes coalesces every
        # duplicate onto one computation (hits == requests - distinct).
        workload = build_workload(
            dataset,
            WorkloadSpec(requests=60, methods=("C3SQL",), distinct_examples=12),
        )
        responses = engine.serve(workload, submit_paused=True)
        distinct = len({request.key for request in workload})
        print(
            f"\nserved {len(responses)} requests over {distinct} distinct"
            f" questions: ok={sum(r.ok for r in responses)}"
            f" coalesce_hits={engine.stats.coalesce_hits}"
            f" computed={engine.stats.computed}"
            f" batches={engine.stats.batches}"
            f" max_batch={engine.stats.max_batch}"
        )

        # 3. The response cache: replaying the workload hits on every
        # request (hits resolve in submit, before admission control),
        # each response cached-flagged but bit-identical.  A mutation
        # bumps the database's data_version, which purges its entries —
        # stale answers are structurally unservable.
        replay = engine.serve(workload, submit_paused=True)
        print(
            f"\nreplay: cache_hits={engine.stats.cache_hits}"
            f" identical={all(a.record == b.record for a, b in zip(responses, replay))}"
            f" cached={sum(r.cached for r in replay)}/{len(replay)}"
        )
        mutated_db = workload[0].db_id
        dataset.databases[mutated_db].mark_mutated()
        print(f"after mutating {mutated_db}: {engine.cache_stats()}")

        # 4. Deadlines degrade gracefully: a zero deadline yields a typed
        # TIMEOUT response instead of hanging, and the engine stays healthy.
        expired = engine.submit(
            ServeRequest("C3SQL", example.db_id, example.question, deadline_s=0.0)
        ).response()
        print(f"\nzero-deadline request -> {expired.status.value}")
        print(f"engine healthy after: {engine.ask('C3SQL', example.db_id, example.question).response().ok}")

        # 5. Backpressure and pool counters.
        print(f"\nbackpressure: {engine.backpressure()}")
        print(f"pool: {engine.pool_stats()}")

    dataset.close()


if __name__ == "__main__":
    main()
