"""Validate the paper's findings on a fresh benchmark + full dashboard.

Builds a new Spider-like benchmark with a different seed than any other
example, evaluates a cross-section of the zoo, renders the multi-view
dashboard, and runs the programmatic checks for the paper's findings —
the workflow a user would run to see whether the paper's conclusions
transfer to *their* data.

Run with::

    python examples/findings_dashboard.py
"""

from repro import (
    Evaluator,
    build_benchmark,
    build_method,
    check_all,
    render_dashboard,
    spider_like_config,
)
from repro.methods.zoo import METHOD_GROUPS

METHODS = ["C3SQL", "DAILSQL", "DAILSQL(SC)", "SFT CodeS-7B",
           "RESDSQL-3B", "RESDSQL-3B + NatSQL"]


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.15, seed=2026))
    evaluator = Evaluator(dataset, measure_timing=False)

    reports = {}
    for name in METHODS:
        print(f"Evaluating {name} ...")
        reports[name] = evaluator.evaluate_method(build_method(name))

    print()
    print(render_dashboard(reports, title="spider-like (seed 2026)"))

    print("\n==== Do the paper's findings hold on this benchmark? ====")
    results = check_all(reports, METHOD_GROUPS, gpt35_methods=["C3SQL"])
    for result in results:
        status = "HOLDS " if result.holds else "BREAKS"
        print(f"  [{status}] Finding {result.finding}: {result.title}")
        evidence = {k: round(v, 1) for k, v in list(result.evidence.items())[:4]}
        print(f"           evidence: {evidence}")
    held = sum(1 for r in results if r.holds)
    print(f"\n{held}/{len(results)} findings hold on this unseen benchmark.")
    dataset.close()


if __name__ == "__main__":
    main()
