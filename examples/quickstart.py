"""Quickstart: build a benchmark, evaluate methods, print a leaderboard.

Run with::

    python examples/quickstart.py
"""

from repro import Evaluator, build_benchmark, build_method, spider_like_config
from repro.core.report import format_leaderboard, format_table


def main() -> None:
    # 1. Build a small Spider-like benchmark (synthetic, fully offline).
    print("Building spider-like benchmark ...")
    dataset = build_benchmark(spider_like_config(scale=0.15))
    print(f"  {len(dataset.databases)} databases, "
          f"{len(dataset.train_examples)} train / {len(dataset.dev_examples)} dev examples")

    # 2. Evaluate a few representative methods.
    evaluator = Evaluator(dataset, measure_timing=False)
    names = ["C3SQL", "DAILSQL", "RESDSQL-3B + NatSQL", "SFT CodeS-7B", "SuperSQL"]
    reports = {}
    for name in names:
        print(f"Evaluating {name} ...")
        reports[name] = evaluator.evaluate_method(build_method(name))

    # 3. Print the leaderboard and a per-hardness breakdown.
    print()
    print(format_leaderboard(reports, metric="ex", title="Spider-like dev leaderboard (EX)"))
    print()
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            f"{report.by_hardness('easy').ex:.1f}",
            f"{report.by_hardness('medium').ex:.1f}",
            f"{report.by_hardness('hard').ex:.1f}",
            f"{report.by_hardness('extra').ex:.1f}",
            f"{report.ex:.1f}",
        ])
    print(format_table(
        ["Method", "Easy", "Medium", "Hard", "Extra", "All"],
        rows,
        title="EX by SQL hardness (paper Table 3 layout)",
    ))
    dataset.close()


if __name__ == "__main__":
    main()
