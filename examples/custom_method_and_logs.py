"""Define a custom pipeline, evaluate it, and analyze runs with plain SQL.

Shows the two extension points a downstream user needs:

1. ``PipelineConfig`` — compose your own method from design-space modules
   (here: a budget pipeline — GPT-3.5 + schema linking + DB content).
2. ``ExperimentLogStore`` — every evaluation record lands in SQLite, so
   post-hoc analysis is just SQL.

Run with::

    python examples/custom_method_and_logs.py
"""

from repro import (
    Evaluator,
    ExperimentLogStore,
    PipelineConfig,
    build_benchmark,
    build_method,
    spider_like_config,
)
from repro.core.report import format_table
from repro.methods.base import MethodGroup, PipelineMethod


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.12))
    store = ExperimentLogStore()  # pass a path to persist across sessions
    evaluator = Evaluator(dataset, log_store=store, measure_timing=False)

    # A custom budget-conscious pipeline: cheap backbone, strong grounding.
    budget_config = PipelineConfig(
        name="BudgetSQL",
        backbone="gpt-3.5-turbo",
        schema_linking="resdsql",
        db_content="bridge",
        prompting="similarity_fewshot",
        few_shot_k=3,
        decoding="greedy",
    )
    budget = PipelineMethod(budget_config, MethodGroup.HYBRID)

    print("Evaluating BudgetSQL (custom) and C3SQL (baseline) ...")
    evaluator.evaluate_method(budget)
    evaluator.evaluate_method(build_method("C3SQL"))

    # Post-hoc analysis in SQL over the log store.
    rows = store.query(
        """
        SELECT runs.method,
               ROUND(100.0 * AVG(records.ex), 1)  AS ex,
               ROUND(100.0 * AVG(records.em), 1)  AS em,
               ROUND(AVG(records.input_tokens + records.output_tokens), 0) AS tokens,
               ROUND(AVG(records.cost_usd), 5)    AS cost
        FROM records JOIN runs USING (run_id)
        GROUP BY runs.method
        ORDER BY ex DESC
        """
    )
    print()
    print(format_table(
        ["Method", "EX", "EM", "Tok/query", "$/query"],
        [list(row) for row in rows],
        title="Log-store analysis (plain SQL over the runs)",
    ))

    hard_rows = store.query(
        """
        SELECT runs.method, records.hardness, ROUND(100.0 * AVG(records.ex), 1)
        FROM records JOIN runs USING (run_id)
        WHERE records.has_join = 1
        GROUP BY runs.method, records.hardness
        ORDER BY runs.method, records.hardness
        """
    )
    print()
    print(format_table(
        ["Method", "Hardness", "EX on JOIN queries"],
        [list(row) for row in hard_rows],
        title="Drill-down: JOIN-only subset by hardness",
    ))
    store.close()
    dataset.close()


if __name__ == "__main__":
    main()
