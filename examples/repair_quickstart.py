"""Self-repair quickstart: taxonomy, rule fixes, pattern-store replay.

Walks the post-execution repair stage (docs/PIPELINE.md) end to end on a
small synthetic Spider-like benchmark:

1. classify representative execution failures into the typed
   :class:`repro.modules.repair.RepairClass` taxonomy;
2. hand a deliberately broken candidate to :func:`run_repair` and watch
   the deterministic rule fixes recover it with zero LM cost;
3. replay the same failure: the learned pattern store answers instead
   of re-repairing;
4. run a repair-enabled zoo method over the dev split under tracing and
   print the ``repair_attempts`` / ``repair_recovered`` counters the
   observability layer collects.

Run with: ``PYTHONPATH=src python examples/repair_quickstart.py``
(see docs/PIPELINE.md for the full design-space reference).
"""

from repro import build_benchmark, spider_like_config
from repro.dbengine.executor import execute_sql
from repro.llm.model import GenerationCandidate
from repro.methods.zoo import build_method, with_repair
from repro.modules.repair import (
    RepairPatternStore,
    classify_execution_failure,
    run_repair,
)
from repro.obs import tracing


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.05, seed=42))
    example = dataset.dev_examples[0]
    database = dataset.database(example.db_id)
    table = database.schema.tables[0].name

    # 1. The failure taxonomy: execute broken SQL, classify the outcome.
    print("## Failure taxonomy")
    for label, sql in [
        ("syntax error", f"SELECT * FROM {table} WHERE"),
        ("missing table", "SELECT * FROM no_such_relation"),
        ("missing column", f"SELECT not_a_column FROM {table}"),
        ("healthy query", f"SELECT * FROM {table}"),
    ]:
        outcome = classify_execution_failure(execute_sql(database, sql))
        print(f"  {label:15s} -> {outcome.value if outcome else 'no repair needed'}")

    # 2. Rule fixes: a classic FORM/FROM typo is repaired deterministically
    # (no LM draws), verified by real execution before being accepted.
    print("\n## Rule-based repair")
    method = with_repair(build_method("C3SQL", seed=42), mode="rules", budget=2)
    method.prepare(dataset)
    store = RepairPatternStore()
    broken = GenerationCandidate(sql=f"SELECT * FORM {table}", output_tokens=8)
    outcome = run_repair(
        broken,
        database,
        sampler=lambda draw, temperature: broken,  # rules mode never draws
        config=method.config,
        store=store,
        prompt_text=example.question,
    )
    print(f"  error class: {outcome.error_class.value}")
    print(f"  recovered:   {outcome.recovered} (source={outcome.source},"
          f" attempts={outcome.attempts}, llm_calls={outcome.llm_calls})")
    print(f"  repaired SQL: {outcome.final.sql}")

    # 3. The pattern store: repeating the same failure replays the learned
    # correction (hits go up, nothing is recomputed or re-billed afresh).
    replay = run_repair(
        broken,
        database,
        sampler=lambda draw, temperature: broken,
        config=method.config,
        store=store,
        prompt_text=example.question,
    )
    print(f"\n## Pattern-store replay\n  pattern_hit={replay.pattern_hit}"
          f" same_sql={replay.final.sql == outcome.final.sql}"
          f" store={store.stats()}")

    # 4. The full pipeline: a repair-enabled method under tracing.  The
    # repair stage executes each final candidate and repairs failures;
    # the span counters feed stage_breakdown / report-run.
    print("\n## Traced repair-enabled evaluation")
    lm_method = with_repair(build_method("C3SQL", seed=42), mode="pattern_lm")
    lm_method.prepare(dataset)
    with tracing() as tracer:
        for ex in dataset.dev_examples:
            db = dataset.database(ex.db_id)
            with tracer.example(lm_method.name, ex.example_id):
                lm_method.predict(ex, db)
        spans = tracer.drain()
    attempts = sum(s.repair_attempts for sp in spans for s in sp.stages)
    recovered = sum(s.repair_recovered for sp in spans for s in sp.stages)
    entered = sum(
        1 for sp in spans for s in sp.stages if s.stage == "repair"
    )
    print(f"  examples={len(spans)} repair_spans={entered}"
          f" repair_attempts={attempts} repair_recovered={recovered}")
    print(f"  method store: {lm_method._repair_store.stats()}")

    dataset.close()


if __name__ == "__main__":
    main()
