"""Export a benchmark in Spider's artifact layout and reload it.

The standard Spider release layout (``tables.json`` + ``train/dev.json``
+ ``database/<db_id>/<db_id>.sqlite``) is the lingua franca of NL2SQL
tooling.  This example exports a synthetic benchmark in that layout,
reloads it, and verifies the reloaded dataset evaluates identically —
so artifacts produced here can be consumed by external NL2SQL projects
(and external Spider-layout datasets can be evaluated by this testbed).

Run with::

    python examples/export_and_reload.py
"""

import json
import tempfile
from pathlib import Path

from repro import Evaluator, build_benchmark, build_method, spider_like_config
from repro.datagen.export import export_spider_format, load_spider_format


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.1))
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "spider_like_release"
        export_spider_format(dataset, root)

        tables = json.loads((root / "tables.json").read_text())
        dev = json.loads((root / "dev.json").read_text())
        print(f"Exported to {root.name}/:")
        print(f"  tables.json   : {len(tables)} database schemas")
        print(f"  dev.json      : {len(dev)} examples "
              f"(first: {dev[0]['question'][:60]!r})")
        sqlite_files = list((root / "database").rglob("*.sqlite"))
        print(f"  database/     : {len(sqlite_files)} SQLite files")

        reloaded = load_spider_format(root, name="reloaded")
        evaluator_a = Evaluator(dataset, measure_timing=False)
        evaluator_b = Evaluator(reloaded, measure_timing=False)
        method_name = "C3SQL"
        report_a = evaluator_a.evaluate_method(build_method(method_name))
        report_b = evaluator_b.evaluate_method(build_method(method_name))
        print(f"\n{method_name} EX on original dataset : {report_a.ex:.1f}")
        print(f"{method_name} EX on reloaded dataset : {report_b.ex:.1f}")
        assert abs(report_a.ex - report_b.ex) < 1e-9, "round trip changed results!"
        print("Round trip is lossless: identical evaluation results.")
        reloaded.close()
    dataset.close()


if __name__ == "__main__":
    main()
