"""Trustworthy NL2SQL workflow (the paper's §6 research opportunities).

Chains the extension modules around a prediction:

1. **Query Rewriter** clarifies the incoming question and flags ambiguity;
2. a zoo method translates it;
3. the **NL2SQL Debugger** diagnoses the prediction;
4. the **Interpreter** explains the SQL and its results in English;
5. **Adaptive augmentation** turns observed weaknesses into new training
   data and fine-tunes a model on it.

Run with::

    python examples/trustworthy_nl2sql.py
"""

from repro import Evaluator, build_benchmark, build_method, spider_like_config
from repro.dbengine.executor import execute_sql
from repro.extensions import (
    diagnose,
    explain_results,
    explain_sql,
    generate_examples,
    plan_augmentation,
    rewrite_question,
)

USER_QUESTION = (
    "Give me the name of the movies with year is more than 2000."
)


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.12))
    movie_dev = [e for e in dataset.dev_examples if e.domain == "movies"]
    database = dataset.database(movie_dev[0].db_id)

    # 1. Rewrite the raw user question.
    rewrite = rewrite_question(USER_QUESTION, database.schema)
    print("User asked:  ", rewrite.original)
    print("Rewritten as:", rewrite.rewritten)
    if rewrite.is_ambiguous:
        print("Ambiguities: ", "; ".join(rewrite.ambiguities))

    # 2. Translate with a zoo method.
    method = build_method("SuperSQL")
    method.prepare(dataset)
    example = movie_dev[0]
    clarified = type(example)(**{**example.__dict__, "question": rewrite.rewritten})
    prediction = method.predict(clarified, database)
    print("\nPredicted SQL:", prediction.sql)

    # 3. Debug the prediction.
    diagnosis = diagnose(rewrite.rewritten, prediction.sql, database)
    print("Diagnosis:    ", diagnosis.summary())

    # 4. Explain the SQL and its results.
    print("\nWhat this SQL does:")
    for line in explain_sql(prediction.sql):
        print("  -", line)
    result = execute_sql(database, prediction.sql)
    print("Result:", explain_results(result))

    # 5. Close the loop: evaluate a weak model, plan augmentation, retrain.
    print("\n==== Adaptive training-data generation ====")
    evaluator = Evaluator(dataset, measure_timing=False)
    weak = build_method("SFT CodeS-1B")
    before = evaluator.evaluate_method(weak)
    plan = plan_augmentation(before)
    print(f"Weak characteristics of SFT CodeS-1B: {plan.weaknesses or ('none',)}")
    augmented = generate_examples(plan, dataset, count=600)
    print(f"Synthesized {len(augmented)} targeted training pairs "
          f"({len({e.intent.shape for e in augmented})} distinct shapes)")
    retrained = build_method("SFT CodeS-1B")
    retrained.prepare_with_examples(
        dataset.name, dataset.train_examples + augmented
    )
    after = evaluator.evaluate_method(retrained, prepare=False)
    print(f"EX before augmentation: {before.ex:.1f} "
          f"(trained on {len(dataset.train_examples)} pairs)")
    print(f"EX after augmentation:  {after.ex:.1f} "
          f"(trained on {len(dataset.train_examples) + len(augmented)} pairs)")
    dataset.close()


if __name__ == "__main__":
    main()
