"""Cost budgeting: token/cost accounting for prompt-based methods (Exp-6).

Which method fits a production budget?  This example reproduces the
paper's Table 5 workflow: per-query tokens, per-query dollars, EX, and
the EX / average-cost cost-effectiveness ratio, then projects a monthly
bill for a target query volume.

Run with::

    python examples/cost_budgeting.py
"""

from repro import Evaluator, build_benchmark, build_method, spider_like_config
from repro.core.economy import economy_table, most_cost_effective
from repro.core.report import format_table
from repro.methods.zoo import method_config

PROMPT_METHODS = ["C3SQL", "DINSQL", "DAILSQL", "DAILSQL(SC)", "SuperSQL"]
MONTHLY_QUERIES = 100_000


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.12))
    evaluator = Evaluator(dataset, measure_timing=False)

    reports = {}
    for name in PROMPT_METHODS:
        print(f"Evaluating {name} ...")
        reports[name] = evaluator.evaluate_method(build_method(name))

    backbones = {name: method_config(name).backbone for name in PROMPT_METHODS}
    rows = economy_table(reports, backbones)

    table_rows = [
        [
            row.method,
            row.backbone,
            f"{row.avg_tokens:.0f}",
            f"${row.avg_cost:.4f}",
            f"{row.ex:.1f}",
            f"{row.ex_per_cost:.0f}",
            f"${row.avg_cost * MONTHLY_QUERIES:,.0f}",
        ]
        for row in rows
    ]
    print()
    print(format_table(
        ["Method", "LLM", "Tok/query", "$/query", "EX", "EX/$",
         f"Monthly ({MONTHLY_QUERIES:,} q)"],
        table_rows,
        title="Accuracy vs LLM economy (paper Table 5 layout)",
    ))

    winner = most_cost_effective(rows)
    print(f"\nMost cost-effective method: {winner.method} "
          f"(EX/$ = {winner.ex_per_cost:.0f}) — GPT-3.5 pricing wins (Finding 9)")
    dataset.close()


if __name__ == "__main__":
    main()
