"""NL2SQL360-AAS design-space search (the paper's §5.3 case study).

Searches the modular design space with the genetic algorithm, using
GPT-3.5 as the search backbone (as the paper does, to save cost), then
promotes the best individual to GPT-4 — which is exactly how SuperSQL was
derived.

Run with::

    python examples/design_space_search.py
"""

from repro import Evaluator, build_benchmark, build_method, spider_like_config
from repro.core.aas import AASConfig, run_aas
from repro.core.design_space import SearchSpace
from repro.methods.base import MethodGroup, PipelineMethod


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.12))
    evaluator = Evaluator(dataset, measure_timing=False)
    search_examples = dataset.dev_examples[:60]

    # Paper settings are N=10, T=20; we shrink for a quick demo run.
    config = AASConfig(population_size=6, generations=4, swap_probability=0.5,
                       mutation_probability=0.2, seed=7)
    print(f"Searching: population={config.population_size}, "
          f"generations={config.generations} ...")
    result = run_aas(SearchSpace(), evaluator, search_examples, config)

    print(f"\nEvaluated {result.evaluations} distinct individuals")
    print("Best-of-generation EX trajectory:",
          [f"{v:.1f}" for v in result.best_per_generation])
    print("\nBest individual (search backbone gpt-3.5-turbo):")
    for layer, module in result.best.assignment.items():
        print(f"  {layer:16s} -> {module}")
    print(f"  fitness (EX on search subset): {result.best.fitness:.1f}")

    # Promote the discovered architecture to GPT-4, as the paper does.
    promoted_config = SearchSpace(backbone="gpt-4").to_config(
        "AAS-best@gpt4", result.best.assignment
    )
    promoted = PipelineMethod(promoted_config, MethodGroup.HYBRID)
    promoted_report = evaluator.evaluate_method(promoted)

    supersql_report = evaluator.evaluate_method(build_method("SuperSQL"))
    dailsql_report = evaluator.evaluate_method(build_method("DAILSQL(SC)"))

    print("\nFull dev-set comparison (EX):")
    print(f"  AAS-discovered pipeline @ GPT-4 : {promoted_report.ex:.1f}")
    print(f"  SuperSQL (paper composition)    : {supersql_report.ex:.1f}")
    print(f"  DAILSQL(SC) strongest baseline  : {dailsql_report.ex:.1f}")
    dataset.close()


if __name__ == "__main__":
    main()
