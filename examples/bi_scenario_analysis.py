"""Business-intelligence scenario analysis (the paper's Figure 3 use case).

A BI practitioner wants to know which NL2SQL method to deploy for *their*
workload — a specific data domain, JOIN-heavy analytic queries, nested
subqueries, and linguistically diverse users.  NL2SQL360's dataset filter
answers each question separately.

Run with::

    python examples/bi_scenario_analysis.py
"""

from repro import (
    DatasetFilter,
    Evaluator,
    build_benchmark,
    build_method,
    qvt_score,
    spider_like_config,
)
from repro.core.report import format_table

METHODS = ["DAILSQL", "SFT CodeS-7B", "RESDSQL-3B + NatSQL"]


def main() -> None:
    dataset = build_benchmark(spider_like_config(scale=0.15))
    evaluator = Evaluator(dataset, measure_timing=False)

    reports = {}
    for name in METHODS:
        print(f"Evaluating {name} ...")
        reports[name] = evaluator.evaluate_method(build_method(name))

    dev = DatasetFilter(dataset.dev_examples)
    scenarios = {
        "Competition domain": {e.example_id for e in dev.domain("competition", "sports")},
        "JOIN queries": {e.example_id for e in dev.with_join()},
        "Nested queries": {e.example_id for e in dev.with_subquery()},
        "ORDER BY queries": {e.example_id for e in dev.with_order_by()},
    }

    rows = []
    for name in METHODS:
        report = reports[name]
        row = [name]
        for ids in scenarios.values():
            subset = report.by_example_ids(ids)
            row.append(f"{subset.ex:.1f}" if len(subset) else "n/a")
        row.append(f"{qvt_score(report):.1f}")
        row.append(f"{report.ex:.1f}")
        rows.append(row)

    print()
    print(format_table(
        ["Method", *scenarios.keys(), "QVT", "Overall EX"],
        rows,
        title="Multi-angle comparison: no single method wins every scenario",
    ))

    print()
    for scenario, ids in scenarios.items():
        best = max(METHODS, key=lambda n: reports[n].by_example_ids(ids).ex)
        print(f"  Best for {scenario!r}: {best}")
    dataset.close()


if __name__ == "__main__":
    main()
