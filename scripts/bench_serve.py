"""Serving-engine benchmark driver — see repro.serve.bench for the design.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py [--quick] [--gateway] \
        [--shards 1 2 4] [--out BENCH_serve.json]

Runs the offline reference, serial baseline, closed-/open-loop runs at
concurrency 1/4/8, the zero-deadline degradation check, and the
response-cache comparison (cold/warm Zipf passes with hit-rate fields,
the semantic-key risk probe, and the data_version invalidation replay);
writes the result document and exits non-zero if any gate fails.
Cache knobs: ``--no-response-cache``, ``--cache-size``, ``--cache-ttl-s``,
``--semantic-keys``.  With ``--gateway``, also sweeps the sharded
multi-process gateway at each ``--shards`` count: full-record fill pass
(bit-identical to offline at every layout), a ``--gateway-requests``
digest volume pass (per-shard p50/p95/p99, scaling efficiency vs one
shard), an ``apply_write`` invalidation stage with exact per-shard
counters, and an HTTP ``/query`` / ``/healthz`` / ``/metrics`` probe.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
