#!/usr/bin/env python
"""Driver for the SQL-toolkit differential fuzz harness.

Runs the three oracle families of :mod:`repro.sqlkit.differential`
(round-trip, metamorphic exact-match, executor) over the gold corpus of
both synthetic benchmarks plus ``--seeds`` seeded fuzz rounds, and exits
non-zero when any oracle diverges.  Equivalent to::

    PYTHONPATH=src python -m repro fuzz-sqlkit --seeds 500

but usable standalone in CI, with a ``--quick`` smoke mode::

    PYTHONPATH=src python scripts/fuzz_sqlkit.py --quick

``--quick`` caps the run (spider corpus only, 40 seeds) so it finishes
in a few seconds; the tier-1 test suite runs the same configuration.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=500)
    parser.add_argument("--benchmark", choices=["spider", "bird", "both"],
                        default="both")
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--max-divergences", type=int, default=25)
    parser.add_argument("--quick", action="store_true",
                        help="capped smoke run (spider only, 40 seeds)")
    args = parser.parse_args(argv)

    from repro.sqlkit.differential import run_fuzz

    if args.quick:
        args.benchmark = "spider"
        args.seeds = min(args.seeds, 40)
        args.scale = min(args.scale, 0.05)

    report = run_fuzz(
        seeds=args.seeds,
        benchmark=args.benchmark,
        scale=args.scale,
        seed=args.seed,
        max_divergences=args.max_divergences,
    )
    print(report.summary())
    for divergence in report.divergences:
        print()
        print(divergence)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
