"""Execution-backend benchmark driver — see repro.dbengine.bench.

Usage::

    PYTHONPATH=src python scripts/bench_dbengine.py [--quick] \
        [--backends sqlite duckdb] [--out BENCH_dbengine.json]

Runs the concurrent-read scaling passes (1/2/4 threads, digest and
checkout-counter gated), the refresh-under-mutation stage (exact
``data_version`` and pool-refresh counters), and the large-table scan
comparison across every installed backend; writes the result document
and exits non-zero if any deterministic gate fails.  Wall-clock
figures (thread speedup, per-backend scan time, DuckDB-vs-SQLite
ratio) are recorded for trend tracking but never gated.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dbengine.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
