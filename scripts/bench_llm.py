#!/usr/bin/env python
"""Benchmark the inference engine: prompt-prefix cache and batched decoding.

Times the two new hot paths in ``repro.llm.engine`` and writes
``BENCH_llm.json`` so the perf trajectory can be tracked across PRs:

1. **prefix cache** — builds every dev prompt for three pipeline
   configurations three ways: cold (empty cache), warm (``--repeats``
   passes, median), and uncached (``caches_disabled()``).  Asserts the
   three produce byte-identical prompt text and exact summed token
   counts; records the warm speedup and the per-kind segment hit/miss
   stats.
2. **batched decoding** — evaluates a method zoo covering all four
   decoders (greedy, beam, sampling, PICARD) with batching on and under
   ``batching_disabled()``.  Asserts the two record streams are
   bit-identical, records both wall-clocks, and derives the
   draws-per-batched-call histogram plus the ``prefix_*`` /
   ``llm_batch*`` counters from the traced spans.
3. **serving decode windows** — serves a small workload through
   :class:`~repro.serve.engine.ServingEngine` and records the decode
   scheduler's window statistics.

Wall-clock numbers are **recorded, never gated** — at this scale the
simulated model makes prompt assembly and decoding microsecond-cheap, so
speedups are trajectory data, not assertions.  What *is* gated (exit 1)
is deterministic: byte-identical prompts, exact token counts,
bit-identical records across the batching switch, and the engagement
counters (``prefix_hits`` > 0, ``llm_batched_calls`` > 0).

Usage::

    PYTHONPATH=src python scripts/bench_llm.py            # full run
    PYTHONPATH=src python scripts/bench_llm.py --quick    # tier-2 smoke
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from collections import Counter
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.evaluator import Evaluator  # noqa: E402
from repro.datagen.benchmark import build_benchmark, spider_like_config  # noqa: E402
from repro.llm.engine import batching_disabled, clear_prefix_cache, prefix_cache  # noqa: E402
from repro.llm.tokens import count_tokens  # noqa: E402
from repro.methods.zoo import build_method  # noqa: E402
from repro.modules.base import PipelineConfig  # noqa: E402
from repro.modules.prompts import build_prompt  # noqa: E402
from repro.obs import tracing  # noqa: E402
from repro.serve import ServeConfig, ServingEngine, WorkloadSpec, build_workload  # noqa: E402
from repro.utils.cache import caches_disabled  # noqa: E402

DEFAULT_METHODS = ["DAILSQL", "DAILSQL(SC)", "BRIDGE v2", "T5-3B + PICARD"]

PROMPT_CONFIGS = [
    PipelineConfig(
        name="plain", backbone="gpt-4",
        prompting="similarity_fewshot", few_shot_k=3,
    ),
    PipelineConfig(
        name="linked", backbone="gpt-3.5-turbo", schema_linking="resdsql",
        db_content="bridge", prompting="manual_fewshot", few_shot_k=2,
        prompt_overhead_tokens=120,
    ),
    PipelineConfig(
        name="open", backbone="llama2-7b", db_content="codes",
        prompting="zero_shot",
    ),
]


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _build_all_prompts(dataset) -> list:
    train_pairs = [
        (example.question, example.gold_sql)
        for example in dataset.train_examples[:20]
    ]
    prompts = []
    for config in PROMPT_CONFIGS:
        for example in dataset.dev_examples:
            database = dataset.databases[example.db_id]
            prompts.append(
                build_prompt(config, database, example.question, train_pairs)
            )
    return prompts


def bench_prefix_cache(dataset, repeats: int) -> dict:
    clear_prefix_cache()
    cold_seconds, cold_prompts = _timed(lambda: _build_all_prompts(dataset))

    warm_times: list[float] = []
    warm_prompts = cold_prompts
    for _ in range(repeats):
        seconds, warm_prompts = _timed(lambda: _build_all_prompts(dataset))
        warm_times.append(seconds)
    warm_seconds = statistics.median(warm_times)
    stats = prefix_cache().stats()

    def uncached():
        with caches_disabled():
            return _build_all_prompts(dataset)

    uncached_seconds, uncached_prompts = _timed(uncached)

    byte_identical = all(
        cold.text == warm.text == fresh.text
        for cold, warm, fresh in zip(cold_prompts, warm_prompts, uncached_prompts)
    )
    token_counts_exact = all(
        prompt.token_count == count_tokens(prompt.text)
        for prompts in (cold_prompts, warm_prompts, uncached_prompts)
        for prompt in prompts
    )
    return {
        "prompts_per_pass": len(cold_prompts),
        "configs": [config.name for config in PROMPT_CONFIGS],
        "seconds": {
            "cold": round(cold_seconds, 4),
            "warm": round(warm_seconds, 4),
            "uncached": round(uncached_seconds, 4),
        },
        # Recorded for the trajectory, never gated.
        "warm_speedup_vs_cold": round(cold_seconds / max(warm_seconds, 1e-9), 3),
        "warm_speedup_vs_uncached": round(
            uncached_seconds / max(warm_seconds, 1e-9), 3
        ),
        "segment_stats": stats,
        "byte_identical": byte_identical,
        "token_counts_exact": token_counts_exact,
    }


def _batch_histogram(spans) -> dict[str, int]:
    """Draws-per-batched-call distribution across all traced stages."""
    histogram: Counter[int] = Counter()
    for span in spans:
        for stage in span.stages:
            if stage.llm_batched_calls > 0:
                per_call = round(stage.llm_batch_draws / stage.llm_batched_calls)
                histogram[per_call] += stage.llm_batched_calls
    return {str(size): histogram[size] for size in sorted(histogram)}


def bench_batching(dataset, methods: list[str], seed: int) -> dict:
    def evaluate():
        evaluator = Evaluator(dataset, measure_timing=False)
        with tracing() as tracer:
            reports = evaluator.evaluate_zoo(
                [build_method(m, seed=seed) for m in methods]
            )
        return reports, evaluator.trace_spans, tracer

    # Warm-up pass so both timed passes see the same steady-state caches.
    evaluate()
    batched_seconds, (batched_reports, spans, _) = _timed(evaluate)

    def evaluate_unbatched():
        with batching_disabled():
            return evaluate()

    sequential_seconds, (sequential_reports, _, _) = _timed(evaluate_unbatched)

    records_identical = all(
        batched_reports[m].records == sequential_reports[m].records
        for m in methods
    )
    prefix_hits = sum(s.prefix_hits for span in spans for s in span.stages)
    prefix_misses = sum(s.prefix_misses for span in spans for s in span.stages)
    batched_calls = sum(
        s.llm_batched_calls for span in spans for s in span.stages
    )
    batch_draws = sum(s.llm_batch_draws for span in spans for s in span.stages)
    return {
        "seconds": {
            "batched": round(batched_seconds, 4),
            "sequential": round(sequential_seconds, 4),
        },
        # Recorded for the trajectory, never gated.
        "batched_speedup": round(
            sequential_seconds / max(batched_seconds, 1e-9), 3
        ),
        "records_identical": records_identical,
        "prefix_hits": prefix_hits,
        "prefix_misses": prefix_misses,
        "llm_batched_calls": batched_calls,
        "llm_batch_draws": batch_draws,
        "draws_per_call": round(batch_draws / max(batched_calls, 1), 3),
        "batch_histogram": _batch_histogram(spans),
    }


def bench_serving(dataset, method: str, requests: int) -> dict:
    workload = build_workload(
        dataset,
        WorkloadSpec(
            requests=requests, methods=(method,),
            distinct_examples=max(4, requests // 3), zipf_s=1.1, seed=7,
        ),
    )
    config = ServeConfig(methods=(method,), workers=4, measure_timing=False)
    seconds, stats = _timed(lambda: _serve(dataset, config, workload))
    return {
        "method": method,
        "requests": requests,
        "seconds": round(seconds, 4),
        "decode_windows": stats.decode_windows,
        "decode_submissions": stats.decode_submissions,
        "decode_draws": stats.decode_draws,
        "decode_max_submission": stats.decode_max_submission,
    }


def _serve(dataset, config, workload):
    with ServingEngine(dataset, config) as engine:
        for response in engine.serve(list(workload)):
            if not response.ok:
                raise RuntimeError(f"serve failed: {response.error}")
        return engine.stats


def run_bench(args: argparse.Namespace) -> dict:
    dataset = build_benchmark(spider_like_config(scale=args.scale, seed=args.seed))
    print(
        f"dataset: {dataset.name} scale={args.scale}"
        f" ({len(dataset.dev_examples)} dev examples,"
        f" {len(args.methods)} methods, repeats={args.repeats})",
        file=sys.stderr,
    )

    prefix = bench_prefix_cache(dataset, args.repeats)
    print(
        f"prefix cache      : cold {prefix['seconds']['cold']:.4f}s ·"
        f" warm {prefix['seconds']['warm']:.4f}s ·"
        f" uncached {prefix['seconds']['uncached']:.4f}s"
        f" ({prefix['warm_speedup_vs_cold']:.2f}x vs cold)",
        file=sys.stderr,
    )

    batching = bench_batching(dataset, args.methods, args.seed)
    print(
        f"batched decoding  : batched {batching['seconds']['batched']:.3f}s ·"
        f" sequential {batching['seconds']['sequential']:.3f}s ·"
        f" {batching['llm_batched_calls']} calls /"
        f" {batching['llm_batch_draws']} draws",
        file=sys.stderr,
    )

    serving = bench_serving(dataset, args.serve_method, args.serve_requests)
    print(
        f"serving windows   : {serving['decode_windows']} windows ·"
        f" {serving['decode_draws']} draws ·"
        f" max submission {serving['decode_max_submission']}",
        file=sys.stderr,
    )
    dev_examples = len(dataset.dev_examples)
    dataset.close()

    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "cpu_count": os.cpu_count(),
        "scale": args.scale,
        "seed": args.seed,
        "repeats": args.repeats,
        "methods": args.methods,
        "dev_examples": dev_examples,
        "prefix_cache": prefix,
        "batching": batching,
        "serving": serving,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm prefix-cache passes; the median is reported")
    parser.add_argument("--methods", nargs="+", default=DEFAULT_METHODS)
    parser.add_argument("--serve-method", default="DAILSQL(SC)")
    parser.add_argument("--serve-requests", type=int, default=24)
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_llm.json"))
    parser.add_argument("--quick", action="store_true",
                        help="tier-2 smoke: small dataset, same deterministic"
                             " gates")
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 0.12)
        args.repeats = min(args.repeats, 2)
        args.serve_requests = min(args.serve_requests, 12)

    result = run_bench(args)
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    print(json.dumps(
        {"prefix_cache": result["prefix_cache"]["seconds"],
         "batching": result["batching"]["seconds"]}, indent=2))

    # Deterministic gates only — wall-clock numbers are never gated.
    if not result["prefix_cache"]["byte_identical"]:
        print("FAIL: prefix-cached prompts differ from uncached", file=sys.stderr)
        return 1
    if not result["prefix_cache"]["token_counts_exact"]:
        print("FAIL: primed token counts differ from a full scan", file=sys.stderr)
        return 1
    if not result["batching"]["records_identical"]:
        print("FAIL: batched records differ from sequential", file=sys.stderr)
        return 1
    if result["batching"]["prefix_hits"] <= 0:
        print("FAIL: prompt prefix cache registered no hits", file=sys.stderr)
        return 1
    if result["batching"]["llm_batched_calls"] <= 0:
        print("FAIL: batched decoding registered no batched calls", file=sys.stderr)
        return 1
    if result["serving"]["decode_windows"] <= 0:
        print("FAIL: serving opened no decode windows", file=sys.stderr)
        return 1
    print(
        "bench OK: warm prefix build"
        f" {result['prefix_cache']['warm_speedup_vs_cold']:.2f}x vs cold;"
        f" {result['batching']['llm_batched_calls']} batched calls covering"
        f" {result['batching']['llm_batch_draws']} draws;"
        f" records identical across the batching switch",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
