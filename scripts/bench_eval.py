#!/usr/bin/env python
"""Benchmark the evaluation engine: sequential vs parallel vs warm cache.

Times a multi-method zoo evaluation and writes ``BENCH_eval.json`` so the
perf trajectory can be tracked across PRs:

1. **warm-up** — one untimed sequential pass that populates every
   process-level cache (DB value caches, the few-shot index registry,
   PICARD verdict and candidate-execution memos), so the timed passes
   below measure steady state rather than cache state.
2. **uncached reference** — one traced sequential pass under
   ``caches_disabled()``: the per-stage "before" column of the hot-path
   cache comparison, and the baseline for the cache-equivalence check.
3. **sequential / sequential traced** — ``--repeats`` alternating
   untraced/traced passes; the reported numbers are the medians, so
   ``overhead_pct`` measures tracing, not pass order.  The per-stage
   rows (seconds, shares, cache speedups) are likewise per-stage
   medians across the traced passes, so a single noisy pass on a loaded
   host cannot skew the stage gates.
4. **parallel (cold)** — :class:`ParallelEvaluator` with a fresh result
   cache: worker pool + one-pass gold precompute.
5. **parallel (warm)** — a second engine over the same log store: every
   record is served from the persistent cross-run result cache.

The ``tracing`` section carries the per-stage breakdown of the traced
pass (cached) and the uncached reference, per-stage cache speedups, and
the hot-path memo-hit counters (schema documented in
docs/OBSERVABILITY.md).

Also verifies that parallel records are identical to sequential ones and
that the memo layers are bit-identical on vs off (the engine's core
contracts).

Usage::

    PYTHONPATH=src python scripts/bench_eval.py            # full run
    PYTHONPATH=src python scripts/bench_eval.py --quick    # tier-2 smoke:
        # asserts warm-cache is not slower than sequential, the warm run
        # performs zero predictions, caches are bit-identical on vs off,
        # and the fewshot stage share stays below 10%; exits 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.evaluator import Evaluator  # noqa: E402
from repro.core.logs import ExperimentLogStore  # noqa: E402
from repro.core.parallel import ParallelEvaluator  # noqa: E402
from repro.datagen.benchmark import build_benchmark, spider_like_config  # noqa: E402
from repro.methods.zoo import build_method  # noqa: E402
from repro.obs import stage_breakdown, tracing  # noqa: E402
from repro.utils.cache import caches_disabled  # noqa: E402

DEFAULT_METHODS = ["C3SQL", "DAILSQL", "SFT CodeS-7B", "RESDSQL-3B", "SuperSQL"]

FEWSHOT_SHARE_BOUND_PCT = 10.0


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _median_stage_rows(rows_per_pass: list[dict]) -> dict:
    """Per-stage medians of ``stage_breakdown`` rows across traced passes.

    Wall-clock per-stage seconds at small scale are scheduler-noise
    sensitive; the median across the alternating traced passes is what
    the shares and cache speedups are derived from.  Memo-hit counters
    are deterministic per pass, so their median equals any pass's value.
    """
    stages: list[str] = []
    for rows in rows_per_pass:
        for stage in rows:
            if stage not in stages:
                stages.append(stage)
    counters = ("memo_hits", "prefix_hits", "prefix_misses",
                "llm_batched_calls", "llm_batch_draws")
    merged: dict[str, dict] = {}
    for stage in stages:
        merged[stage] = {
            "seconds": statistics.median(
                rows.get(stage, {}).get("seconds", 0.0) for rows in rows_per_pass
            ),
        }
        for counter in counters:
            merged[stage][counter] = int(statistics.median(
                rows.get(stage, {}).get(counter, 0) for rows in rows_per_pass
            ))
    total = sum(row["seconds"] for row in merged.values())
    for row in merged.values():
        row["share_pct"] = 100.0 * row["seconds"] / total if total else 0.0
    return merged


def _records_equal(reports_a: dict, reports_b: dict, methods: list[str],
                   timing: bool) -> bool:
    """Bit-identical with timing off; EX-stream equality with timing on."""
    if timing:
        return all(
            [r.ex for r in reports_a[m].records]
            == [r.ex for r in reports_b[m].records]
            for m in methods
        )
    return all(reports_a[m].records == reports_b[m].records for m in methods)


def run_bench(args: argparse.Namespace) -> dict:
    dataset = build_benchmark(spider_like_config(scale=args.scale, seed=args.seed))
    methods = args.methods
    examples = dataset.dev_examples
    print(
        f"dataset: {dataset.name} scale={args.scale}"
        f" ({len(examples)} dev examples, {len(methods)} methods,"
        f" jobs={args.jobs}, repeats={args.repeats})",
        file=sys.stderr,
    )

    def sequential():
        evaluator = Evaluator(dataset, measure_timing=args.timing)
        return evaluator.evaluate_zoo([build_method(m, seed=args.seed) for m in methods])

    def sequential_traced():
        evaluator = Evaluator(dataset, measure_timing=args.timing)
        with tracing():
            reports = evaluator.evaluate_zoo(
                [build_method(m, seed=args.seed) for m in methods]
            )
        return reports, evaluator.trace_spans

    # 1. Warm-up: populate process-level caches so the timed passes below
    # all see the same steady state (this was the source of the old
    # negative "tracing overhead": the traced pass ran second and
    # inherited warm caches).
    warmup_seconds, _ = _timed(sequential)
    print(f"warm-up           : {warmup_seconds:8.3f}s (untimed)", file=sys.stderr)

    # 2. Uncached reference: the hot-path memo layers bypassed.
    def sequential_uncached():
        with caches_disabled():
            return sequential_traced()

    uncached_seconds, (uncached_reports, uncached_spans) = _timed(sequential_uncached)
    print(f"uncached (traced) : {uncached_seconds:8.3f}s", file=sys.stderr)
    uncached_rows = stage_breakdown(uncached_spans)

    # 3. Alternating timed passes; medians kill residual ordering effects.
    seq_times: list[float] = []
    traced_times: list[float] = []
    seq_reports = None
    trace_spans = None
    traced_stage_rows: list[dict] = []
    for rep in range(args.repeats):
        seconds, seq_reports = _timed(sequential)
        seq_times.append(seconds)
        seconds, (traced_reports, trace_spans) = _timed(sequential_traced)
        traced_times.append(seconds)
        traced_stage_rows.append(stage_breakdown(trace_spans))
        print(
            f"pass {rep + 1}/{args.repeats}        : "
            f"untraced {seq_times[-1]:.3f}s · traced {traced_times[-1]:.3f}s",
            file=sys.stderr,
        )
    seq_seconds = statistics.median(seq_times)
    traced_seconds = statistics.median(traced_times)
    trace_overhead_pct = 100.0 * (traced_seconds - seq_seconds) / max(seq_seconds, 1e-9)
    print(
        f"sequential        : {seq_seconds:8.3f}s (median of {args.repeats})",
        file=sys.stderr,
    )
    print(
        f"sequential traced : {traced_seconds:8.3f}s"
        f" (overhead {trace_overhead_pct:+.1f}%)",
        file=sys.stderr,
    )
    stage_rows = _median_stage_rows(traced_stage_rows)

    # Per-stage before/after: cache layers off vs on.
    cache_speedup = {}
    for stage, row in uncached_rows.items():
        after = stage_rows.get(stage, {}).get("seconds", 0.0)
        cache_speedup[stage] = round(row["seconds"] / max(after, 1e-9), 2)
    print("stage            uncached    cached   speedup", file=sys.stderr)
    for stage, row in uncached_rows.items():
        after = stage_rows.get(stage, {}).get("seconds", 0.0)
        print(
            f"  {stage:<15}{row['seconds']:8.4f}s {after:8.4f}s"
            f" {cache_speedup[stage]:8.2f}x",
            file=sys.stderr,
        )

    with tempfile.TemporaryDirectory() as tmp:
        cache_db = str(Path(tmp) / "bench_cache.db")

        def parallel_cold():
            with ExperimentLogStore(cache_db) as store:
                with ParallelEvaluator(
                    dataset, log_store=store, measure_timing=args.timing,
                    jobs=args.jobs,
                ) as engine:
                    reports = engine.evaluate_zoo(
                        [build_method(m, seed=args.seed) for m in methods]
                    )
                    return reports, engine.stats

        cold_seconds, (cold_reports, cold_stats) = _timed(parallel_cold)
        print(f"parallel (cold)   : {cold_seconds:8.3f}s", file=sys.stderr)

        def parallel_warm():
            with ExperimentLogStore(cache_db) as store:
                with ParallelEvaluator(
                    dataset, log_store=store, measure_timing=args.timing,
                    jobs=args.jobs,
                ) as engine:
                    reports = engine.evaluate_zoo(
                        [build_method(m, seed=args.seed) for m in methods]
                    )
                    return reports, engine.stats

        warm_seconds, (warm_reports, warm_stats) = _timed(parallel_warm)
        print(f"parallel (warm)   : {warm_seconds:8.3f}s", file=sys.stderr)

    # Core contracts: sequential == parallel (cold and warm), and the
    # memo layers change nothing (uncached == cached sequential).
    identical = _records_equal(seq_reports, cold_reports, methods, args.timing)
    if not args.timing:
        identical = identical and _records_equal(
            seq_reports, warm_reports, methods, args.timing
        )
    cache_identical = _records_equal(
        uncached_reports, seq_reports, methods, args.timing
    )
    dataset.close()

    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "scale": args.scale,
        "seed": args.seed,
        "repeats": args.repeats,
        "measure_timing": args.timing,
        "methods": methods,
        "dev_examples": len(examples),
        "seconds": {
            "warmup": round(warmup_seconds, 4),
            "sequential_uncached": round(uncached_seconds, 4),
            "sequential": round(seq_seconds, 4),
            "sequential_traced": round(traced_seconds, 4),
            "parallel_cold": round(cold_seconds, 4),
            "parallel_warm": round(warm_seconds, 4),
        },
        "tracing": {
            "overhead_pct": round(trace_overhead_pct, 2),
            "spans": len(trace_spans),
            "stage_seconds": {
                stage: round(row["seconds"], 4) for stage, row in stage_rows.items()
            },
            "stage_share_pct": {
                stage: round(row["share_pct"], 2) for stage, row in stage_rows.items()
            },
            "stage_memo_hits": {
                stage: int(row["memo_hits"]) for stage, row in stage_rows.items()
            },
            "prefix_hits": sum(row["prefix_hits"] for row in stage_rows.values()),
            "prefix_misses": sum(
                row["prefix_misses"] for row in stage_rows.values()
            ),
            "llm_batched_calls": sum(
                row["llm_batched_calls"] for row in stage_rows.values()
            ),
            "llm_batch_draws": sum(
                row["llm_batch_draws"] for row in stage_rows.values()
            ),
            "stage_seconds_uncached": {
                stage: round(row["seconds"], 4)
                for stage, row in uncached_rows.items()
            },
            "stage_share_pct_uncached": {
                stage: round(row["share_pct"], 2)
                for stage, row in uncached_rows.items()
            },
            "cache_stage_speedup": cache_speedup,
        },
        "speedup": {
            "parallel_cold": round(seq_seconds / max(cold_seconds, 1e-9), 3),
            "parallel_warm": round(seq_seconds / max(warm_seconds, 1e-9), 3),
            "hot_path_caches": round(
                uncached_seconds / max(traced_seconds, 1e-9), 3
            ),
        },
        "records_identical": identical,
        "cache_records_identical": cache_identical,
        "cold_stats": {
            "predictions": cold_stats.predictions,
            "cache_hits": cold_stats.cache_hits,
            "gold_executions": cold_stats.gold_executions,
            "parallel_tasks": cold_stats.parallel_tasks,
        },
        "warm_stats": {
            "predictions": warm_stats.predictions,
            "cache_hits": warm_stats.cache_hits,
            "gold_executions": warm_stats.gold_executions,
            "parallel_tasks": warm_stats.parallel_tasks,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--repeats", type=int, default=3,
                        help="alternating untraced/traced timed passes;"
                             " medians are reported")
    parser.add_argument("--methods", nargs="+", default=DEFAULT_METHODS)
    parser.add_argument("--timing", action="store_true",
                        help="measure VES timings (off by default so runs"
                             " are comparable bit-for-bit)")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_eval.json"))
    parser.add_argument("--quick", action="store_true",
                        help="tier-2 smoke: small dataset, assert warm-cache"
                             " is not slower than sequential and the stage"
                             " perf gates hold")
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 0.12)
        args.methods = args.methods[:3]
        args.repeats = min(args.repeats, 2)

    result = run_bench(args)
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    print(json.dumps(result["seconds"], indent=2))

    if not result["records_identical"]:
        print("FAIL: parallel records differ from sequential", file=sys.stderr)
        return 1
    if not result["cache_records_identical"]:
        print("FAIL: records differ with hot-path caches on vs off",
              file=sys.stderr)
        return 1
    if args.quick:
        if result["warm_stats"]["predictions"] != 0:
            print("FAIL: warm-cache run performed predictions", file=sys.stderr)
            return 1
        # Allow a little scheduler slack; a warm cache that only reads
        # SQLite rows should beat a full evaluation comfortably anyway.
        if result["seconds"]["parallel_warm"] > result["seconds"]["sequential"] * 1.10:
            print("FAIL: parallel+warm-cache slower than sequential", file=sys.stderr)
            return 1
        # The acceptance bar is <= 5% tracing overhead; the smoke gate is
        # looser because tiny --quick runs are dominated by timer noise.
        if result["tracing"]["overhead_pct"] > 25.0:
            print("FAIL: tracing overhead "
                  f"{result['tracing']['overhead_pct']:.1f}% exceeds smoke bound",
                  file=sys.stderr)
            return 1
        # Stage-level perf gate: with the retrieval index + selection memo
        # the fewshot stage must stay a single-digit share of stage time
        # (shares come from per-stage medians across the traced passes).
        fewshot_share = result["tracing"]["stage_share_pct"].get("fewshot", 0.0)
        if fewshot_share >= FEWSHOT_SHARE_BOUND_PCT:
            print(f"FAIL: fewshot stage share {fewshot_share:.1f}% >="
                  f" {FEWSHOT_SHARE_BOUND_PCT:.0f}% bound", file=sys.stderr)
            return 1
        # The inference-engine layers must demonstrably engage: the
        # prompt-prefix cache registers segment hits and every decode
        # routes its draws through one batched model call (deterministic
        # counters, not wall-clock ratios).
        if result["tracing"]["prefix_hits"] <= 0:
            print("FAIL: prompt prefix cache registered no hits", file=sys.stderr)
            return 1
        if result["tracing"]["llm_batched_calls"] <= 0:
            print("FAIL: batched decoding registered no batched calls",
                  file=sys.stderr)
            return 1
        print("quick smoke OK: warm-cache run did zero predictions and was"
              f" {result['speedup']['parallel_warm']:.1f}x sequential;"
              f" tracing overhead {result['tracing']['overhead_pct']:+.1f}%;"
              f" fewshot share {fewshot_share:.1f}%;"
              f" hot-path caches {result['speedup']['hot_path_caches']:.2f}x",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
