#!/usr/bin/env python
"""Benchmark the evaluation engine: sequential vs parallel vs warm cache.

Times a multi-method zoo evaluation three ways and writes ``BENCH_eval.json``
so the perf trajectory can be tracked across PRs:

1. **sequential** — the classic :class:`Evaluator` loop.
2. **parallel (cold)** — :class:`ParallelEvaluator` with a fresh result
   cache: worker pool + one-pass gold precompute.
3. **parallel (warm)** — a second engine over the same log store: every
   record is served from the persistent cross-run result cache.

A fourth, traced sequential pass measures the observability layer's
overhead and emits the per-stage time breakdown into the ``tracing``
section of ``BENCH_eval.json`` (schema documented in
docs/OBSERVABILITY.md).

Also verifies that the parallel records are identical to the sequential
ones (the engine's core contract).

Usage::

    PYTHONPATH=src python scripts/bench_eval.py            # full run
    PYTHONPATH=src python scripts/bench_eval.py --quick    # tier-2 smoke:
        # asserts parallel+warm-cache is not slower than sequential and
        # that the warm run performs zero predictions; exits 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.evaluator import Evaluator  # noqa: E402
from repro.core.logs import ExperimentLogStore  # noqa: E402
from repro.core.parallel import ParallelEvaluator  # noqa: E402
from repro.datagen.benchmark import build_benchmark, spider_like_config  # noqa: E402
from repro.methods.zoo import build_method  # noqa: E402
from repro.obs import stage_breakdown, tracing  # noqa: E402

DEFAULT_METHODS = ["C3SQL", "DAILSQL", "SFT CodeS-7B", "RESDSQL-3B", "SuperSQL"]


def _timed(fn) -> tuple[float, dict]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_bench(args: argparse.Namespace) -> dict:
    dataset = build_benchmark(spider_like_config(scale=args.scale, seed=args.seed))
    methods = args.methods
    examples = dataset.dev_examples
    print(
        f"dataset: {dataset.name} scale={args.scale}"
        f" ({len(examples)} dev examples, {len(methods)} methods,"
        f" jobs={args.jobs})",
        file=sys.stderr,
    )

    def sequential():
        evaluator = Evaluator(dataset, measure_timing=args.timing)
        return evaluator.evaluate_zoo([build_method(m, seed=args.seed) for m in methods])

    seq_seconds, seq_reports = _timed(sequential)
    print(f"sequential        : {seq_seconds:8.3f}s", file=sys.stderr)

    def sequential_traced():
        evaluator = Evaluator(dataset, measure_timing=args.timing)
        with tracing():
            evaluator.evaluate_zoo(
                [build_method(m, seed=args.seed) for m in methods]
            )
        return evaluator.trace_spans

    traced_seconds, trace_spans = _timed(sequential_traced)
    trace_overhead_pct = 100.0 * (traced_seconds - seq_seconds) / max(seq_seconds, 1e-9)
    print(
        f"sequential traced : {traced_seconds:8.3f}s"
        f" (overhead {trace_overhead_pct:+.1f}%)",
        file=sys.stderr,
    )
    stage_rows = stage_breakdown(trace_spans)

    with tempfile.TemporaryDirectory() as tmp:
        cache_db = str(Path(tmp) / "bench_cache.db")

        def parallel_cold():
            with ExperimentLogStore(cache_db) as store:
                with ParallelEvaluator(
                    dataset, log_store=store, measure_timing=args.timing,
                    jobs=args.jobs,
                ) as engine:
                    reports = engine.evaluate_zoo(
                        [build_method(m, seed=args.seed) for m in methods]
                    )
                    return reports, engine.stats

        cold_seconds, (cold_reports, cold_stats) = _timed(parallel_cold)
        print(f"parallel (cold)   : {cold_seconds:8.3f}s", file=sys.stderr)

        def parallel_warm():
            with ExperimentLogStore(cache_db) as store:
                with ParallelEvaluator(
                    dataset, log_store=store, measure_timing=args.timing,
                    jobs=args.jobs,
                ) as engine:
                    reports = engine.evaluate_zoo(
                        [build_method(m, seed=args.seed) for m in methods]
                    )
                    return reports, engine.stats

        warm_seconds, (warm_reports, warm_stats) = _timed(parallel_warm)
        print(f"parallel (warm)   : {warm_seconds:8.3f}s", file=sys.stderr)

    # Core contract: identical records (bit-identical with timing off;
    # with timing on, compare the deterministic fields via EX/EM).
    if args.timing:
        identical = all(
            [r.ex for r in seq_reports[m].records]
            == [r.ex for r in cold_reports[m].records]
            for m in methods
        )
    else:
        identical = all(
            seq_reports[m].records == cold_reports[m].records
            and seq_reports[m].records == warm_reports[m].records
            for m in methods
        )
    dataset.close()

    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "scale": args.scale,
        "seed": args.seed,
        "measure_timing": args.timing,
        "methods": methods,
        "dev_examples": len(examples),
        "seconds": {
            "sequential": round(seq_seconds, 4),
            "sequential_traced": round(traced_seconds, 4),
            "parallel_cold": round(cold_seconds, 4),
            "parallel_warm": round(warm_seconds, 4),
        },
        "tracing": {
            "overhead_pct": round(trace_overhead_pct, 2),
            "spans": len(trace_spans),
            "stage_seconds": {
                stage: round(row["seconds"], 4) for stage, row in stage_rows.items()
            },
            "stage_share_pct": {
                stage: round(row["share_pct"], 2) for stage, row in stage_rows.items()
            },
        },
        "speedup": {
            "parallel_cold": round(seq_seconds / max(cold_seconds, 1e-9), 3),
            "parallel_warm": round(seq_seconds / max(warm_seconds, 1e-9), 3),
        },
        "records_identical": identical,
        "cold_stats": {
            "predictions": cold_stats.predictions,
            "cache_hits": cold_stats.cache_hits,
            "gold_executions": cold_stats.gold_executions,
            "parallel_tasks": cold_stats.parallel_tasks,
        },
        "warm_stats": {
            "predictions": warm_stats.predictions,
            "cache_hits": warm_stats.cache_hits,
            "gold_executions": warm_stats.gold_executions,
            "parallel_tasks": warm_stats.parallel_tasks,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--methods", nargs="+", default=DEFAULT_METHODS)
    parser.add_argument("--timing", action="store_true",
                        help="measure VES timings (off by default so runs"
                             " are comparable bit-for-bit)")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_eval.json"))
    parser.add_argument("--quick", action="store_true",
                        help="tier-2 smoke: small dataset, assert warm-cache"
                             " is not slower than sequential")
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 0.12)
        args.methods = args.methods[:3]

    result = run_bench(args)
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    print(json.dumps(result["seconds"], indent=2))

    if not result["records_identical"]:
        print("FAIL: parallel records differ from sequential", file=sys.stderr)
        return 1
    if args.quick:
        if result["warm_stats"]["predictions"] != 0:
            print("FAIL: warm-cache run performed predictions", file=sys.stderr)
            return 1
        # Allow a little scheduler slack; a warm cache that only reads
        # SQLite rows should beat a full evaluation comfortably anyway.
        if result["seconds"]["parallel_warm"] > result["seconds"]["sequential"] * 1.10:
            print("FAIL: parallel+warm-cache slower than sequential", file=sys.stderr)
            return 1
        # The acceptance bar is <= 5% tracing overhead; the smoke gate is
        # looser because tiny --quick runs are dominated by timer noise.
        if result["tracing"]["overhead_pct"] > 25.0:
            print("FAIL: tracing overhead "
                  f"{result['tracing']['overhead_pct']:.1f}% exceeds smoke bound",
                  file=sys.stderr)
            return 1
        print("quick smoke OK: warm-cache run did zero predictions and was"
              f" {result['speedup']['parallel_warm']:.1f}x sequential;"
              f" tracing overhead {result['tracing']['overhead_pct']:+.1f}%",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
