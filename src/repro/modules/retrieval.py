"""Few-shot retrieval index: inverted-index Jaccard top-k over train questions.

:func:`repro.modules.fewshot.select_examples` re-tokenizes every training
question on every call — O(|train|) tokenizations per example, repeated
per method and per AAS generation.  :class:`FewShotIndex` builds the
tokenization once per train corpus: each train question is stored as a
frozen token set, and an inverted token → candidate-id map restricts
Jaccard scoring to examples sharing at least one token with the target
question.  Selection uses :func:`heapq.nlargest`, and a bounded
per-question memo shares completed selections across methods that use
the same train split.

The index is an *exact* replacement, not an approximation: for any
corpus and query it returns bit-identical ``(examples, quality)`` to the
brute-force selector (asserted against randomized corpora in
``tests/test_perf_caches.py``).  The equivalence relies on three facts:

* ``|A ∪ B| = |A| + |B| - |A ∩ B|``, so the indexed similarity
  ``inter / (|A| + |B| - inter)`` divides the same two integers as
  ``jaccard`` and produces the same float;
* candidates sharing no token score exactly ``0.0`` (and ones sharing a
  token score ``> 0.0``), so the inverted index misses nothing that the
  stable descending sort would have placed in the top k ahead of the
  zero-similarity tail (taken in corpus order);
* an empty query token set matches :func:`repro.utils.text.jaccard`'s
  both-empty convention — empty train questions score ``1.0``, all
  others ``0.0``.

Indexes are obtained through :func:`index_for`, a small process-level
registry keyed by a stable hash of the corpus so identical train splits
(across methods, or across evaluator instances in thread workers) share
one index and one memo.  Process workers rebuild the registry lazily on
first use; pickling an index reduces to its pair list and rebuilds
deterministically on the other side.
"""

from __future__ import annotations

import heapq
import threading

from repro.modules.fewshot import (
    MANUAL_EXAMPLES,
    MANUAL_QUALITY,
    FewShotExample,
)
from repro.utils.cache import LRUCache
from repro.utils.rng import stable_hash
from repro.utils.text import tokenize_words

_MEMO_MAXSIZE = 16384


class FewShotIndex:
    """Pre-tokenized train corpus with inverted-index top-k selection."""

    __slots__ = ("_pairs", "_token_sets", "_sizes", "_inverted", "_empty_ids", "_memo")

    def __init__(self, train_pairs: list[tuple[str, str]]) -> None:
        self._pairs: tuple[tuple[str, str], ...] = tuple(
            (question, sql) for question, sql in train_pairs
        )
        self._token_sets: list[frozenset[str]] = [
            frozenset(tokenize_words(question)) for question, _ in self._pairs
        ]
        self._sizes: list[int] = [len(tokens) for tokens in self._token_sets]
        inverted: dict[str, list[int]] = {}
        empty_ids: list[int] = []
        for idx, tokens in enumerate(self._token_sets):
            if not tokens:
                empty_ids.append(idx)
                continue
            for token in tokens:
                inverted.setdefault(token, []).append(idx)
        self._inverted = inverted
        self._empty_ids = tuple(empty_ids)
        self._memo = LRUCache(maxsize=_MEMO_MAXSIZE)

    def __len__(self) -> int:
        return len(self._pairs)

    def __reduce__(self):
        # Rebuild (cheaply and deterministically) on unpickle rather than
        # shipping the inverted index and memo across process boundaries.
        return (index_for, (list(self._pairs),))

    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        return self._pairs

    def top_k(self, question: str, k: int) -> list[tuple[float, str, str]]:
        """Top-``k`` ``(similarity, question, sql)`` triples.

        Order matches ``sorted(..., key=lambda item: -item[0])`` over the
        brute-force scores: descending similarity, ties (and the
        zero-similarity fill) in corpus order.
        """
        if k <= 0 or not self._pairs:
            return []
        query_tokens = frozenset(tokenize_words(question))
        query_size = len(query_tokens)

        scores: dict[int, float] = {}
        if not query_tokens:
            # jaccard(∅, ∅) == 1.0; anything non-empty scores 0.0.
            for idx in self._empty_ids:
                scores[idx] = 1.0
        else:
            overlap: dict[int, int] = {}
            for token in query_tokens:
                for idx in self._inverted.get(token, ()):
                    overlap[idx] = overlap.get(idx, 0) + 1
            for idx, inter in overlap.items():
                scores[idx] = inter / (query_size + self._sizes[idx] - inter)

        top = heapq.nlargest(
            k, scores.items(), key=lambda item: (item[1], -item[0])
        )
        chosen = [
            (sim, self._pairs[idx][0], self._pairs[idx][1]) for idx, sim in top
        ]
        if len(chosen) < k:
            # Zero-similarity tail, in corpus order, exactly as the stable
            # descending sort would emit it.
            taken = {idx for idx, _ in top}
            for idx in range(len(self._pairs)):
                if len(chosen) >= k:
                    break
                if idx in taken or idx in scores:
                    continue
                chosen.append((0.0, self._pairs[idx][0], self._pairs[idx][1]))
        return chosen

    def select(
        self, strategy: str, question: str, k: int
    ) -> tuple[list[FewShotExample], float, bool]:
        """Mirror of ``select_examples`` returning ``(examples, quality, memo_hit)``."""
        if strategy == "manual_fewshot" or not self._pairs:
            chosen = MANUAL_EXAMPLES[:k]
            examples = [
                FewShotExample(question=q, sql=s, similarity=MANUAL_QUALITY)
                for q, s in chosen
            ]
            return examples, MANUAL_QUALITY, False

        memo_key = (strategy, question, k)
        hit, cached = self._memo.lookup(memo_key)
        if hit:
            examples, quality = cached
            return list(examples), quality, True

        top = self.top_k(question, k)
        examples = [
            FewShotExample(question=q, sql=s, similarity=round(sim, 4))
            for sim, q, s in top
        ]
        if not examples:
            result: tuple[list[FewShotExample], float] = ([], 0.0)
        else:
            # Quality from the *unrounded* similarities; rounding is only
            # for display on FewShotExample.
            mean_similarity = sum(sim for sim, _, _ in top) / len(top)
            quality = max(MANUAL_QUALITY, min(0.5 + mean_similarity, 0.95))
            result = (examples, quality)
        self._memo.put(memo_key, (tuple(result[0]), result[1]))
        return list(result[0]), result[1], False


# -- process-level index registry ----------------------------------------

_REGISTRY_MAXSIZE = 8
_REGISTRY: dict[int, FewShotIndex] = {}
_REGISTRY_ORDER: list[int] = []
_REGISTRY_LOCK = threading.Lock()


def index_for(train_pairs: list[tuple[str, str]]) -> FewShotIndex:
    """Shared :class:`FewShotIndex` for this train corpus.

    Identical corpora (by content) map to one index — and therefore one
    selection memo — across every method prepared in this process.
    """
    key = stable_hash(tuple(train_pairs))
    with _REGISTRY_LOCK:
        index = _REGISTRY.get(key)
        if index is None:
            index = FewShotIndex(train_pairs)
            _REGISTRY[key] = index
            _REGISTRY_ORDER.append(key)
            while len(_REGISTRY_ORDER) > _REGISTRY_MAXSIZE:
                evicted = _REGISTRY_ORDER.pop(0)
                _REGISTRY.pop(evicted, None)
        return index


def clear_index_registry() -> None:
    """Drop every cached index (test isolation helper)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
        _REGISTRY_ORDER.clear()
