"""Learned pattern store of past ``(error class, schema) -> correction`` pairs.

The store is the repair engine's first stop: before spending rule
applications or LM re-draws, a failing candidate is looked up under its
``(error class, schema fingerprint, context)`` key and, on a hit, the
previously computed :class:`StoredRepair` is replayed verbatim —
correction, attempt count, and token/call accounting included.

The context component of the key fingerprints everything that
determines the repair computation (the normalized failing SQL, the full
prompt text, and the database's ``data_version``), so a hit is a *pure
memo*: replaying it yields bit-identically what re-running the repair
engine would.  That is the same contract every other hot-path cache in
this codebase honours ("bit-identical on vs off"), and it is what keeps
repair-enabled sequential, parallel, and serving runs equivalent —
workers that never saw the pattern recompute the exact outcome the
warm store replays.  Unrecoverable outcomes are stored too, so a repeat
failure re-bills the same exhausted budget instead of silently becoming
cheaper.

Inputs/outputs: :meth:`RepairPatternStore.key` builds keys from live
``Database`` objects; ``lookup``/``learn`` get and put
:class:`StoredRepair` values; ``stats`` exports deterministic counters.

Thread/process safety: all store methods take an internal lock, so one
store (owned by one prepared method) may serve many threads.  Stores do
not cross process boundaries — parallel workers rebuild their method and
start cold, which is safe precisely because hits are accounting-neutral.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dbengine.database import Database
from repro.llm.model import GenerationCandidate
from repro.modules.repair.taxonomy import RepairClass
from repro.schema.model import DatabaseSchema
from repro.utils.rng import stable_hash

DEFAULT_PATTERN_STORE_SIZE = 2048

# (error class value, schema fingerprint, context fingerprint).
PatternKey = tuple[str, str, str]


def schema_fingerprint(schema: DatabaseSchema) -> str:
    """Stable fingerprint of a schema's table/column structure.

    Deliberately ignores ``db_id`` and display names: two structurally
    identical databases share one fingerprint, so their repair patterns
    pool under the same store slot.
    """
    shape = tuple(
        (table.name.lower(), tuple(column.name.lower() for column in table.columns))
        for table in schema.tables
    )
    return f"{stable_hash(shape):016x}"


def normalize_sql(sql: str) -> str:
    """Whitespace-collapsed form used for pattern keys."""
    return " ".join(sql.split())


@dataclass(frozen=True)
class StoredRepair:
    """One memoized repair outcome, replayable with identical accounting.

    ``final`` is the corrected candidate (or the original failing one
    when the budget ran dry); ``attempts``/``llm_calls``/``output_tokens``
    record exactly what the cold computation consumed, so a replay bills
    the same and span structures stay equal between cold and warm runs.
    """

    final: GenerationCandidate
    recovered: bool
    attempts: int
    llm_calls: int
    output_tokens: int
    source: str  # "rule" | "lm" | "none"


class RepairPatternStore:
    """Bounded LRU store of learned repair outcomes."""

    def __init__(self, maxsize: int = DEFAULT_PATTERN_STORE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[PatternKey, StoredRepair]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._learned = 0
        self._evictions = 0

    def key(
        self,
        error_class: RepairClass,
        database: Database,
        sql: str,
        prompt_text: str,
    ) -> PatternKey:
        """Build the store key for one failing candidate in context.

        The context fingerprint covers the normalized SQL, the prompt,
        and the database's ``data_version`` — the full determinants of
        the repair computation — so a hit can be replayed soundly and a
        content mutation (version bump) naturally misses.
        """
        context = stable_hash(
            normalize_sql(sql), prompt_text, database.data_version
        )
        return (
            error_class.value,
            schema_fingerprint(database.schema),
            f"{context:016x}",
        )

    def lookup(self, key: PatternKey) -> StoredRepair | None:
        with self._lock:
            stored = self._entries.get(key)
            if stored is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return stored

    def learn(self, key: PatternKey, outcome: StoredRepair) -> None:
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = outcome
            self._entries.move_to_end(key)
            self._learned += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "learned": self._learned,
                "evictions": self._evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
