"""Typed taxonomy of execution failures for the self-repair stage.

:func:`classify_execution_failure` maps one
:class:`~repro.dbengine.executor.ExecutionResult` to a
:class:`RepairClass` — the small set of failure families the repair
engine knows how to attack.  Classification works on the SQLite error
strings the executor captures verbatim (``no such table: concerts``,
``near "FORM": syntax error``, ...), plus the two non-error cases the
paper's error analyses single out: timeouts (the executor prefixes those
with ``timeout:``) and queries that execute fine but return zero rows.

The mapping is a plain ordered pattern table so it is trivially
auditable and deterministic; anything unrecognized falls back to
:attr:`RepairClass.UNKNOWN_ERROR` rather than raising.
"""

from __future__ import annotations

from enum import Enum

from repro.dbengine.executor import ExecutionResult


class RepairClass(str, Enum):
    """One family of execution failures the repair engine can target."""

    SYNTAX_ERROR = "syntax_error"
    MISSING_TABLE = "missing_table"
    MISSING_COLUMN = "missing_column"
    TYPE_MISMATCH = "type_mismatch"
    TIMEOUT = "timeout"
    EMPTY_RESULT = "empty_result"
    UNKNOWN_ERROR = "unknown_error"


# Ordered (substring, class) table over lowercased SQLite error text.
# First match wins; order puts the more specific messages first.
_ERROR_PATTERNS: tuple[tuple[str, RepairClass], ...] = (
    ("no such table", RepairClass.MISSING_TABLE),
    ("no such column", RepairClass.MISSING_COLUMN),
    ("ambiguous column name", RepairClass.MISSING_COLUMN),
    ("datatype mismatch", RepairClass.TYPE_MISMATCH),
    ("syntax error", RepairClass.SYNTAX_ERROR),
    ("incomplete input", RepairClass.SYNTAX_ERROR),
    ("unrecognized token", RepairClass.SYNTAX_ERROR),
)


def classify_execution_failure(result: ExecutionResult) -> RepairClass | None:
    """Classify one execution outcome; ``None`` means nothing to repair.

    Successful executions with at least one row need no repair.  A
    successful execution with zero rows classifies as ``EMPTY_RESULT``
    (the paper's analyses treat silent empty answers as failures worth
    recovering).  Failed executions map through the error-string pattern
    table, with ``UNKNOWN_ERROR`` as the fallback.
    """
    if result.ok:
        if result.rows:
            return None
        return RepairClass.EMPTY_RESULT
    error = (result.error or "").lower()
    if error.startswith("timeout"):
        return RepairClass.TIMEOUT
    for needle, repair_class in _ERROR_PATTERNS:
        if needle in error:
            return repair_class
    return RepairClass.UNKNOWN_ERROR


def missing_identifier(error: str | None) -> str | None:
    """Extract the identifier a missing-table/column error names.

    SQLite reports the offender after a colon (``no such column:
    T1.singer_name``); the last dot-separated component is the bare
    column name.  Returns ``None`` when the message carries no
    identifier.
    """
    if not error:
        return None
    lowered = error.lower()
    for prefix in ("no such table:", "no such column:", "ambiguous column name:"):
        index = lowered.find(prefix)
        if index >= 0:
            identifier = error[index + len(prefix):].strip()
            if identifier:
                return identifier.split(".")[-1].strip()
    return None
