"""repro.modules.repair: post-execution self-repair of failing candidates.

The repair stage is the design space's recovery path (see
docs/PIPELINE.md): a candidate whose SQL fails to execute — or executes
but returns no rows — is classified into a typed error taxonomy
(:mod:`repro.modules.repair.taxonomy`), checked against a learned
pattern store of past corrections (:mod:`repro.modules.repair.patterns`),
and, when still unresolved, repaired through deterministic rewrite rules
and budget-bounded re-draws from the simulated LM
(:mod:`repro.modules.repair.engine`).  The stage is wired into
:class:`~repro.methods.base.PipelineMethod` behind the
``PipelineConfig.repair`` knob and stays completely inert when the knob
is ``None``.
"""

from repro.modules.repair.engine import (
    RepairOutcome,
    rule_fixes,
    run_repair,
)
from repro.modules.repair.patterns import (
    RepairPatternStore,
    StoredRepair,
    schema_fingerprint,
)
from repro.modules.repair.taxonomy import (
    RepairClass,
    classify_execution_failure,
    missing_identifier,
)

__all__ = [
    "RepairClass",
    "classify_execution_failure",
    "missing_identifier",
    "RepairPatternStore",
    "StoredRepair",
    "schema_fingerprint",
    "RepairOutcome",
    "rule_fixes",
    "run_repair",
]
