"""The repair engine: pattern store, rewrite rules, then bounded LM re-draws.

:func:`run_repair` is the whole stage.  Given the pipeline's final
candidate it (1) executes it and classifies the outcome through the
repair taxonomy, (2) replays a learned correction from the
:class:`~repro.modules.repair.patterns.RepairPatternStore` when one
matches, (3) tries the deterministic rewrite rules in
:func:`rule_fixes` (zero LM cost), and (4) — in ``pattern_lm`` mode —
falls back to fresh draws from the method's sampler, each billed as a
regular model call by the economy harness.  Every attempt, whatever its
source, consumes one unit of the configured ``repair_budget``.

A correction is accepted only if it actually executes (and, for the
``empty_result`` class, returns at least one row) against the live
database, via the same read-only cached executor the rest of the
pipeline uses — repair can never smuggle in an unverified candidate.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, replace

from repro.dbengine.database import Database
from repro.dbengine.executor import ExecutionResult, execute_sql_cached
from repro.llm.model import GenerationCandidate
from repro.modules.repair.patterns import RepairPatternStore, StoredRepair
from repro.modules.repair.taxonomy import (
    RepairClass,
    classify_execution_failure,
    missing_identifier,
)
from repro.obs.trace import get_tracer
from repro.schema.model import DatabaseSchema

# Draw-index base for repair re-draws: disjoint from greedy/beam/PICARD
# decoding (0..9), self-consistency sampling (0..n), and the
# self-correction probe (101), so a repair draw never aliases another
# stage's draw of the same sampler.
_REPAIR_DRAW_BASE = 211
# Matches the beam decoder's non-greedy temperature: enough jitter to
# leave the failing mode, small enough to stay on-intent.
_REPAIR_TEMPERATURE = 0.15

# Dangling-keyword tail produced by truncated/over-appended completions.
_TRAILING_JUNK = re.compile(r"\s+(?:AND|OR|WHERE|ON|,)\s*$", re.IGNORECASE)


@dataclass(frozen=True)
class RepairOutcome:
    """What the repair stage did for one prediction.

    ``final`` is the candidate the pipeline should keep: the repaired
    one when ``recovered``, the original otherwise.  ``llm_calls`` and
    ``output_tokens`` are the stage's own spend (re-draws only; rule and
    pattern repairs are free), which the method driver folds into the
    prediction's token/cost/latency accounting.
    """

    attempted: bool
    error_class: RepairClass | None
    recovered: bool
    final: GenerationCandidate
    attempts: int = 0
    llm_calls: int = 0
    output_tokens: int = 0
    pattern_hit: bool = False
    source: str = "none"  # "pattern" | "rule" | "lm" | "none"


def _identifier_fixes(
    sql: str, missing: str | None, names: list[str]
) -> list[str]:
    """Swap a missing identifier for its closest schema matches."""
    if not missing:
        return []
    matches = difflib.get_close_matches(
        missing.lower(), [name.lower() for name in names], n=2, cutoff=0.6
    )
    canonical = {name.lower(): name for name in names}
    pattern = re.compile(rf"\b{re.escape(missing)}\b", re.IGNORECASE)
    return [pattern.sub(canonical[match], sql) for match in matches]


def rule_fixes(
    sql: str,
    error_class: RepairClass,
    error: str | None,
    schema: DatabaseSchema,
) -> list[str]:
    """Deterministic candidate rewrites for one failure class.

    Ordered, deduplicated, and never echoing the input; classes with no
    safe mechanical rewrite (type mismatch, timeout, empty result,
    unknown) return an empty list and leave recovery to the LM fallback.
    """
    fixes: list[str] = []
    if error_class is RepairClass.SYNTAX_ERROR:
        fixes.append(re.sub(r"\bFORM\b", "FROM", sql, count=1, flags=re.IGNORECASE))
        fixes.append(_TRAILING_JUNK.sub("", sql))
    elif error_class is RepairClass.MISSING_TABLE:
        table_names = [table.name for table in schema.tables]
        fixes.extend(_identifier_fixes(sql, missing_identifier(error), table_names))
    elif error_class is RepairClass.MISSING_COLUMN:
        column_names = sorted(
            {column.name for table in schema.tables for column in table.columns}
        )
        fixes.extend(_identifier_fixes(sql, missing_identifier(error), column_names))
    seen: set[str] = {sql}
    ordered: list[str] = []
    for fix in fixes:
        if fix not in seen:
            seen.add(fix)
            ordered.append(fix)
    return ordered


def _repair_success(result: ExecutionResult, error_class: RepairClass) -> bool:
    if not result.ok:
        return False
    if error_class is RepairClass.EMPTY_RESULT:
        return bool(result.rows)
    return True


def run_repair(
    final: GenerationCandidate,
    database: Database,
    *,
    sampler,
    config,
    store: RepairPatternStore,
    prompt_text: str,
) -> RepairOutcome:
    """Attempt to repair ``final``; see the module docstring for the flow.

    ``config`` is the method's ``PipelineConfig`` (duck-typed on its
    ``repair`` / ``repair_budget`` fields); ``sampler`` is the method's
    bound ``(draw, temperature) -> candidate`` closure, so LM re-draws
    see the exact prompt the failing candidate came from.
    """
    result = execute_sql_cached(database, final.sql)
    error_class = classify_execution_failure(result)
    if error_class is None:
        return RepairOutcome(
            attempted=False, error_class=None, recovered=False, final=final
        )
    tracer = get_tracer()
    key = store.key(error_class, database, final.sql, prompt_text)
    stored = store.lookup(key)
    if stored is not None:
        # Replay the memoized outcome with its exact original accounting
        # so warm-store and cold-store runs stay bit-identical.
        tracer.annotate_stage(
            llm_calls=stored.llm_calls,
            output_tokens=stored.output_tokens,
            repair_attempts=stored.attempts,
            repair_recovered=int(stored.recovered),
            repair_pattern_hits=1,
        )
        return RepairOutcome(
            attempted=True,
            error_class=error_class,
            recovered=stored.recovered,
            final=stored.final,
            attempts=stored.attempts,
            llm_calls=stored.llm_calls,
            output_tokens=stored.output_tokens,
            pattern_hit=True,
            source=stored.source,
        )

    budget = max(int(config.repair_budget), 1)
    attempts = 0
    llm_calls = 0
    output_tokens = 0
    repaired: GenerationCandidate | None = None
    source = "none"
    for fix in rule_fixes(final.sql, error_class, result.error, database.schema):
        if attempts >= budget:
            break
        attempts += 1
        if _repair_success(execute_sql_cached(database, fix), error_class):
            repaired = replace(final, sql=fix)
            source = "rule"
            break
    if repaired is None and config.repair == "pattern_lm":
        while attempts < budget:
            candidate = sampler(_REPAIR_DRAW_BASE + attempts, _REPAIR_TEMPERATURE)
            attempts += 1
            llm_calls += 1
            output_tokens += candidate.output_tokens
            if _repair_success(
                execute_sql_cached(database, candidate.sql), error_class
            ):
                repaired = candidate
                source = "lm"
                break
    recovered = repaired is not None
    outcome_final = repaired if repaired is not None else final
    tracer.annotate_stage(
        repair_attempts=attempts, repair_recovered=int(recovered)
    )
    store.learn(
        key,
        StoredRepair(
            final=outcome_final,
            recovered=recovered,
            attempts=attempts,
            llm_calls=llm_calls,
            output_tokens=output_tokens,
            source=source,
        ),
    )
    return RepairOutcome(
        attempted=True,
        error_class=error_class,
        recovered=recovered,
        final=outcome_final,
        attempts=attempts,
        llm_calls=llm_calls,
        output_tokens=output_tokens,
        pattern_hit=False,
        source=source,
    )
