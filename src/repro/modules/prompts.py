"""Prompting: render the actual prompt text (paper Figures 10 and 15).

Prompts are real strings — schema DDL (optionally pruned by schema
linking, optionally annotated with matched DB content), in-context
examples, and the question — so the Exp-6 token/cost accounting measures
genuine prompt sizes.  Verbose methods (C3's calibration instructions,
DIN-SQL's four-stage manual exemplars) carry their documented token
overhead as instruction text.

When tracing is enabled the pre-processing steps are timed as the
``schema_linking`` / ``fewshot`` / ``prompt_build`` stages of the
example's span (see :mod:`repro.obs.trace`).
"""

from __future__ import annotations

from repro.dbengine.database import Database
from repro.llm.prompt import Prompt, PromptFeatures
from repro.modules.base import PipelineConfig
from repro.modules.db_content import match_db_content
from repro.modules.fewshot import select_examples
from repro.modules.retrieval import FewShotIndex
from repro.modules.schema_linking import link_schema
from repro.obs.trace import get_tracer
from repro.utils.cache import caches_enabled
from repro.schema.ddl import render_schema_ddl

_OVERHEAD_SENTENCE = (
    "Follow the SQL generation guidelines carefully, check every clause "
    "against the database schema, prefer explicit column names, and never "
    "invent tables or columns that are not listed above. "
)
# ~34 tokens per sentence under the 4-chars/token heuristic.
_OVERHEAD_SENTENCE_TOKENS = 40


def _overhead_text(token_budget: int) -> str:
    if token_budget <= 0:
        return ""
    repeats = max(1, token_budget // _OVERHEAD_SENTENCE_TOKENS)
    return "/* " + _OVERHEAD_SENTENCE * repeats + "*/\n"


def build_prompt(
    config: PipelineConfig,
    database: Database,
    question: str,
    train_pairs: list[tuple[str, str]] | None = None,
    fewshot_index: FewShotIndex | None = None,
) -> Prompt:
    """Assemble the full prompt for one question under ``config``.

    When ``fewshot_index`` is provided (and caches are enabled) few-shot
    selection goes through the inverted-index retriever, which is
    bit-identical to :func:`select_examples` but amortises tokenization
    and memoizes per-question selections across methods.
    """
    trace = get_tracer()
    schema = database.schema
    schema_tables: tuple[str, ...] | None = None
    if config.schema_linking is not None:
        with trace.stage("schema_linking"):
            schema_tables = link_schema(config.schema_linking, schema, question)

    few_shot_quality = 0.0
    example_block = ""
    few_shot_count = 0
    if config.prompting != "zero_shot":
        with trace.stage("fewshot"):
            if fewshot_index is not None and caches_enabled():
                examples, few_shot_quality, memo_hit = fewshot_index.select(
                    config.prompting, question, config.few_shot_k
                )
                if memo_hit:
                    trace.annotate_stage(memo_hits=1)
            else:
                examples, few_shot_quality = select_examples(
                    config.prompting, question, train_pairs or [], config.few_shot_k
                )
            few_shot_count = len(examples)
            lines = []
            for example in examples:
                lines.append(f"/* Answer the following: {example.question} */")
                lines.append(example.sql + ";")
            example_block = "\n".join(lines) + "\n\n" if lines else ""

    with trace.stage("prompt_build"):
        db_content: dict[str, dict[str, list[str]]] | None = None
        if config.db_content is not None:
            db_content = match_db_content(config.db_content, database, question)

        value_comments = None
        if db_content is not None:
            value_comments = {
                table: {column: [str(v) for v in values] for column, values in columns.items()}
                for table, columns in db_content.items()
            }
        ddl = render_schema_ddl(
            schema,
            value_comments=value_comments,
            tables=list(schema_tables) if schema_tables is not None else None,
        )

        text = (
            _overhead_text(config.prompt_overhead_tokens)
            + "/* Given the following database schema: */\n"
            + ddl
            + "\n\n"
            + example_block
            + f"/* Answer the following: {question} */\nSELECT"
        )
    features = PromptFeatures(
        schema_tables=schema_tables,
        db_content=db_content,
        few_shot_count=few_shot_count,
        few_shot_quality=few_shot_quality,
        sql_style=True,
        instruction=config.name,
    )
    return Prompt(text=text, question=question, db_id=schema.db_id, features=features)
