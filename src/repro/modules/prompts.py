"""Prompting: render the actual prompt text (paper Figures 10 and 15).

Prompts are real strings — schema DDL (optionally pruned by schema
linking, optionally annotated with matched DB content), in-context
examples, and the question — so the Exp-6 token/cost accounting measures
genuine prompt sizes.  Verbose methods (C3's calibration instructions,
DIN-SQL's four-stage manual exemplars) carry their documented token
overhead as instruction text.

When tracing is enabled the pre-processing steps are timed as the
``schema_linking`` / ``fewshot`` / ``prompt_build`` stages of the
example's span (see :mod:`repro.obs.trace`).

Prompt assembly goes through the process-global
:class:`~repro.llm.engine.PromptPrefixCache`: the instruction-overhead
block, the schema-DDL block (keyed on ``(db_id, data_version, pruned
tables, value-comment content)``), and the few-shot block (keyed on
``(strategy, k, selected examples)``) are rendered and token-counted
once, then shared by every question — and method — that produces the
same segment.  Cached segments end on newlines and the approximate
tokenizer never matches across whitespace, so the prompt's token count
is primed as the exact sum of per-segment counts
(:meth:`~repro.llm.prompt.Prompt.prime_token_count`) instead of a fresh
regex scan per example.  Segment hits/misses are annotated on the
enclosing stage span as ``prefix_hits`` / ``prefix_misses``.
"""

from __future__ import annotations

from repro.dbengine.database import Database
from repro.llm.engine import PromptSegment, prefix_cache
from repro.llm.prompt import Prompt, PromptFeatures
from repro.llm.tokens import count_tokens
from repro.modules.base import PipelineConfig
from repro.modules.db_content import match_db_content
from repro.modules.fewshot import select_examples
from repro.modules.retrieval import FewShotIndex
from repro.modules.schema_linking import link_schema
from repro.obs.trace import get_tracer
from repro.utils.cache import caches_enabled
from repro.schema.ddl import render_schema_ddl

_OVERHEAD_SENTENCE = (
    "Follow the SQL generation guidelines carefully, check every clause "
    "against the database schema, prefer explicit column names, and never "
    "invent tables or columns that are not listed above. "
)
# ~34 tokens per sentence under the 4-chars/token heuristic.
_OVERHEAD_SENTENCE_TOKENS = 40


def _overhead_text(token_budget: int) -> str:
    if token_budget <= 0:
        return ""
    repeats = max(1, token_budget // _OVERHEAD_SENTENCE_TOKENS)
    return "/* " + _OVERHEAD_SENTENCE * repeats + "*/\n"


_EMPTY_SEGMENT = PromptSegment(text="", tokens=0)


def _example_block(examples) -> str:
    lines = []
    for example in examples:
        lines.append(f"/* Answer the following: {example.question} */")
        lines.append(example.sql + ";")
    return "\n".join(lines) + "\n\n" if lines else ""


def _value_comments_key(
    value_comments: dict[str, dict[str, list[str]]] | None,
) -> tuple | None:
    """Hashable canonical form of the BRIDGE/CODES value annotations.

    The matched values depend on the question, so the schema segment must
    key on their content — two questions that match the same values share
    the rendered DDL, two that differ do not.
    """
    if value_comments is None:
        return None
    return tuple(
        (table, tuple((column, tuple(values)) for column, values in columns.items()))
        for table, columns in value_comments.items()
    )


def build_prompt(
    config: PipelineConfig,
    database: Database,
    question: str,
    train_pairs: list[tuple[str, str]] | None = None,
    fewshot_index: FewShotIndex | None = None,
) -> Prompt:
    """Assemble the full prompt for one question under ``config``.

    When ``fewshot_index`` is provided (and caches are enabled) few-shot
    selection goes through the inverted-index retriever, which is
    bit-identical to :func:`select_examples` but amortises tokenization
    and memoizes per-question selections across methods.
    """
    trace = get_tracer()
    schema = database.schema
    schema_tables: tuple[str, ...] | None = None
    if config.schema_linking is not None:
        with trace.stage("schema_linking"):
            schema_tables = link_schema(config.schema_linking, schema, question)

    segments = prefix_cache()
    few_shot_quality = 0.0
    fewshot_segment = _EMPTY_SEGMENT
    few_shot_count = 0
    if config.prompting != "zero_shot":
        with trace.stage("fewshot"):
            if fewshot_index is not None and caches_enabled():
                examples, few_shot_quality, memo_hit = fewshot_index.select(
                    config.prompting, question, config.few_shot_k
                )
                if memo_hit:
                    trace.annotate_stage(memo_hits=1)
            else:
                examples, few_shot_quality = select_examples(
                    config.prompting, question, train_pairs or [], config.few_shot_k
                )
            few_shot_count = len(examples)
            fewshot_segment, fewshot_hit = segments.segment(
                "fewshot",
                (config.prompting, config.few_shot_k, tuple(examples)),
                lambda: _example_block(examples),
            )
            trace.annotate_stage(
                prefix_hits=int(fewshot_hit), prefix_misses=int(not fewshot_hit)
            )

    with trace.stage("prompt_build"):
        overhead_segment, overhead_hit = segments.segment(
            "overhead",
            config.prompt_overhead_tokens,
            lambda: _overhead_text(config.prompt_overhead_tokens),
        )

        db_content: dict[str, dict[str, list[str]]] | None = None
        if config.db_content is not None:
            db_content = match_db_content(config.db_content, database, question)

        value_comments = None
        if db_content is not None:
            value_comments = {
                table: {column: [str(v) for v in values] for column, values in columns.items()}
                for table, columns in db_content.items()
            }
        schema_segment, schema_hit = segments.segment(
            "schema",
            (
                schema.db_id,
                database.data_version,
                schema_tables,
                _value_comments_key(value_comments),
            ),
            lambda: (
                "/* Given the following database schema: */\n"
                + render_schema_ddl(
                    schema,
                    value_comments=value_comments,
                    tables=list(schema_tables) if schema_tables is not None else None,
                )
                + "\n\n"
            ),
        )
        trace.annotate_stage(
            prefix_hits=int(overhead_hit) + int(schema_hit),
            prefix_misses=int(not overhead_hit) + int(not schema_hit),
        )

        tail = f"/* Answer the following: {question} */\nSELECT"
        text = (
            overhead_segment.text + schema_segment.text + fewshot_segment.text + tail
        )
    features = PromptFeatures(
        schema_tables=schema_tables,
        db_content=db_content,
        few_shot_count=few_shot_count,
        few_shot_quality=few_shot_quality,
        sql_style=True,
        instruction=config.name,
    )
    prompt = Prompt(text=text, question=question, db_id=schema.db_id, features=features)
    # Segment boundaries all fall on newlines (or are empty), so the
    # approximate tokenizer's per-segment counts sum exactly to the
    # whole-text count — prime it so no accounting site rescans the text.
    prompt.prime_token_count(
        overhead_segment.tokens
        + schema_segment.tokens
        + fewshot_segment.tokens
        + count_tokens(tail)
    )
    return prompt
