"""Pre-processing: DB content matching (BRIDGE v2 / CodeS style).

BRIDGE scans the question for spans that string-match actual cell values
and attaches the matched values as per-column annotations in the prompt.
The simulated model uses these hints to copy literals verbatim instead of
hallucinating them — which is the mechanism behind SuperSQL's inclusion
of the module (paper §5.3, Figure 15).
"""

from __future__ import annotations

import re

from repro.dbengine.database import Database
from repro.utils.text import normalized_similarity


def _question_value_spans(question: str) -> list[str]:
    """Candidate value spans: quoted strings plus capitalized multi-words."""
    spans = re.findall(r"'([^']*)'", question)
    spans.extend(re.findall(r"\b\d+(?:\.\d+)?\b", question))
    return [span for span in spans if span]


def match_db_content(
    strategy: str,
    database: Database,
    question: str,
    max_values_per_column: int = 3,
    fuzzy_threshold: float = 0.82,
) -> dict[str, dict[str, list[str]]]:
    """Match question spans against database contents.

    Returns a ``table -> column -> matched values`` map.  ``strategy``
    distinguishes BRIDGE (fuzzy matching) from CodeS (exact + prefix
    matching); both share the same scan.
    """
    spans = _question_value_spans(question)
    if not spans:
        return {}
    fuzzy = strategy == "bridge"
    matches: dict[str, dict[str, list[str]]] = {}
    for table_name, column_name in database.text_columns():
        values = database.column_values(table_name, column_name, limit=500)
        hits: list[str] = []
        for span in spans:
            span_lower = span.lower()
            for value in values:
                if value is None:
                    continue
                text = str(value)
                if text.lower() == span_lower or span_lower in text.lower():
                    hits.append(text)
                elif fuzzy and normalized_similarity(text, span) >= fuzzy_threshold:
                    hits.append(text)
                if len(hits) >= max_values_per_column:
                    break
            if len(hits) >= max_values_per_column:
                break
        if hits:
            deduped = list(dict.fromkeys(hits))[:max_values_per_column]
            matches.setdefault(table_name, {})[column_name] = deduped
    return matches
