"""Design-space modules: pre-processing, prompting, generation, post-processing."""

from repro.modules.base import (
    DB_CONTENT_CHOICES,
    DECODING_CHOICES,
    INTERMEDIATE_CHOICES,
    MULTI_STEP_CHOICES,
    POST_PROCESSING_CHOICES,
    PROMPTING_CHOICES,
    REPAIR_CHOICES,
    SCHEMA_LINKING_CHOICES,
    PipelineConfig,
)
from repro.modules.schema_linking import link_schema
from repro.modules.db_content import match_db_content
from repro.modules.fewshot import FewShotExample, select_examples
from repro.modules.retrieval import FewShotIndex, clear_index_registry, index_for
from repro.modules.prompts import build_prompt
from repro.modules.post_processing import (
    execution_guided_select,
    rerank_candidates,
    self_consistency_vote,
)
from repro.modules.repair import (
    RepairClass,
    RepairOutcome,
    RepairPatternStore,
    classify_execution_failure,
    run_repair,
    schema_fingerprint,
)

__all__ = [
    "DB_CONTENT_CHOICES",
    "DECODING_CHOICES",
    "INTERMEDIATE_CHOICES",
    "MULTI_STEP_CHOICES",
    "POST_PROCESSING_CHOICES",
    "PROMPTING_CHOICES",
    "REPAIR_CHOICES",
    "SCHEMA_LINKING_CHOICES",
    "PipelineConfig",
    "RepairClass",
    "RepairOutcome",
    "RepairPatternStore",
    "classify_execution_failure",
    "run_repair",
    "schema_fingerprint",
    "link_schema",
    "match_db_content",
    "FewShotExample",
    "FewShotIndex",
    "select_examples",
    "index_for",
    "clear_index_registry",
    "build_prompt",
    "execution_guided_select",
    "rerank_candidates",
    "self_consistency_vote",
]
