"""Pre-processing: schema linking (RESDSQL-style ranking, C3-style filtering).

Both strategies prune the schema presented to the model down to the
tables the question plausibly references, trading recall for a cleaner
prompt.  RESDSQL's cross-encoder ranking is emulated by the shared
:class:`SchemaLinker` similarity ranking with a generous top-k; C3's
zero-shot LLM filtering keeps fewer tables (more aggressive, slightly
riskier recall).
"""

from __future__ import annotations

from repro.errors import DesignSpaceError
from repro.nlu.linker import SchemaLinker
from repro.schema.model import DatabaseSchema


def link_schema(
    strategy: str,
    schema: DatabaseSchema,
    question: str,
) -> tuple[str, ...]:
    """Return the pruned table list for ``question`` under ``strategy``.

    Raises:
        DesignSpaceError: for unknown strategies.
    """
    linker = SchemaLinker(schema)
    if strategy == "resdsql":
        tables = linker.relevant_tables(question, top_k=4)
    elif strategy == "c3":
        tables = linker.relevant_tables(question, top_k=3)
    else:
        raise DesignSpaceError(f"unknown schema-linking strategy {strategy!r}")
    # Keep FK parents of selected tables so join paths stay available.
    selected = {name.lower() for name in tables}
    for fk in schema.foreign_keys:
        if fk.source_table.lower() in selected and len(selected) < 5:
            selected.add(fk.target_table.lower())
    ordered = [t.name for t in schema.tables if t.name.lower() in selected]
    return tuple(ordered)
