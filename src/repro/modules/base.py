"""The NL2SQL design space (paper Figure 13) as a configuration object.

A :class:`PipelineConfig` is one *individual* in the NL2SQL360-AAS search
space: a backbone model plus one choice per layer (pre-processing,
prompting, SQL generation, post-processing).  Every method in the zoo is
expressed as a ``PipelineConfig``, and the genetic search swaps/mutates
these fields directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DesignSpaceError

SCHEMA_LINKING_CHOICES = (None, "resdsql", "c3")
DB_CONTENT_CHOICES = (None, "bridge", "codes")
PROMPTING_CHOICES = ("zero_shot", "manual_fewshot", "similarity_fewshot")
MULTI_STEP_CHOICES = (None, "decompose", "skeleton")
INTERMEDIATE_CHOICES = (None, "natsql")
DECODING_CHOICES = ("greedy", "beam", "picard")
POST_PROCESSING_CHOICES = (
    None,
    "self_correction",
    "self_consistency",
    "execution_guided",
    "reranker",
)
# Post-execution self-repair (docs/PIPELINE.md): "rules" stops at the
# pattern store + deterministic rewrites; "pattern_lm" adds budgeted LM
# re-draws on top.
REPAIR_CHOICES = (None, "rules", "pattern_lm")


@dataclass(frozen=True)
class PipelineConfig:
    """One point in the NL2SQL design space.

    Attributes:
        name: Display name (method name or AAS individual id).
        backbone: Model registry name (e.g. ``gpt-4``, ``t5-3b``).
        finetuned: Whether the backbone is supervised-fine-tuned on the
            benchmark's train split before evaluation.
        schema_linking: Pre-processing schema pruning strategy, or None.
        db_content: Pre-processing value-hint strategy, or None.
        prompting: Prompting strategy (zero/few-shot flavours).
        few_shot_k: Number of in-context examples for few-shot prompting.
        multi_step: SQL generation staging, or None.
        intermediate: Intermediate representation, or None (NatSQL only).
        decoding: Decoding strategy.
        post_processing: Post-processing strategy, or None.
        repair: Post-execution self-repair strategy, or None (disabled).
        repair_budget: Maximum repair attempts (rule applications plus
            LM re-draws) per failing prediction.
        self_consistency_samples: Samples for self-consistency voting.
        beam_width: Candidates for beam/PICARD decoding.
        prompt_overhead_tokens: Fixed instruction overhead included in the
            prompt (verbose methods like C3/DIN carry large instructions).
    """

    name: str
    backbone: str
    finetuned: bool = False
    schema_linking: str | None = None
    db_content: str | None = None
    prompting: str = "zero_shot"
    few_shot_k: int = 0
    multi_step: str | None = None
    intermediate: str | None = None
    decoding: str = "greedy"
    post_processing: str | None = None
    repair: str | None = None
    repair_budget: int = 2
    self_consistency_samples: int = 5
    beam_width: int = 4
    prompt_overhead_tokens: int = 0

    def __post_init__(self) -> None:
        if self.schema_linking not in SCHEMA_LINKING_CHOICES:
            raise DesignSpaceError(f"invalid schema_linking {self.schema_linking!r}")
        if self.db_content not in DB_CONTENT_CHOICES:
            raise DesignSpaceError(f"invalid db_content {self.db_content!r}")
        if self.prompting not in PROMPTING_CHOICES:
            raise DesignSpaceError(f"invalid prompting {self.prompting!r}")
        if self.multi_step not in MULTI_STEP_CHOICES:
            raise DesignSpaceError(f"invalid multi_step {self.multi_step!r}")
        if self.intermediate not in INTERMEDIATE_CHOICES:
            raise DesignSpaceError(f"invalid intermediate {self.intermediate!r}")
        if self.decoding not in DECODING_CHOICES:
            raise DesignSpaceError(f"invalid decoding {self.decoding!r}")
        if self.post_processing not in POST_PROCESSING_CHOICES:
            raise DesignSpaceError(f"invalid post_processing {self.post_processing!r}")
        if self.repair not in REPAIR_CHOICES:
            raise DesignSpaceError(f"invalid repair {self.repair!r}")
        if self.repair is not None and self.repair_budget <= 0:
            raise DesignSpaceError("repair requires repair_budget > 0")
        if self.prompting != "zero_shot" and self.few_shot_k <= 0:
            raise DesignSpaceError("few-shot prompting requires few_shot_k > 0")

    def with_(self, **changes: object) -> "PipelineConfig":
        """Return a modified copy."""
        return replace(self, **changes)

    @property
    def style_divergence(self) -> float:
        """How far the pipeline's SQL style drifts from the dataset's.

        Fine-tuning aligns style almost perfectly; similarity few-shot
        shows the model in-distribution SQL and aligns partially; fixed
        manual examples and zero-shot prompts leave the model to its own
        idioms.
        """
        if self.finetuned:
            return 0.06
        if self.prompting == "similarity_fewshot":
            return 0.21
        if self.prompting == "manual_fewshot":
            return 0.42
        return 0.52

    def layer_values(self) -> dict[str, object]:
        """Design-space layer assignments (for AAS swap/mutation and logs)."""
        return {
            "schema_linking": self.schema_linking,
            "db_content": self.db_content,
            "prompting": self.prompting,
            "multi_step": self.multi_step,
            "intermediate": self.intermediate,
            "decoding": self.decoding,
            "post_processing": self.post_processing,
            "repair": self.repair,
        }
