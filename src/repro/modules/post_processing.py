"""Post-processing strategies (paper §5.1 (4)).

* **Self-Consistency** (C3, DAIL-SQL(SC)): execute every sampled SQL and
  vote on result sets; the modal result's first SQL wins.
* **Execution-Guided Selection** (RESDSQL/CodeS): walk the beam in order
  and return the first candidate that executes without error.
* **N-best Reranking**: score candidates by validity/executability and
  pick the best.
* **Self-Correction** (DIN-SQL) lives in the method driver (it needs to
  re-query the model); helpers here detect when correction is warranted.

All candidate executions go through
:func:`~repro.dbengine.executor.execute_sql_cached`, a bounded
per-database LRU: near-duplicate candidates (the common case under
systematic corruption) execute once and hit the memo thereafter.
"""

from __future__ import annotations

from repro.dbengine.database import Database
from repro.dbengine.executor import ExecutionResult, execute_sql_cached
from repro.llm.model import GenerationCandidate
from repro.sqlkit.picard import PicardChecker


def _result_key(result: ExecutionResult) -> str:
    if not result.ok:
        return f"error:{result.error}"
    normalized = sorted(repr(tuple(row)) for row in result.rows[:200])
    return "|".join(normalized)


def self_consistency_vote(
    candidates: list[GenerationCandidate],
    database: Database,
) -> GenerationCandidate:
    """Majority-vote candidates by their execution results.

    Failing executions each form their own bucket, so a single clean
    majority beats scattered errors.  Ties break toward the earliest
    (lowest-temperature) candidate.
    """
    if not candidates:
        raise ValueError("self-consistency requires at least one candidate")
    buckets: dict[str, list[int]] = {}
    results: list[ExecutionResult] = []
    for index, candidate in enumerate(candidates):
        result = execute_sql_cached(database, candidate.sql)
        results.append(result)
        key = _result_key(result)
        buckets.setdefault(key, []).append(index)
    # Prefer successful buckets; then larger buckets; then earliest member.
    def bucket_rank(item: tuple[str, list[int]]) -> tuple[int, int, int]:
        key, members = item
        ok = 0 if key.startswith("error:") else 1
        return (ok, len(members), -members[0])

    best_key, members = max(buckets.items(), key=bucket_rank)
    return candidates[members[0]]


def execution_guided_select(
    candidates: list[GenerationCandidate],
    database: Database,
) -> GenerationCandidate:
    """First candidate that executes without error (RESDSQL's selector)."""
    if not candidates:
        raise ValueError("execution-guided selection requires candidates")
    for candidate in candidates:
        result = execute_sql_cached(database, candidate.sql)
        if result.ok:
            return candidate
    return candidates[0]


def rerank_candidates(
    candidates: list[GenerationCandidate],
    database: Database,
    checker: PicardChecker | None = None,
) -> GenerationCandidate:
    """N-best reranking by (valid, executable, result non-emptiness, rank)."""
    if not candidates:
        raise ValueError("reranking requires candidates")

    def score(item: tuple[int, GenerationCandidate]) -> tuple[int, int, int, int]:
        index, candidate = item
        valid = 1 if checker is None or checker.accepts(candidate.sql) else 0
        result = execute_sql_cached(database, candidate.sql)
        executable = 1 if result.ok else 0
        non_empty = 1 if result.ok and result.rows else 0
        return (valid, executable, non_empty, -index)

    __, best = max(enumerate(candidates), key=score)
    return best


def needs_correction(candidate: GenerationCandidate, database: Database) -> bool:
    """DIN-SQL self-correction trigger: unparseable or failing SQL."""
    checker = PicardChecker(database.schema)
    if not checker.accepts(candidate.sql):
        return True
    result = execute_sql_cached(database, candidate.sql)
    return not result.ok
