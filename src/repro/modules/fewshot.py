"""Prompting: few-shot example selection.

DAIL-SQL selects in-context examples by similarity between the target
question and training questions (masked-question + skeleton similarity);
DIN-SQL ships a fixed, manually curated exemplar set.  The selection
quality — how structurally close the chosen examples are to the target —
feeds the simulator's ``few_shot_quality`` and genuinely changes error
rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.text import jaccard, tokenize_words

# Fixed manual exemplars in the DIN-SQL spirit: generic, not adapted to
# the target question, hence mid selection quality.
MANUAL_EXAMPLES: list[tuple[str, str]] = [
    ("How many singers are there?", "SELECT COUNT(*) FROM singer"),
    (
        "Show the name of all countries whose population is greater than 1000000.",
        "SELECT name FROM country WHERE population > 1000000",
    ),
    (
        "For each city, show the number of records of the stations.",
        "SELECT city, COUNT(*) FROM station GROUP BY city",
    ),
    (
        "List the name of all cars, sorted by horsepower in descending order, "
        "showing only the top 3.",
        "SELECT name FROM cars ORDER BY horsepower DESC LIMIT 3",
    ),
    (
        "Show the title of each book together with the name of its author.",
        "SELECT T1.title, T2.name FROM books AS T1 JOIN authors AS T2 "
        "ON T1.author_id = T2.author_id",
    ),
    (
        "Show the name of all students whose score is above the average score.",
        "SELECT name FROM students WHERE score > (SELECT AVG(score) FROM students)",
    ),
]

MANUAL_QUALITY = 0.45


@dataclass(frozen=True)
class FewShotExample:
    """One in-context example with its similarity to the target question."""

    question: str
    sql: str
    similarity: float


def question_similarity(question_a: str, question_b: str) -> float:
    """Token-set Jaccard between two questions (value tokens included)."""
    return jaccard(tokenize_words(question_a), tokenize_words(question_b))


def select_examples(
    strategy: str,
    question: str,
    train_pairs: list[tuple[str, str]],
    k: int,
) -> tuple[list[FewShotExample], float]:
    """Select ``k`` examples; returns (examples, selection quality).

    * ``manual_fewshot`` — the fixed exemplar set, quality is a constant.
    * ``similarity_fewshot`` — top-k most similar training questions;
      quality is the mean similarity, floored at the manual baseline so a
      thin train split never makes dynamic selection *worse* than fixed
      exemplars.
    """
    if strategy == "manual_fewshot" or not train_pairs:
        chosen = MANUAL_EXAMPLES[:k]
        examples = [
            FewShotExample(question=q, sql=s, similarity=MANUAL_QUALITY)
            for q, s in chosen
        ]
        return examples, MANUAL_QUALITY
    scored = [
        (question_similarity(question, train_q), train_q, train_sql)
        for train_q, train_sql in train_pairs
    ]
    scored.sort(key=lambda item: -item[0])
    top = scored[:k]
    examples = [
        FewShotExample(question=q, sql=s, similarity=round(sim, 4))
        for sim, q, s in top
    ]
    if not examples:
        return [], 0.0
    # Quality comes from the unrounded similarities; the 4-decimal
    # rounding on FewShotExample is display-only.
    mean_similarity = sum(sim for sim, _, _ in top) / len(top)
    # Structural templates repeat across databases, so even modest token
    # overlap picks a structurally matching exemplar; map into [0.5, 0.95].
    quality = max(MANUAL_QUALITY, min(0.5 + mean_similarity, 0.95))
    return examples, quality
