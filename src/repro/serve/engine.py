"""Online NL2SQL serving engine: scheduler, coalescing, admission control.

:class:`ServingEngine` turns the offline evaluation pipeline into a
concurrent request-processing system.  Requests name a ``(method,
db_id, question)``; the engine resolves them against the dataset's dev
split, schedules them through a bounded queue, and answers with the
*exact* :class:`~repro.core.metrics.EvaluationRecord` the offline
:class:`~repro.core.evaluator.Evaluator` would produce — bit-identical
under any concurrency, batching, or coalescing schedule.

Moving parts:

* **Scheduler** — a dedicated thread drains the bounded submission
  queue and groups waiting computations by ``(method, db_id)`` into
  micro-batches (bounded by ``max_batch_size``) so consecutive requests
  share warm few-shot/schema state, then dispatches them to a worker
  pool.
* **In-flight coalescing** — while a computation for a key is pending,
  identical submissions attach to it and all receive the one result;
  duplicate work is never scheduled.  Request identity is the
  *normalized* question (:func:`repro.utils.text.normalize_question`),
  so whitespace/case variants coalesce too.
* **Response cache** — an optional cross-request
  :class:`~repro.serve.cache.ResponseCache` tier (``response_cache`` in
  :class:`ServeConfig`) memoizes OK records keyed on ``(method, db_id,
  normalized_question, data_version)``.  ``submit`` consults it before
  admission control: a hit resolves immediately with a ``cached``-flagged
  but otherwise bit-identical response, costs no in-flight slot, and a
  ``Database.mark_mutated`` bump auto-invalidates the database's
  entries via a mutation listener registered at ``start()``.
* **Admission control & degradation** — at most ``max_in_flight``
  requests are admitted (excess resolves immediately with ``REJECTED``);
  a per-request deadline resolves with a typed ``TIMEOUT`` response
  instead of hanging, and computations whose every waiter has expired
  are shed without running.
* **Warm start** — :meth:`warmup` prepares each served method (few-shot
  index build), precomputes gold executions for the served split, and
  primes per-database prompt/schema caches with one prediction per
  ``(method, database)`` before traffic is accepted.
* **Observability** — per-request serve spans (queue wait, service
  time, coalesce flag, batch size) feed the ambient tracer's
  :class:`~repro.obs.registry.MetricsRegistry` under ``serve_*`` names
  and are kept in ``engine.request_log``.

Inputs/outputs: a :class:`~repro.datagen.benchmark.Dataset` plus a
:class:`ServeConfig` in; :class:`ServeResponse` objects (wrapping
offline-identical records) and deterministic :class:`ServeStats`
counters out.  Nothing in the dataset is mutated.

Thread/process safety: ``submit`` and every ``ServeFuture`` method are
safe from any thread; internal state is guarded by one engine lock and
work runs on the engine's own scheduler/worker threads.  Instances do
not cross process boundaries.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from enum import Enum

from repro.core.evaluator import Evaluator
from repro.core.metrics import EvaluationRecord
from repro.datagen.benchmark import Dataset, Example
from repro.errors import ServeError, ServeOverloaded
from repro.errors import ServeTimeout as ServeTimeoutError
from repro.methods.base import NL2SQLMethod
from repro.methods.zoo import build_method, with_repair
from repro.obs.registry import MetricsRegistry, ingest_pool_deltas
from repro.obs.trace import get_tracer
from repro.serve.cache import DEFAULT_RESPONSE_CACHE_SIZE, ResponseCache
from repro.serve.scheduler import DecodeScheduler
from repro.utils.text import normalize_question


class ServeStatus(str, Enum):
    """Terminal state of one served request."""

    OK = "ok"
    TIMEOUT = "timeout"
    REJECTED = "rejected"
    ERROR = "error"


@dataclass(frozen=True)
class ServeRequest:
    """One online NL2SQL request.

    ``deadline_s`` bounds the total time from submission; expiry yields
    a ``TIMEOUT`` response, never a hang.  ``None`` falls back to the
    engine's ``default_deadline_s``.
    """

    method: str
    db_id: str
    question: str
    deadline_s: float | None = None

    @property
    def key(self) -> tuple[str, str, str]:
        """The coalescing identity: concurrent equals share one computation.

        The question is canonicalized (whitespace/case) so trivially
        different repeats share one computation and one cache entry.
        """
        return (self.method, self.db_id, normalize_question(self.question))


@dataclass
class ServeResponse:
    """Terminal answer for one request (always produced, never raised)."""

    request: ServeRequest
    status: ServeStatus
    record: EvaluationRecord | None = None
    error: str | None = None
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    total_s: float = 0.0
    coalesced: bool = False
    batch_size: int = 0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status is ServeStatus.OK

    def raise_for_status(self) -> "ServeResponse":
        """Return self if OK; raise the matching typed ServeError otherwise."""
        if self.status is ServeStatus.OK:
            return self
        message = self.error or self.status.value
        if self.status is ServeStatus.TIMEOUT:
            raise ServeTimeoutError(message)
        if self.status is ServeStatus.REJECTED:
            raise ServeOverloaded(message)
        raise ServeError(message)


@dataclass(frozen=True)
class ServeConfig:
    """Scheduler/admission knobs (see docs/SERVING.md)."""

    methods: tuple[str, ...] = ("SuperSQL",)
    workers: int = 4
    max_in_flight: int = 1024
    max_batch_size: int = 32
    coalesce: bool = True
    default_deadline_s: float | None = None
    measure_timing: bool = False
    warm_start: bool = True
    seed: int = 42
    response_cache: bool = False
    response_cache_size: int = DEFAULT_RESPONSE_CACHE_SIZE
    response_cache_ttl_s: float | None = None
    semantic_cache_keys: bool = False
    #: Restrict the engine to this subset of the dataset's databases
    #: (``None`` serves all).  Gateway shard workers set it to their
    #: ring-owned ``db_id``s so warmup, mutation listeners, and replica
    #: pools cover only the shard's slice; requests for other databases
    #: resolve as typed ``ERROR`` responses.
    db_ids: tuple[str, ...] | None = None
    #: Bound on the in-memory ``request_log`` span ring; overflow drops
    #: the oldest span and increments the ``spans_dropped`` counter.
    request_log_size: int = 4096
    #: Enable the post-execution self-repair stage on every served
    #: method (``config.repair = "pattern_lm"``, see docs/PIPELINE.md).
    repair: bool = False
    #: Expected execution backend of the served dataset (``None``
    #: accepts any).  The engine validates this at construction so a
    #: gateway worker handed a mismatched dataset fails loudly instead
    #: of silently serving from a different engine than the coordinator
    #: benchmarked.
    backend: str | None = None


@dataclass
class ServeStats:
    """Deterministic engine counters (no wall-clock values)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    coalesce_hits: int = 0
    computed: int = 0
    shed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    batches: int = 0
    max_batch: int = 0
    max_queue_depth: int = 0
    warmed_methods: int = 0
    warmed_gold: int = 0
    spans_dropped: int = 0
    decode_windows: int = 0
    decode_submissions: int = 0
    decode_draws: int = 0
    decode_max_submission: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass(frozen=True)
class ServeSpan:
    """Per-request observability record fed into the metrics registry."""

    method: str
    db_id: str
    status: str
    queue_wait_s: float
    service_s: float
    total_s: float
    coalesced: bool
    batch_size: int
    #: Response-cache outcome for this request: "off" (cache disabled),
    #: "hit" (served from cache), or "miss" (cache consulted, computed).
    cache: str = "off"


def ingest_serve_span(registry: MetricsRegistry, span: ServeSpan) -> None:
    """Fold one serve span into ``serve_*`` counters and histograms."""
    registry.count("serve_requests", method=span.method, status=span.status)
    if span.coalesced:
        registry.count("serve_coalesce_hits", method=span.method)
    if span.cache == "hit":
        registry.count("serve_cache_hits", method=span.method)
    elif span.cache == "miss":
        registry.count("serve_cache_misses", method=span.method)
    if span.status == ServeStatus.TIMEOUT.value:
        registry.count("serve_timeouts", method=span.method)
    registry.observe("serve_queue_wait_s", span.queue_wait_s, method=span.method)
    registry.observe("serve_service_s", span.service_s, method=span.method)
    registry.observe("serve_latency_s", span.total_s, method=span.method)


def ingest_serve_cache(registry: MetricsRegistry, deltas: dict[str, int]) -> None:
    """Fold one engine's response-cache counter deltas into ``serve_cache_*``.

    ``deltas`` is a :meth:`ResponseCache.stats`-shaped dict (typically
    end-of-run minus start-of-run); hits/misses arrive per request via
    :func:`ingest_serve_span`, so only the store/eviction/expiry/
    invalidation counters are folded here.
    """
    for name in ("stores", "evictions", "expirations", "invalidations"):
        value = int(deltas.get(name, 0))
        if value > 0:
            registry.count(f"serve_cache_{name}", value=value)


class ServeFuture:
    """Handle for one submitted request; resolves exactly once."""

    def __init__(self, engine: "ServingEngine", request: ServeRequest) -> None:
        self._engine = engine
        self.request = request
        self.submitted_at = time.perf_counter()
        self.coalesced = False
        self.admitted = False
        self.cache_state = "off"
        self._event = threading.Event()
        self._response: ServeResponse | None = None
        self._resolve_lock = threading.Lock()

    def done(self) -> bool:
        return self._event.is_set()

    def _resolve(self, response: ServeResponse) -> bool:
        """First resolution wins; returns whether this call was it."""
        with self._resolve_lock:
            if self._response is not None:
                return False
            self._response = response
        self._event.set()
        return True

    def _deadline_remaining(self) -> float | None:
        if self.request.deadline_s is None:
            return None
        return self.request.deadline_s - (time.perf_counter() - self.submitted_at)

    def response(self, timeout: float | None = None) -> ServeResponse:
        """Block for the response.

        Deadline expiry resolves the request with a ``TIMEOUT`` response.
        An exhausted explicit ``timeout`` (with the deadline still live)
        raises :class:`~repro.errors.ServeTimeout` — the request itself
        stays pending.  The explicit ``timeout`` is a hard overall bound
        on this call: total elapsed time is tracked across deadline-race
        re-waits, never re-armed per iteration.
        """
        entered = time.perf_counter()
        while True:
            budget = None
            if timeout is not None:
                budget = timeout - (time.perf_counter() - entered)
            remaining = self._deadline_remaining()
            waits = [w for w in (budget, remaining) if w is not None]
            wait = min(waits) if waits else None
            if self._event.wait(None if wait is None else max(wait, 0.0)):
                assert self._response is not None
                return self._response
            remaining = self._deadline_remaining()
            if remaining is not None and remaining <= 0:
                self._engine._expire(self)
                assert self._response is not None
                return self._response
            if timeout is not None and time.perf_counter() - entered >= timeout:
                raise ServeTimeoutError(
                    f"no response within {timeout}s for {self.request.key}"
                )
            # Deadline-governed wait raced the clock by a hair (or the
            # timeout budget is not yet spent); re-wait on what is left.


class _Computation:
    """One scheduled unit of work; several futures may wait on it."""

    __slots__ = ("key", "example", "method", "waiters", "registered")

    def __init__(
        self,
        key: tuple[str, str, str],
        example: Example,
        method: NL2SQLMethod,
        registered: bool,
    ) -> None:
        self.key = key
        self.example = example
        self.method = method
        self.waiters: list[ServeFuture] = []
        self.registered = registered


class ServingEngine:
    """Concurrent online front-end over one dataset's evaluation pipeline."""

    def __init__(
        self,
        dataset: Dataset,
        config: ServeConfig | None = None,
        methods: dict[str, NL2SQLMethod] | None = None,
        response_cache: ResponseCache | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config if config is not None else ServeConfig()
        if self.config.workers <= 0:
            raise ServeError("workers must be positive")
        if self.config.max_batch_size <= 0:
            raise ServeError("max_batch_size must be positive")
        if self.config.request_log_size <= 0:
            raise ServeError("request_log_size must be positive")
        if self.config.db_ids is None:
            self._databases = dict(dataset.databases)
        else:
            unknown = [d for d in self.config.db_ids if d not in dataset.databases]
            if unknown:
                raise ServeError(f"unknown db_ids in config: {unknown}")
            self._databases = {
                db_id: dataset.databases[db_id] for db_id in self.config.db_ids
            }
        if self.config.backend is not None:
            mismatched = sorted(
                db_id
                for db_id, database in self._databases.items()
                if database.backend_name != self.config.backend
            )
            if mismatched:
                raise ServeError(
                    f"config expects backend {self.config.backend!r} but "
                    f"databases {mismatched} run on a different engine"
                )
        # An injected cache (e.g. one with a LogicalClock for TTL tests)
        # wins over the config knobs; otherwise build from the config.
        if response_cache is not None:
            self.response_cache: ResponseCache | None = response_cache
        elif self.config.response_cache:
            self.response_cache = ResponseCache(
                maxsize=self.config.response_cache_size,
                ttl_s=self.config.response_cache_ttl_s,
                semantic=self.config.semantic_cache_keys,
            )
        else:
            self.response_cache = None
        self._cache_stats_at_start: dict[str, int] = {}
        self._pool_stats_at_start: dict[str, int] = {}
        self.stats = ServeStats()
        # One decode scheduler per engine: every micro-batch runs under a
        # decode window so member requests' draws go through the batched
        # model path (see repro.serve.scheduler).
        self.decode_scheduler = DecodeScheduler()
        self.request_log: deque[ServeSpan] = deque(
            maxlen=self.config.request_log_size
        )
        self._evaluator = Evaluator(dataset, measure_timing=self.config.measure_timing)
        self._methods: dict[str, NL2SQLMethod] = dict(methods or {})
        self._examples = {
            key: example
            for key, example in question_index(dataset).items()
            if key[0] in self._databases
        }
        self._listening = False
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: deque[_Computation] = deque()
        self._inflight_keys: dict[tuple[str, str, str], _Computation] = {}
        self._in_flight = 0
        self._paused = False
        self._closed = False
        self._started = False
        self._scheduler: threading.Thread | None = None
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ServingEngine":
        """Warm up (if configured) and begin accepting traffic."""
        if self._started:
            return self
        if self._closed:
            # A closed engine has torn down its listeners and ingested
            # its cache deltas; restarting one would re-register the
            # listeners without ever balancing that teardown (the
            # original leak: restarted gateway workers kept dead engines
            # reachable and receiving purges).  Build a fresh engine.
            raise ServeError("engine is closed and cannot be restarted")
        if self.config.warm_start:
            self.warmup()
        else:
            self._prepare_methods()
        if self.response_cache is not None:
            self._cache_stats_at_start = self.response_cache.stats()
            for database in self._databases.values():
                database.add_mutation_listener(self._on_mutation)
            self._listening = True
        self._pool_stats_at_start = self.pool_stats()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="serve"
        )
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="serve-scheduler", daemon=True
        )
        self._started = True
        self._scheduler.start()
        return self

    def close(self) -> None:
        """Stop accepting traffic, drain scheduled work, join the workers."""
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()
        if self._scheduler is not None:
            self._scheduler.join()
            self._scheduler = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.response_cache is not None and self._listening:
            # Run the teardown exactly once: a second close() must not
            # double-remove listeners or double-ingest the cache deltas.
            self._listening = False
            for database in self._databases.values():
                database.remove_mutation_listener(self._on_mutation)
            tracer = get_tracer()
            if tracer.enabled:
                current = self.response_cache.stats()
                deltas = {
                    name: current.get(name, 0)
                    - self._cache_stats_at_start.get(name, 0)
                    for name in ("stores", "evictions", "expirations",
                                 "invalidations")
                }
                ingest_serve_cache(tracer.metrics, deltas)
        if self._started:
            # Once per engine lifetime (``_started`` drops below): fold
            # this engine's share of the databases' cumulative read-path
            # counters into ``pool_*`` metrics.
            tracer = get_tracer()
            if tracer.enabled:
                ingest_pool_deltas(
                    tracer.metrics,
                    self.dataset.name,
                    "serve",
                    self._pool_stats_at_start,
                    self.pool_stats(),
                )
        self._started = False

    def _on_mutation(self, db_id: str, version: int) -> None:
        """Mutation-listener hook: purge the mutated database's entries."""
        if self.response_cache is not None:
            self.response_cache.invalidate(db_id, version)

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- warm start -----------------------------------------------------

    def _prepare_methods(self) -> None:
        for name in self.config.methods:
            if name not in self._methods:
                method = build_method(name, seed=self.config.seed)
                if self.config.repair:
                    method = with_repair(method)
                method.prepare(self.dataset)
                self._methods[name] = method
                self.stats.warmed_methods += 1

    def warmup(self) -> None:
        """Prime caches before traffic: methods, gold executions, schemas.

        Prepares each served method (few-shot index build / simulated
        fine-tune), executes every distinct gold query of the served
        split once (also creating each database's first pooled replica),
        and runs one prediction per ``(method, database)`` so pruned
        schema parses and prompt-side value caches are warm.  Warmup
        predictions emit no example spans (no example context is open),
        so traced serving metrics cover only real traffic.
        """
        self._prepare_methods()
        served = [
            example for example in self.dataset.dev_examples
            if example.db_id in self._databases
        ]
        self.stats.warmed_gold += self._evaluator.precompute_gold(served)
        first_by_db: dict[str, Example] = {}
        for example in served:
            first_by_db.setdefault(example.db_id, example)
        for method in self._methods.values():
            for example in first_by_db.values():
                method.predict(example, self.dataset.database(example.db_id))

    # -- flow control ---------------------------------------------------

    def pause(self) -> None:
        """Hold scheduling; submissions queue (and coalesce) deterministically."""
        with self._wakeup:
            self._paused = True

    def resume(self) -> None:
        with self._wakeup:
            self._paused = False
            self._wakeup.notify_all()

    # -- submission -----------------------------------------------------

    def submit(self, request: ServeRequest) -> ServeFuture:
        """Admit one request; always returns a future that will resolve."""
        if not self._started:
            raise ServeError("engine is not started (use start() or a with-block)")
        if request.deadline_s is None and self.config.default_deadline_s is not None:
            request = replace(request, deadline_s=self.config.default_deadline_s)
        future = ServeFuture(self, request)
        method = self._methods.get(request.method)
        example = self._examples.get(
            (request.db_id, normalize_question(request.question))
        )
        with self._wakeup:
            self.stats.submitted += 1
            if self._closed:
                return self._finish_locked(future, ServeStatus.ERROR,
                                           error="engine is closed")
            if method is None:
                return self._finish_locked(
                    future, ServeStatus.ERROR,
                    error=f"method {request.method!r} is not served")
            if request.db_id not in self._databases:
                return self._finish_locked(
                    future, ServeStatus.ERROR,
                    error=f"database {request.db_id!r} is not served"
                          " by this engine")
            if example is None:
                return self._finish_locked(
                    future, ServeStatus.ERROR,
                    error=f"unknown question for db {request.db_id!r}")
            remaining = future._deadline_remaining()
            if remaining is not None and remaining <= 0:
                # Dead on arrival: an already-expired deadline outranks
                # even a cache hit (the degradation contract says a zero
                # deadline always yields TIMEOUT).
                return self._finish_locked(future, ServeStatus.TIMEOUT,
                                           error="deadline exceeded")
            if self.response_cache is not None:
                # Consulted before admission control: a hit is answered
                # from memory and must never cost an in-flight slot.
                version = self._databases[request.db_id].data_version
                record = self.response_cache.lookup(
                    request.method, request.db_id, request.question, version
                )
                if record is not None:
                    future.cache_state = "hit"
                    self.stats.cache_hits += 1
                    return self._finish_locked(
                        future, ServeStatus.OK, record=record, cached=True
                    )
                future.cache_state = "miss"
                self.stats.cache_misses += 1
            if self._in_flight >= self.config.max_in_flight:
                return self._finish_locked(
                    future, ServeStatus.REJECTED,
                    error=f"engine at capacity ({self.config.max_in_flight} in flight)")
            future.admitted = True
            self._in_flight += 1
            computation = self._inflight_keys.get(request.key)
            if self.config.coalesce and computation is not None:
                future.coalesced = True
                self.stats.coalesce_hits += 1
                computation.waiters.append(future)
            else:
                computation = _Computation(
                    request.key, example, method, registered=self.config.coalesce
                )
                computation.waiters.append(future)
                if self.config.coalesce:
                    self._inflight_keys[request.key] = computation
                self._queue.append(computation)
                self.stats.max_queue_depth = max(
                    self.stats.max_queue_depth, len(self._queue)
                )
                self._wakeup.notify()
        return future

    def ask(
        self, method: str, db_id: str, question: str,
        deadline_s: float | None = None,
    ) -> ServeFuture:
        """Convenience wrapper building and submitting a :class:`ServeRequest`."""
        return self.submit(ServeRequest(method, db_id, question, deadline_s))

    def serve(
        self, requests: list[ServeRequest], submit_paused: bool = False
    ) -> list[ServeResponse]:
        """Submit a batch and wait for every response, in request order.

        ``submit_paused`` holds the scheduler until all requests are
        queued — every duplicate key then coalesces deterministically,
        which the serve benchmark and tests rely on.
        """
        if submit_paused:
            self.pause()
        futures = [self.submit(request) for request in requests]
        if submit_paused:
            self.resume()
        return [future.response() for future in futures]

    # -- resolution plumbing (engine lock conventions) -------------------

    def _finish_locked(
        self, future: ServeFuture, status: ServeStatus, **fields: object
    ) -> ServeFuture:
        """Resolve a future while already holding the engine lock."""
        self._finalize(future, status, locked=True, **fields)
        return future

    def _finalize(
        self,
        future: ServeFuture,
        status: ServeStatus,
        locked: bool = False,
        **fields: object,
    ) -> None:
        now = time.perf_counter()
        response = ServeResponse(
            request=future.request,
            status=status,
            coalesced=future.coalesced,
            total_s=now - future.submitted_at,
            **fields,  # type: ignore[arg-type]
        )
        if not future._resolve(response):
            return
        span = ServeSpan(
            method=future.request.method,
            db_id=future.request.db_id,
            status=status.value,
            queue_wait_s=response.queue_wait_s,
            service_s=response.service_s,
            total_s=response.total_s,
            coalesced=response.coalesced,
            batch_size=response.batch_size,
            cache=future.cache_state,
        )
        if locked:
            dropped = self._account_locked(future, status, span)
        else:
            with self._lock:
                dropped = self._account_locked(future, status, span)
        tracer = get_tracer()
        if tracer.enabled:
            ingest_serve_span(tracer.metrics, span)
            if dropped:
                registry = tracer.metrics
                registry.count("serve_spans_dropped", method=span.method)

    def _account_locked(
        self, future: ServeFuture, status: ServeStatus, span: ServeSpan
    ) -> bool:
        if future.admitted:
            self._in_flight -= 1
        if status is ServeStatus.OK:
            self.stats.completed += 1
        elif status is ServeStatus.TIMEOUT:
            self.stats.timeouts += 1
        elif status is ServeStatus.REJECTED:
            self.stats.rejected += 1
        else:
            self.stats.errors += 1
        # The span ring is bounded: appending to a full deque evicts the
        # oldest span, which must be counted, never silent (report-run
        # serve sections would otherwise be skewed under sustained load).
        dropped = (
            self.request_log.maxlen is not None
            and len(self.request_log) == self.request_log.maxlen
        )
        if dropped:
            self.stats.spans_dropped += 1
        self.request_log.append(span)
        return dropped

    def _expire(self, future: ServeFuture) -> None:
        """Resolve one future as TIMEOUT (deadline passed); idempotent."""
        self._finalize(future, ServeStatus.TIMEOUT, error="deadline exceeded")

    # -- scheduling -----------------------------------------------------

    def _schedule_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._closed and (self._paused or not self._queue):
                    self._wakeup.wait()
                if self._closed and not self._queue:
                    return
                drained = list(self._queue)
                self._queue.clear()
            # Micro-batch: group the drained backlog by (method, db_id) so
            # consecutive computations reuse warm few-shot/schema state,
            # preserving arrival order within each group.
            groups: dict[tuple[str, str], list[_Computation]] = {}
            for computation in drained:
                group_key = (computation.key[0], computation.key[1])
                groups.setdefault(group_key, []).append(computation)
            step = self.config.max_batch_size
            assert self._pool is not None
            for group in groups.values():
                for start in range(0, len(group), step):
                    batch = group[start:start + step]
                    with self._lock:
                        self.stats.batches += 1
                        self.stats.max_batch = max(self.stats.max_batch, len(batch))
                    self._pool.submit(self._run_batch, batch)

    def _run_batch(self, batch: list[_Computation]) -> None:
        # The decode window makes every member request's decoder draws go
        # through the batched model path; candidates stay bit-identical,
        # so serving output is unchanged by the batching switch.
        with self.decode_scheduler.window(len(batch)) as window:
            for computation in batch:
                self._run_computation(computation, len(batch))
        if window is None:
            return
        with self._lock:
            self.stats.decode_windows += 1
            self.stats.decode_submissions += window.submissions
            self.stats.decode_draws += window.draws
            self.stats.decode_max_submission = max(
                self.stats.decode_max_submission, window.max_submission
            )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.count("serve_decode_windows")
            if window.submissions:
                tracer.metrics.count(
                    "serve_decode_submissions", value=window.submissions
                )
            if window.draws:
                tracer.metrics.count("serve_decode_draws", value=window.draws)

    def _run_computation(self, computation: _Computation, batch_size: int) -> None:
        now = time.perf_counter()
        with self._lock:
            expired = [
                waiter for waiter in computation.waiters
                if not waiter.done()
                and waiter.request.deadline_s is not None
                and now - waiter.submitted_at > waiter.request.deadline_s
            ]
            live = any(
                not waiter.done() for waiter in computation.waiters
                if waiter not in expired
            )
            if not live:
                # Every waiter is gone: shed the computation unrun.
                if computation.registered and (
                    self._inflight_keys.get(computation.key) is computation
                ):
                    del self._inflight_keys[computation.key]
                computation.registered = False
                self.stats.shed += 1
        for waiter in expired:
            self._expire(waiter)
        if not live:
            return
        started = time.perf_counter()
        record: EvaluationRecord | None = None
        error: str | None = None
        database = self.dataset.databases[computation.example.db_id]
        version_before = database.data_version
        try:
            record = self._evaluator.evaluate_example(
                computation.method, computation.example
            )
        except Exception as exc:  # noqa: BLE001 - a request must never hang
            error = f"{type(exc).__name__}: {exc}"
        service_s = time.perf_counter() - started
        if (
            record is not None
            and self.response_cache is not None
            # A mutation mid-evaluation could leave a mixed-state record:
            # only store results computed against one stable version.
            and database.data_version == version_before
        ):
            self.response_cache.store(
                computation.key[0], computation.key[1], computation.key[2],
                version_before, record,
            )
            with self._lock:
                self.stats.cache_stores += 1
        with self._lock:
            # Unregister first: later identical submissions start a fresh
            # computation instead of attaching to a resolved one.
            if computation.registered and (
                self._inflight_keys.get(computation.key) is computation
            ):
                del self._inflight_keys[computation.key]
            waiters = list(computation.waiters)
            if record is not None:
                self.stats.computed += 1
        status = ServeStatus.OK if record is not None else ServeStatus.ERROR
        for waiter in waiters:
            self._finalize(
                waiter,
                status,
                record=record,
                error=error,
                queue_wait_s=started - waiter.submitted_at,
                service_s=service_s,
                batch_size=batch_size,
            )

    # -- introspection --------------------------------------------------

    def backpressure(self) -> dict[str, int]:
        """Live admission-control snapshot (in-flight, queue depth, capacity)."""
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "queued": len(self._queue),
                "max_in_flight": self.config.max_in_flight,
            }

    def cache_stats(self) -> dict[str, int]:
        """Response-cache counters (all zero when the cache is disabled)."""
        if self.response_cache is None:
            return {
                "hits": 0, "misses": 0, "expirations": 0, "evictions": 0,
                "entries": 0, "invalidations": 0, "stores": 0,
            }
        return self.response_cache.stats()

    def pool_stats(self) -> dict[str, int]:
        """Connection-pool counters summed over this dataset's databases."""
        totals = {"created": 0, "checkouts": 0, "refreshes": 0, "waits": 0}
        for database in self._databases.values():
            for key, value in database.pool_stats().items():
                totals[key] += value
        return totals


def question_index(dataset: Dataset) -> dict[tuple[str, str], Example]:
    """Map ``(db_id, question)`` to the example that serves it.

    Every example is indexed under both its verbatim question and its
    normalized form (:func:`repro.utils.text.normalize_question`), so
    whitespace/case request variants resolve to the same example.  Dev
    examples win over train; within a split the first occurrence wins.
    Offline reference runs must resolve through this same index so
    served responses compare bit-identically.
    """
    index: dict[tuple[str, str], Example] = {}
    for example in dataset.dev_examples:
        index.setdefault((example.db_id, example.question), example)
        index.setdefault((example.db_id, normalize_question(example.question)), example)
    for example in dataset.examples:
        index.setdefault((example.db_id, example.question), example)
        index.setdefault((example.db_id, normalize_question(example.question)), example)
    return index
