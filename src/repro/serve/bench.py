"""Load-generator benchmark for the online serving engine.

Measures the serving engine against the offline evaluator on one seeded
Zipf-skewed workload (see :mod:`repro.serve.workload`):

* **offline reference** — every distinct ``(method, db_id, question)``
  key is evaluated once with the plain sequential
  :class:`~repro.core.evaluator.Evaluator`; every served response must
  be bit-identical to these records (``responses_identical``);
* **serial baseline** — one request at a time through a 1-worker,
  no-coalescing engine: the throughput denominator;
* **closed loop** — N client threads, each submitting its share of the
  workload and waiting for each response before sending the next;
  latency percentiles (p50/p95/p99) come from these runs;
* **open loop** — the whole workload is queued while the scheduler is
  paused, then released at once: duplicate keys coalesce
  deterministically (hits == requests − distinct keys, an exact gate)
  and the drain rate gives peak throughput;
* **degradation** — a zero-deadline run must resolve every request as a
  typed ``TIMEOUT`` (never hang) and the engine must serve normally
  right after;
* **response cache** — cache-on engines replay the workload cold (all
  misses, exact counter gate) then warm (all hits, served from memory);
  the warm drain rate against the cache-off open loop is the
  ``warm_speedup_vs_off`` headline, gated at ≥
  :data:`CACHE_SPEEDUP_GATE`× in full runs.  A semantic-key pass
  measures the paraphrase-folding correctness risk (collisions and
  record mismatches, reported but never gated), and a final
  invalidation stage mutates the hottest database mid-run and proves —
  by exact hit/miss/invalidation counters and bit-comparison against a
  fresh post-mutation offline reference — that no stale entry is ever
  served.

* **sharded gateway** (``--gateway``) — the same trace replayed through
  :class:`~repro.serve.gateway.cluster.ShardedGateway` at each shard
  count in ``--shards``: a full-record fill pass proves every shard
  layout bit-identical to the offline reference, a high-volume digest
  pass (``--gateway-requests``, 10⁵+ in full runs) measures per-shard
  p50/p95/p99 and scaling efficiency vs the 1-shard throughput, a
  mutation stage routes a write through ``apply_write`` and gates exact
  per-shard invalidation/recompute counters, and an HTTP stage drives a
  subset through real ``/query`` / ``/healthz`` / ``/metrics`` sockets.

Emits a JSON document (``BENCH_serve.json`` at the repo root, see
``benchmarks/test_perf_serve_smoke.py`` and
``benchmarks/test_perf_gateway_smoke.py``) with throughput, latency
percentiles at concurrency 1/4/8, coalesce/pool/timeout/cache counters,
and the ``speedup_at_8`` headline gated at ≥ :data:`SPEEDUP_GATE`× in
full runs.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from dataclasses import replace
from pathlib import Path

from collections import Counter

from repro.core.evaluator import Evaluator
from repro.datagen.benchmark import build_benchmark, spider_like_config
from repro.methods.zoo import build_method
from repro.schema.model import ColumnType, DatabaseSchema
from repro.serve.cache import DEFAULT_RESPONSE_CACHE_SIZE
from repro.serve.engine import (
    ServeConfig,
    ServeRequest,
    ServeResponse,
    ServeStatus,
    ServingEngine,
    question_index,
)
from repro.serve.workload import WorkloadSpec, build_workload
from repro.utils.text import normalize_question

#: Full-run throughput gate: open-loop @ concurrency 8 vs the serial baseline.
SPEEDUP_GATE = 3.0

#: Full-run gate: warm response-cache drain vs the cache-off open loop @ 8.
CACHE_SPEEDUP_GATE = 10.0

CONCURRENCIES = (1, 4, 8)

#: Shard counts the gateway stage sweeps in full runs (quick: 1 and 2).
GATEWAY_SHARD_COUNTS = (1, 2, 4)

#: High-volume digest-pass request count in full gateway runs (quick: 2000).
GATEWAY_VOLUME_REQUESTS = 120_000


def _percentiles(latencies_s: list[float]) -> dict[str, float]:
    if not latencies_s:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(latencies_s)

    def pick(quantile: float) -> float:
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return round(ordered[index] * 1000.0, 3)

    return {"p50_ms": pick(0.50), "p95_ms": pick(0.95), "p99_ms": pick(0.99)}


def _loop_summary(
    responses: list[ServeResponse], elapsed: float, engine: ServingEngine
) -> dict:
    return {
        "seconds": round(elapsed, 4),
        "throughput_rps": round(len(responses) / elapsed, 2) if elapsed else 0.0,
        "ok": sum(1 for r in responses if r.ok),
        "coalesce_hits": engine.stats.coalesce_hits,
        "batches": engine.stats.batches,
        "max_batch": engine.stats.max_batch,
        **_percentiles([r.total_s for r in responses]),
    }


def _closed_loop(
    engine: ServingEngine, workload: list[ServeRequest], clients: int
) -> tuple[list[ServeResponse], float]:
    """Each client thread works its round-robin share, one request at a time."""
    responses: list[ServeResponse | None] = [None] * len(workload)
    barrier = threading.Barrier(clients + 1)

    def client(cid: int) -> None:
        barrier.wait()
        for i in range(cid, len(workload), clients):
            responses[i] = engine.submit(workload[i]).response()

    threads = [
        threading.Thread(target=client, args=(cid,), name=f"client-{cid}")
        for cid in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return [r for r in responses if r is not None], elapsed


def _open_loop(
    engine: ServingEngine, workload: list[ServeRequest]
) -> tuple[list[ServeResponse], float]:
    """Queue the whole workload while paused, then release it at once."""
    engine.pause()
    futures = [engine.submit(request) for request in workload]
    started = time.perf_counter()
    engine.resume()
    responses = [future.response() for future in futures]
    elapsed = time.perf_counter() - started
    return responses, elapsed


def _cached_pass(
    engine: ServingEngine, workload: list[ServeRequest]
) -> tuple[list[ServeResponse], float]:
    """Submit and collect with submission time included.

    Warm response-cache hits resolve synchronously inside ``submit``, so
    the open loop's resume-to-drain window would measure nothing; this
    pass times the whole submit+collect cycle instead.
    """
    started = time.perf_counter()
    futures = [engine.submit(request) for request in workload]
    responses = [future.response() for future in futures]
    elapsed = time.perf_counter() - started
    return responses, elapsed


def _mutable_text_column(schema: DatabaseSchema) -> tuple[str, str]:
    """A (table, column) safe to rewrite in place: TEXT, non-key, non-FK."""
    fk_columns = set()
    for fk in schema.foreign_keys:
        fk_columns.add((fk.source_table.lower(), fk.source_column.lower()))
        fk_columns.add((fk.target_table.lower(), fk.target_column.lower()))
    for table in schema.tables:
        for column in table.columns:
            if (
                column.col_type is ColumnType.TEXT
                and not column.is_primary_key
                and (table.name.lower(), column.name.lower()) not in fk_columns
            ):
                return table.name, column.name
    raise RuntimeError(f"no mutable text column in {schema.db_id!r}")


def run_bench(
    scale: float = 0.08,
    seed: int = 42,
    requests: int = 240,
    distinct_examples: int = 32,
    zipf_s: float = 1.1,
    method_names: tuple[str, ...] = ("SuperSQL", "DAILSQL"),
    quick: bool = False,
    response_cache: bool = True,
    cache_size: int = DEFAULT_RESPONSE_CACHE_SIZE,
    cache_ttl_s: float | None = None,
    semantic_keys: bool = False,
    backend: str = "sqlite",
) -> dict:
    """Run the full serving benchmark; returns the result document."""
    dataset = build_benchmark(
        replace(spider_like_config(scale=scale, seed=seed), backend=backend)
    )
    workload = build_workload(
        dataset,
        WorkloadSpec(
            requests=requests,
            methods=method_names,
            distinct_examples=distinct_examples,
            zipf_s=zipf_s,
            seed=seed,
        ),
    )
    distinct_keys = sorted({request.key for request in workload})

    # Shared, prepared method instances: every engine (and the offline
    # reference) sees identical prepared state, and preparation cost is
    # paid once.
    methods = {name: build_method(name, seed=seed) for name in method_names}
    for method in methods.values():
        method.prepare(dataset)

    def fresh_engine(
        workers: int,
        coalesce: bool = True,
        deadline_s: float | None = None,
        cache: bool = False,
        semantic: bool = False,
    ) -> ServingEngine:
        config = ServeConfig(
            methods=method_names,
            workers=workers,
            max_in_flight=max(len(workload) * 2, 64),
            coalesce=coalesce,
            default_deadline_s=deadline_s,
            measure_timing=False,
            warm_start=True,
            seed=seed,
            response_cache=cache,
            response_cache_size=cache_size,
            response_cache_ttl_s=cache_ttl_s,
            semantic_cache_keys=semantic,
        )
        return ServingEngine(dataset, config, methods=dict(methods)).start()

    # Offline reference: the ground truth every response must match.
    # Also warms the process-wide memo layers, so the serial baseline and
    # the concurrent runs compete on equal (warm) footing.
    index = question_index(dataset)
    offline = Evaluator(dataset, measure_timing=False)
    reference = {
        key: offline.evaluate_example(methods[key[0]], index[(key[1], key[2])])
        for key in distinct_keys
    }

    mismatches = 0
    timeouts_total = 0

    def check(responses: list[ServeResponse]) -> None:
        nonlocal mismatches, timeouts_total
        for response in responses:
            if response.status is ServeStatus.TIMEOUT:
                timeouts_total += 1
            if not response.ok or response.record != reference[response.request.key]:
                mismatches += 1

    # Serial baseline: one request at a time, no coalescing.
    engine = fresh_engine(workers=1, coalesce=False)
    serial_responses, serial_elapsed = _closed_loop(engine, workload, clients=1)
    check(serial_responses)
    serial = _loop_summary(serial_responses, serial_elapsed, engine)
    engine.close()

    concurrency: dict[str, dict] = {}
    open_hits_at_8 = 0
    for clients in CONCURRENCIES:
        engine = fresh_engine(workers=clients)
        closed_responses, closed_elapsed = _closed_loop(engine, workload, clients)
        check(closed_responses)
        closed = _loop_summary(closed_responses, closed_elapsed, engine)
        engine.close()

        engine = fresh_engine(workers=clients)
        open_responses, open_elapsed = _open_loop(engine, workload)
        check(open_responses)
        opened = _loop_summary(open_responses, open_elapsed, engine)
        if clients == CONCURRENCIES[-1]:
            open_hits_at_8 = engine.stats.coalesce_hits
        # Pool counters live on the shared Database objects, so this is
        # cumulative over every run so far (snapshotted once below).
        pool_totals = engine.pool_stats()
        engine.close()
        concurrency[str(clients)] = {"closed": closed, "open": opened}

    # Graceful degradation: a zero deadline must time out every request
    # (typed responses, nothing hangs) and leave the engine healthy.
    engine = fresh_engine(workers=4, deadline_s=0.0)
    degradation_workload = workload[: max(len(distinct_keys), 8)]
    engine.pause()
    futures = [engine.submit(request) for request in degradation_workload]
    engine.resume()
    degraded = [future.response() for future in futures]
    # Recovery requests carry an explicit generous deadline (overriding
    # the engine's zero default): the same engine must serve them fine.
    recovery = [
        engine.submit(
            ServeRequest(method=key[0], db_id=key[1], question=key[2],
                         deadline_s=300.0)
        ).response()
        for key in distinct_keys[:4]
    ]
    check(recovery)
    degradation = {
        "requests": len(degraded),
        "timeouts": sum(1 for r in degraded if r.status is ServeStatus.TIMEOUT),
        "shed": engine.stats.shed,
        "recovered_ok": sum(1 for r in recovery if r.ok),
    }
    engine.close()

    open_8 = concurrency[str(CONCURRENCIES[-1])]["open"]
    speedup = (
        open_8["throughput_rps"] / serial["throughput_rps"]
        if serial["throughput_rps"]
        else 0.0
    )

    # -- response cache: cold/warm comparison, semantic risk, invalidation.
    # Runs last because the invalidation stage mutates a live database.
    cache_doc: dict = {"enabled": bool(response_cache)}
    if response_cache:
        cache_doc.update(
            size=cache_size, ttl_s=cache_ttl_s, semantic_keys=semantic_keys
        )

        # Cold pass: fresh cache, open loop — every submission must miss.
        engine = fresh_engine(workers=8, cache=True, semantic=semantic_keys)
        cold_responses, cold_elapsed = _open_loop(engine, workload)
        if not semantic_keys:
            check(cold_responses)
        cold = _loop_summary(cold_responses, cold_elapsed, engine)
        cold["cache_hits"] = engine.stats.cache_hits
        cold["cache_misses"] = engine.stats.cache_misses

        # Warm pass on the same engine: every request must hit.
        warm_responses, warm_elapsed = _cached_pass(engine, workload)
        warm = _loop_summary(warm_responses, warm_elapsed, engine)
        warm["cache_hits"] = engine.stats.cache_hits - cold["cache_hits"]
        warm["cache_misses"] = engine.stats.cache_misses - cold["cache_misses"]
        warm["served_cached"] = sum(1 for r in warm_responses if r.cached)
        if semantic_keys:
            # Lossy keys: record divergences instead of gating on them.
            warm["semantic_mismatches"] = sum(
                1
                for r in warm_responses
                if not r.ok or r.record != reference[r.request.key]
            )
        else:
            check(warm_responses)

        # Whitespace/case variants must hit the same entries (the shared
        # normalize_question key): mangled questions, identical records.
        probes = [
            ServeRequest(
                method=key[0], db_id=key[1], question=f"  {key[2].upper()} "
            )
            for key in distinct_keys[: min(8, len(distinct_keys))]
        ]
        probe_hits_before = engine.stats.cache_hits
        probe_responses = [engine.submit(probe).response() for probe in probes]
        if not semantic_keys:
            check(probe_responses)
        variant_probes = {
            "requests": len(probes),
            "hits": engine.stats.cache_hits - probe_hits_before,
        }
        engine.close()

        # Semantic-key risk measurement: fold paraphrase equivalence
        # classes into the key and count collisions plus the record
        # divergences they cause.  Reported, never gated.
        semantic_base_keys = {
            (key[0], key[1], normalize_question(key[2], semantic=True))
            for key in distinct_keys
        }
        dev_questions = len(dataset.dev_examples)
        dev_semantic = len(
            {
                (e.db_id, normalize_question(e.question, semantic=True))
                for e in dataset.dev_examples
            }
        )
        engine = fresh_engine(workers=8, cache=True, semantic=True)
        _open_loop(engine, workload)
        semantic_responses, _ = _cached_pass(engine, workload)
        semantic_doc = {
            "distinct_base_keys": len(distinct_keys),
            "distinct_semantic_keys": len(semantic_base_keys),
            "workload_collisions": len(distinct_keys) - len(semantic_base_keys),
            "dev_questions": dev_questions,
            "dev_collisions": dev_questions - dev_semantic,
            "warm_hits": engine.stats.cache_hits,
            "mismatches": sum(
                1
                for r in semantic_responses
                if not r.ok or r.record != reference[r.request.key]
            ),
        }
        engine.close()

        # Invalidation: mutate the hottest database while a warm exact-key
        # engine is live; its entries must be purged, every affected
        # request must miss and recompute against a fresh post-mutation
        # offline reference, and unaffected entries must keep hitting.
        target_db = Counter(r.db_id for r in workload).most_common(1)[0][0]
        affected = [r for r in workload if r.db_id == target_db]
        unaffected = [r for r in workload if r.db_id != target_db]
        affected_distinct = {r.key for r in affected}
        engine = fresh_engine(workers=8, cache=True)
        _open_loop(engine, workload)  # fill: one entry per distinct key
        fill_hits = engine.stats.cache_hits
        fill_misses = engine.stats.cache_misses
        database = dataset.databases[target_db]
        table, column = _mutable_text_column(database.schema)
        # apply_write commits on the active backend and fires the
        # engine's invalidation listener via mark_mutated.
        database.apply_write(
            f"UPDATE {table} SET {column} = {column} || ' (edited)' "
            f"WHERE rowid IN (SELECT rowid FROM {table} LIMIT 1)"
        )
        invalidated = engine.cache_stats()["invalidations"]
        post_reference = dict(reference)
        for key in sorted(affected_distinct):
            post_reference[key] = offline.evaluate_example(
                methods[key[0]], index[(key[1], key[2])]
            )
        replay_responses, _ = _open_loop(engine, workload)
        replay_hits = engine.stats.cache_hits - fill_hits
        replay_misses = engine.stats.cache_misses - fill_misses
        stale_serves = sum(
            1
            for r in replay_responses
            if not r.ok or r.record != post_reference[r.request.key]
        )
        mismatches += stale_serves
        invalidation_doc = {
            "mutated_db": target_db,
            "mutated_table": table,
            "affected_requests": len(affected),
            "unaffected_requests": len(unaffected),
            "expected_invalidated": len(affected_distinct),
            "invalidated_entries": invalidated,
            "replay_hits": replay_hits,
            "replay_misses": replay_misses,
            "stale_serves": stale_serves,
        }
        engine.close()

        warm_speedup = (
            warm["throughput_rps"] / open_8["throughput_rps"]
            if open_8["throughput_rps"]
            else 0.0
        )
        cache_doc.update(
            cold=cold,
            warm=warm,
            warm_speedup_vs_off=round(warm_speedup, 2),
            variant_probes=variant_probes,
            semantic=semantic_doc,
            invalidation=invalidation_doc,
        )

    return {
        "quick": quick,
        "scale": scale,
        "seed": seed,
        "backend": backend,
        "cpu_count": os.cpu_count(),
        "requests": len(workload),
        "distinct_keys": len(distinct_keys),
        "zipf_s": zipf_s,
        "methods": list(method_names),
        "responses_identical": mismatches == 0,
        "timeouts_total": timeouts_total,
        "serial": serial,
        "concurrency": concurrency,
        "speedup_at_8": round(speedup, 2),
        "coalesce": {
            "open_hits_at_8": open_hits_at_8,
            "expected_open_hits": len(workload) - len(distinct_keys),
        },
        "pool": pool_totals,
        "degradation": degradation,
        "response_cache": cache_doc,
    }


def _shard_latency_rows(
    gateway, digests: list[tuple], workload: list[ServeRequest]
) -> dict[int, list[float]]:
    """Group digest-pass latencies by the shard that served them."""
    by_shard: dict[int, list[float]] = {shard: [] for shard in range(gateway.shards)}
    for request, digest in zip(workload, digests):
        by_shard[gateway.owner(request.db_id)].append(digest[5])
    return by_shard


def run_gateway_bench(
    scale: float = 0.08,
    seed: int = 42,
    distinct_examples: int = 32,
    zipf_s: float = 1.1,
    method_names: tuple[str, ...] = ("SuperSQL", "DAILSQL"),
    shard_counts: tuple[int, ...] = GATEWAY_SHARD_COUNTS,
    volume_requests: int = GATEWAY_VOLUME_REQUESTS,
    quick: bool = False,
    backend: str = "sqlite",
) -> dict:
    """Replay one seeded trace through the sharded gateway at each shard count.

    Every gate here is a deterministic counter or bit-identity check —
    never wall-clock — so the same document doubles as the tier-2 smoke
    fixture.  Scaling efficiency vs the 1-shard throughput is recorded
    for the report but not gated (a 1-CPU host cannot scale).
    """
    from repro.serve.gateway.cluster import ShardedGateway
    from repro.serve.gateway.http import GatewayHTTPClient, GatewayHTTPServer
    from repro.serve.gateway.wire import record_digest, record_to_dict

    dataset_config = replace(
        spider_like_config(scale=scale, seed=seed), backend=backend
    )
    serve_config = ServeConfig(
        methods=method_names,
        workers=2,
        max_in_flight=max(volume_requests * 2, 64),
        measure_timing=False,
        warm_start=True,
        seed=seed,
        response_cache=True,
    )
    per_shards: dict[str, dict] = {}
    throughputs: dict[int, float] = {}
    gates = {
        "identical_all_layouts": True,
        "volume_all_cached": True,
        "counters_exact": True,
        "mutation_exact": True,
        "spans_dropped_exact": True,
        "http_ok": True,
    }
    http_doc: dict = {}

    for shards in shard_counts:
        # A pristine parent-side dataset per layout: the mutation stage
        # below edits live databases, and every spawned worker rebuilds
        # from the same (unmutated) config.
        dataset = build_benchmark(dataset_config)
        workload = build_workload(
            dataset,
            WorkloadSpec(
                requests=volume_requests,
                methods=method_names,
                distinct_examples=distinct_examples,
                zipf_s=zipf_s,
                seed=seed,
            ),
        )
        distinct_keys = sorted({request.key for request in workload})
        fill_requests = [
            ServeRequest(method=key[0], db_id=key[1], question=key[2])
            for key in distinct_keys
        ]
        methods = {name: build_method(name, seed=seed) for name in method_names}
        for method in methods.values():
            method.prepare(dataset)
        index = question_index(dataset)
        offline = Evaluator(dataset, measure_timing=False)
        reference = {
            key: offline.evaluate_example(methods[key[0]], index[(key[1], key[2])])
            for key in distinct_keys
        }
        reference_digests = {
            key: record_digest(record) for key, record in reference.items()
        }

        gateway = ShardedGateway(dataset_config, serve_config, shards=shards)
        started = time.perf_counter()
        gateway.start()
        startup_s = time.perf_counter() - started
        try:
            layout = gateway.shard_layout()

            # Fill: every distinct key once, full records — the
            # bit-identity witness for this layout.
            fill_started = time.perf_counter()
            fill_responses = gateway.serve(fill_requests)
            fill_elapsed = time.perf_counter() - fill_started
            fill_mismatches = sum(
                1
                for response in fill_responses
                if not response.ok
                or response.record != reference[response.request.key]
            )
            if fill_mismatches:
                gates["identical_all_layouts"] = False
            after_fill = {s["shard"]: s for s in gateway.shard_stats()}

            # Volume: the Zipf trace in digest mode — every request must
            # be a response-cache hit with the reference record's digest.
            volume_started = time.perf_counter()
            digests = gateway.serve_many(workload, mode="digest")
            volume_elapsed = time.perf_counter() - volume_started
            not_cached = sum(1 for d in digests if not (d[0] == "ok" and d[1]))
            digest_mismatches = sum(
                1
                for request, digest in zip(workload, digests)
                if digest[4] != reference_digests[request.key]
            )
            if not_cached:
                gates["volume_all_cached"] = False
            if digest_mismatches:
                gates["identical_all_layouts"] = False
            after_volume = {s["shard"]: s for s in gateway.shard_stats()}
            latencies = _shard_latency_rows(gateway, digests, workload)

            # Mutation: route one write to the owner shard; its cache
            # entries must invalidate and affected keys must recompute
            # bit-identically to a fresh post-mutation offline reference.
            target_db = Counter(r.db_id for r in workload).most_common(1)[0][0]
            affected_keys = sorted(k for k in distinct_keys if k[1] == target_db)
            table, column = _mutable_text_column(dataset.databases[target_db].schema)
            mutation_sql = (
                f"UPDATE {table} SET {column} = {column} || ' (edited)' "
                f"WHERE rowid IN (SELECT rowid FROM {table} LIMIT 1)"
            )
            apply_result = gateway.apply_write(target_db, mutation_sql)
            # The parent-side reference copy takes the same write.
            dataset.databases[target_db].apply_write(mutation_sql)
            post_reference = {
                key: offline.evaluate_example(methods[key[0]], index[(key[1], key[2])])
                for key in affected_keys
            }
            replay = gateway.serve(
                [
                    ServeRequest(method=key[0], db_id=key[1], question=key[2])
                    for key in affected_keys
                ]
            )
            stale_serves = sum(
                1
                for response in replay
                if not response.ok
                or response.record != post_reference[response.request.key]
            )
            after_mutation = {s["shard"]: s for s in gateway.shard_stats()}
            owner_shard = gateway.owner(target_db)
            invalidated = (
                after_mutation[owner_shard]["cache"]["invalidations"]
                - after_volume[owner_shard]["cache"]["invalidations"]
            )
            replay_misses = (
                after_mutation[owner_shard]["engine"]["cache_misses"]
                - after_volume[owner_shard]["engine"]["cache_misses"]
            )
            mutation_doc = {
                "mutated_db": target_db,
                "owner_shard": owner_shard,
                "affected_distinct": len(affected_keys),
                "applied_rows": apply_result["affected"],
                "invalidated_entries": invalidated,
                "replay_misses": replay_misses,
                "stale_serves": stale_serves,
            }
            if (
                stale_serves
                or invalidated != len(affected_keys)
                or replay_misses != len(affected_keys)
            ):
                gates["mutation_exact"] = False

            # Per-shard accounting: exact fill/volume counter deltas plus
            # latency percentiles and the span-drop invariant.
            shard_rows = []
            for shard in range(shards):
                owned = layout.get(shard, [])
                owned_distinct = sum(1 for key in distinct_keys if key[1] in owned)
                routed_volume = len(latencies[shard])
                fill_stats = after_fill[shard]
                volume_stats = after_volume[shard]
                final_stats = after_mutation[shard]
                fill_misses = fill_stats["engine"]["cache_misses"]
                fill_computed = fill_stats["engine"]["computed"]
                volume_hits = (
                    volume_stats["engine"]["cache_hits"]
                    - fill_stats["engine"]["cache_hits"]
                )
                submitted = final_stats["engine"]["submitted"]
                spans_dropped = final_stats["engine"]["spans_dropped"]
                expected_dropped = max(
                    0, submitted - serve_config.request_log_size
                )
                row = {
                    "shard": shard,
                    "databases": len(owned),
                    "distinct_keys": owned_distinct,
                    "fill_misses": fill_misses,
                    "fill_computed": fill_computed,
                    "volume_requests": routed_volume,
                    "volume_hits": volume_hits,
                    "submitted": submitted,
                    "spans_dropped": spans_dropped,
                    "expected_spans_dropped": expected_dropped,
                    **_percentiles(latencies[shard]),
                }
                shard_rows.append(row)
                if fill_misses != owned_distinct or fill_computed != owned_distinct:
                    gates["counters_exact"] = False
                if volume_hits != routed_volume:
                    gates["counters_exact"] = False
                if spans_dropped != expected_dropped:
                    gates["spans_dropped_exact"] = False

            # HTTP: real sockets for the largest layout only (volume goes
            # over pipes; this stage proves the endpoint contract).
            if shards == max(shard_counts):
                probe_keys = distinct_keys[: min(8, len(distinct_keys))]
                server = GatewayHTTPServer(gateway).start()
                try:
                    client = GatewayHTTPClient(server.host, server.port)
                    http_mismatches = 0
                    for key in probe_keys:
                        body = client.query(key[0], key[1], key[2])
                        expected = (
                            record_to_dict(post_reference[key])
                            if key in post_reference
                            else record_to_dict(reference[key])
                        )
                        if body["status"] != "ok" or body["record"] != expected:
                            http_mismatches += 1
                    health = client.healthz()
                    metrics_text = client.metrics_text()
                    http_doc = {
                        "shards": shards,
                        "queries": len(probe_keys),
                        "mismatches": http_mismatches,
                        "healthz": health.get("status"),
                        "metrics_families": sum(
                            1 for line in metrics_text.splitlines()
                            if line.startswith("# TYPE")
                        ),
                        "has_serve_requests": "serve_requests" in metrics_text,
                        "has_gateway_requests": "gateway_requests" in metrics_text,
                    }
                    client.close()
                    if (
                        http_mismatches
                        or health.get("status") != "ok"
                        or not http_doc["has_serve_requests"]
                        or not http_doc["has_gateway_requests"]
                    ):
                        gates["http_ok"] = False
                finally:
                    server.close()
        finally:
            gateway.close()

        throughput = (
            len(workload) / volume_elapsed if volume_elapsed else 0.0
        )
        throughputs[shards] = throughput
        per_shards[str(shards)] = {
            "startup_s": round(startup_s, 3),
            "fill": {
                "requests": len(fill_requests),
                "seconds": round(fill_elapsed, 4),
                "mismatches": fill_mismatches,
            },
            "volume": {
                "requests": len(workload),
                "seconds": round(volume_elapsed, 4),
                "throughput_rps": round(throughput, 2),
                "not_cached": not_cached,
                "digest_mismatches": digest_mismatches,
            },
            "shards": shard_rows,
            "mutation": mutation_doc,
            "routing": gateway.stats.as_dict(),
        }

    base = throughputs.get(shard_counts[0], 0.0)
    scaling = {
        str(shards): {
            "throughput_rps": round(throughputs[shards], 2),
            "speedup_vs_1": round(throughputs[shards] / base, 3) if base else 0.0,
            "efficiency": (
                round(throughputs[shards] / (shards * base), 3) if base else 0.0
            ),
        }
        for shards in shard_counts
    }
    return {
        "quick": quick,
        "shard_counts": list(shard_counts),
        "volume_requests": volume_requests,
        "methods": list(method_names),
        "request_log_size": serve_config.request_log_size,
        "layouts": per_shards,
        "scaling": scaling,
        "http": http_doc,
        "gates": gates,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="serving engine benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small dataset/workload; skips the wall-clock gate")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--distinct", type=int, default=None)
    parser.add_argument("--zipf", type=float, default=1.1)
    parser.add_argument("--methods", nargs="+", default=None)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--response-cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="run the response-cache stages (cold/warm, "
                             "semantic risk, invalidation)")
    parser.add_argument("--cache-size", type=int,
                        default=DEFAULT_RESPONSE_CACHE_SIZE,
                        help="response-cache entry bound")
    parser.add_argument("--cache-ttl-s", type=float, default=None,
                        help="response-cache TTL in seconds (default: no expiry)")
    parser.add_argument("--semantic-keys", action="store_true",
                        help="use paraphrase-folding semantic cache keys for "
                             "the cold/warm passes (divergences are reported, "
                             "not gated)")
    parser.add_argument("--gateway", action="store_true",
                        help="also run the sharded-gateway stage (spawned "
                             "worker processes, HTTP endpoints)")
    parser.add_argument("--shards", type=int, nargs="+", default=None,
                        help="shard counts the gateway stage sweeps "
                             "(default: 1 2 4; quick: 1 2)")
    parser.add_argument("--gateway-requests", type=int, default=None,
                        help="digest-pass volume per shard count "
                             f"(default: {GATEWAY_VOLUME_REQUESTS}; quick: 2000)")
    parser.add_argument("--backend", default="sqlite", metavar="ENGINE",
                        help="execution backend the benchmark databases run on")
    args = parser.parse_args(argv)

    from repro.dbengine.backends import available_backends, backend_available

    if not backend_available(args.backend):
        parser.error(
            f"execution backend {args.backend!r} is not available "
            f"(installed engines: {', '.join(available_backends())})"
        )

    if args.quick:
        defaults = {"scale": 0.05, "requests": 120, "distinct": 24,
                    "methods": ["C3SQL"]}
    else:
        defaults = {"scale": 0.08, "requests": 240, "distinct": 32,
                    "methods": ["SuperSQL", "DAILSQL"]}
    result = run_bench(
        scale=args.scale if args.scale is not None else defaults["scale"],
        seed=args.seed,
        requests=args.requests if args.requests is not None else defaults["requests"],
        distinct_examples=(
            args.distinct if args.distinct is not None else defaults["distinct"]
        ),
        zipf_s=args.zipf,
        method_names=tuple(args.methods or defaults["methods"]),
        quick=args.quick,
        response_cache=args.response_cache,
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl_s,
        semantic_keys=args.semantic_keys,
        backend=args.backend,
    )

    problems = []
    if not result["responses_identical"]:
        problems.append("served responses diverge from offline Evaluator records")
    if result["coalesce"]["open_hits_at_8"] != result["coalesce"]["expected_open_hits"]:
        problems.append("open-loop coalescing is not exact")
    if result["timeouts_total"]:
        problems.append("deadline-free runs recorded timeouts")
    if result["pool"]["checkouts"] == 0:
        problems.append("connection pool was never exercised")
    if result["degradation"]["timeouts"] != result["degradation"]["requests"]:
        problems.append("zero-deadline run did not time out every request")
    if not args.quick and result["speedup_at_8"] < SPEEDUP_GATE:
        problems.append(
            f"speedup_at_8 {result['speedup_at_8']}x below the {SPEEDUP_GATE}x gate"
        )
    cache = result["response_cache"]
    if cache["enabled"]:
        if cache["cold"]["cache_hits"] != 0:
            problems.append("cold response-cache pass recorded hits")
        if cache["cold"]["cache_misses"] != result["requests"]:
            problems.append("cold response-cache pass did not miss every request")
        if cache["warm"]["cache_hits"] != result["requests"]:
            problems.append("warm response-cache pass did not hit every request")
        if cache["warm"]["served_cached"] != result["requests"]:
            problems.append("warm responses were not all cached-flagged")
        if cache["variant_probes"]["hits"] != cache["variant_probes"]["requests"]:
            problems.append("whitespace/case variants missed the response cache")
        invalidation = cache["invalidation"]
        if invalidation["invalidated_entries"] != invalidation["expected_invalidated"]:
            problems.append("data_version bump did not invalidate exactly the "
                            "mutated database's entries")
        if invalidation["replay_hits"] != invalidation["unaffected_requests"]:
            problems.append("post-mutation replay missed unaffected entries")
        if invalidation["replay_misses"] != invalidation["affected_requests"]:
            problems.append("post-mutation replay hit stale-keyed entries")
        if invalidation["stale_serves"] != 0:
            problems.append("a stale cached response was served after invalidation")
        if not args.quick and cache["warm_speedup_vs_off"] < CACHE_SPEEDUP_GATE:
            problems.append(
                f"warm_speedup_vs_off {cache['warm_speedup_vs_off']}x below "
                f"the {CACHE_SPEEDUP_GATE}x gate"
            )

    if args.gateway:
        if args.quick:
            shard_counts = tuple(args.shards or (1, 2))
            volume = args.gateway_requests or 2000
        else:
            shard_counts = tuple(args.shards or GATEWAY_SHARD_COUNTS)
            volume = args.gateway_requests or GATEWAY_VOLUME_REQUESTS
        gateway_result = run_gateway_bench(
            scale=args.scale if args.scale is not None else defaults["scale"],
            seed=args.seed,
            distinct_examples=(
                args.distinct if args.distinct is not None else defaults["distinct"]
            ),
            zipf_s=args.zipf,
            method_names=tuple(args.methods or defaults["methods"]),
            shard_counts=shard_counts,
            volume_requests=volume,
            quick=args.quick,
            backend=args.backend,
        )
        result["gateway"] = gateway_result
        gate_messages = {
            "identical_all_layouts": "gateway responses diverge from the "
                                     "offline reference at some shard layout",
            "volume_all_cached": "gateway volume pass was not served "
                                 "entirely from the response cache",
            "counters_exact": "per-shard fill/volume counters are not exact",
            "mutation_exact": "gateway mutation stage invalidation/recompute "
                              "counters are not exact (or served stale)",
            "spans_dropped_exact": "per-shard serve_spans_dropped does not "
                                   "match the request-log overflow exactly",
            "http_ok": "HTTP endpoint stage failed (query mismatch, "
                       "degraded healthz, or missing metrics)",
        }
        for gate, passed in gateway_result["gates"].items():
            if not passed:
                problems.append(f"gateway: {gate_messages[gate]}")

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    for problem in problems:
        print(f"bench_serve: FAIL — {problem}")
    if not problems:
        print(
            f"bench_serve: OK — {result['speedup_at_8']}x at concurrency "
            f"{CONCURRENCIES[-1]} ({result['requests']} requests, "
            f"{result['distinct_keys']} distinct)"
        )
        if args.gateway:
            scaling = result["gateway"]["scaling"]
            summary = ", ".join(
                f"{shards} shard(s): {row['throughput_rps']} rps "
                f"(eff {row['efficiency']})"
                for shards, row in scaling.items()
            )
            print(f"bench_serve: gateway OK — {summary}")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
