"""Load-generator benchmark for the online serving engine.

Measures the serving engine against the offline evaluator on one seeded
Zipf-skewed workload (see :mod:`repro.serve.workload`):

* **offline reference** — every distinct ``(method, db_id, question)``
  key is evaluated once with the plain sequential
  :class:`~repro.core.evaluator.Evaluator`; every served response must
  be bit-identical to these records (``responses_identical``);
* **serial baseline** — one request at a time through a 1-worker,
  no-coalescing engine: the throughput denominator;
* **closed loop** — N client threads, each submitting its share of the
  workload and waiting for each response before sending the next;
  latency percentiles (p50/p95/p99) come from these runs;
* **open loop** — the whole workload is queued while the scheduler is
  paused, then released at once: duplicate keys coalesce
  deterministically (hits == requests − distinct keys, an exact gate)
  and the drain rate gives peak throughput;
* **degradation** — a zero-deadline run must resolve every request as a
  typed ``TIMEOUT`` (never hang) and the engine must serve normally
  right after.

Emits a JSON document (``BENCH_serve.json`` at the repo root, see
``benchmarks/test_perf_serve_smoke.py``) with throughput, latency
percentiles at concurrency 1/4/8, coalesce/pool/timeout counters, and
the ``speedup_at_8`` headline gated at ≥ :data:`SPEEDUP_GATE`× in full
runs.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path

from repro.core.evaluator import Evaluator
from repro.datagen.benchmark import build_benchmark, spider_like_config
from repro.methods.zoo import build_method
from repro.serve.engine import (
    ServeConfig,
    ServeRequest,
    ServeResponse,
    ServeStatus,
    ServingEngine,
    question_index,
)
from repro.serve.workload import WorkloadSpec, build_workload

#: Full-run throughput gate: open-loop @ concurrency 8 vs the serial baseline.
SPEEDUP_GATE = 3.0

CONCURRENCIES = (1, 4, 8)


def _percentiles(latencies_s: list[float]) -> dict[str, float]:
    if not latencies_s:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(latencies_s)

    def pick(quantile: float) -> float:
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return round(ordered[index] * 1000.0, 3)

    return {"p50_ms": pick(0.50), "p95_ms": pick(0.95), "p99_ms": pick(0.99)}


def _loop_summary(
    responses: list[ServeResponse], elapsed: float, engine: ServingEngine
) -> dict:
    return {
        "seconds": round(elapsed, 4),
        "throughput_rps": round(len(responses) / elapsed, 2) if elapsed else 0.0,
        "ok": sum(1 for r in responses if r.ok),
        "coalesce_hits": engine.stats.coalesce_hits,
        "batches": engine.stats.batches,
        "max_batch": engine.stats.max_batch,
        **_percentiles([r.total_s for r in responses]),
    }


def _closed_loop(
    engine: ServingEngine, workload: list[ServeRequest], clients: int
) -> tuple[list[ServeResponse], float]:
    """Each client thread works its round-robin share, one request at a time."""
    responses: list[ServeResponse | None] = [None] * len(workload)
    barrier = threading.Barrier(clients + 1)

    def client(cid: int) -> None:
        barrier.wait()
        for i in range(cid, len(workload), clients):
            responses[i] = engine.submit(workload[i]).response()

    threads = [
        threading.Thread(target=client, args=(cid,), name=f"client-{cid}")
        for cid in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return [r for r in responses if r is not None], elapsed


def _open_loop(
    engine: ServingEngine, workload: list[ServeRequest]
) -> tuple[list[ServeResponse], float]:
    """Queue the whole workload while paused, then release it at once."""
    engine.pause()
    futures = [engine.submit(request) for request in workload]
    started = time.perf_counter()
    engine.resume()
    responses = [future.response() for future in futures]
    elapsed = time.perf_counter() - started
    return responses, elapsed


def run_bench(
    scale: float = 0.08,
    seed: int = 42,
    requests: int = 240,
    distinct_examples: int = 32,
    zipf_s: float = 1.1,
    method_names: tuple[str, ...] = ("SuperSQL", "DAILSQL"),
    quick: bool = False,
) -> dict:
    """Run the full serving benchmark; returns the result document."""
    dataset = build_benchmark(spider_like_config(scale=scale, seed=seed))
    workload = build_workload(
        dataset,
        WorkloadSpec(
            requests=requests,
            methods=method_names,
            distinct_examples=distinct_examples,
            zipf_s=zipf_s,
            seed=seed,
        ),
    )
    distinct_keys = sorted({request.key for request in workload})

    # Shared, prepared method instances: every engine (and the offline
    # reference) sees identical prepared state, and preparation cost is
    # paid once.
    methods = {name: build_method(name, seed=seed) for name in method_names}
    for method in methods.values():
        method.prepare(dataset)

    def fresh_engine(
        workers: int,
        coalesce: bool = True,
        deadline_s: float | None = None,
    ) -> ServingEngine:
        config = ServeConfig(
            methods=method_names,
            workers=workers,
            max_in_flight=max(len(workload) * 2, 64),
            coalesce=coalesce,
            default_deadline_s=deadline_s,
            measure_timing=False,
            warm_start=True,
            seed=seed,
        )
        return ServingEngine(dataset, config, methods=dict(methods)).start()

    # Offline reference: the ground truth every response must match.
    # Also warms the process-wide memo layers, so the serial baseline and
    # the concurrent runs compete on equal (warm) footing.
    index = question_index(dataset)
    offline = Evaluator(dataset, measure_timing=False)
    reference = {
        key: offline.evaluate_example(methods[key[0]], index[(key[1], key[2])])
        for key in distinct_keys
    }

    mismatches = 0
    timeouts_total = 0

    def check(responses: list[ServeResponse]) -> None:
        nonlocal mismatches, timeouts_total
        for response in responses:
            if response.status is ServeStatus.TIMEOUT:
                timeouts_total += 1
            if not response.ok or response.record != reference[response.request.key]:
                mismatches += 1

    # Serial baseline: one request at a time, no coalescing.
    engine = fresh_engine(workers=1, coalesce=False)
    serial_responses, serial_elapsed = _closed_loop(engine, workload, clients=1)
    check(serial_responses)
    serial = _loop_summary(serial_responses, serial_elapsed, engine)
    engine.close()

    concurrency: dict[str, dict] = {}
    open_hits_at_8 = 0
    for clients in CONCURRENCIES:
        engine = fresh_engine(workers=clients)
        closed_responses, closed_elapsed = _closed_loop(engine, workload, clients)
        check(closed_responses)
        closed = _loop_summary(closed_responses, closed_elapsed, engine)
        engine.close()

        engine = fresh_engine(workers=clients)
        open_responses, open_elapsed = _open_loop(engine, workload)
        check(open_responses)
        opened = _loop_summary(open_responses, open_elapsed, engine)
        if clients == CONCURRENCIES[-1]:
            open_hits_at_8 = engine.stats.coalesce_hits
        # Pool counters live on the shared Database objects, so this is
        # cumulative over every run so far (snapshotted once below).
        pool_totals = engine.pool_stats()
        engine.close()
        concurrency[str(clients)] = {"closed": closed, "open": opened}

    # Graceful degradation: a zero deadline must time out every request
    # (typed responses, nothing hangs) and leave the engine healthy.
    engine = fresh_engine(workers=4, deadline_s=0.0)
    degradation_workload = workload[: max(len(distinct_keys), 8)]
    engine.pause()
    futures = [engine.submit(request) for request in degradation_workload]
    engine.resume()
    degraded = [future.response() for future in futures]
    # Recovery requests carry an explicit generous deadline (overriding
    # the engine's zero default): the same engine must serve them fine.
    recovery = [
        engine.submit(
            ServeRequest(method=key[0], db_id=key[1], question=key[2],
                         deadline_s=300.0)
        ).response()
        for key in distinct_keys[:4]
    ]
    check(recovery)
    degradation = {
        "requests": len(degraded),
        "timeouts": sum(1 for r in degraded if r.status is ServeStatus.TIMEOUT),
        "shed": engine.stats.shed,
        "recovered_ok": sum(1 for r in recovery if r.ok),
    }
    engine.close()

    open_8 = concurrency[str(CONCURRENCIES[-1])]["open"]
    speedup = (
        open_8["throughput_rps"] / serial["throughput_rps"]
        if serial["throughput_rps"]
        else 0.0
    )
    return {
        "quick": quick,
        "scale": scale,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "requests": len(workload),
        "distinct_keys": len(distinct_keys),
        "zipf_s": zipf_s,
        "methods": list(method_names),
        "responses_identical": mismatches == 0,
        "timeouts_total": timeouts_total,
        "serial": serial,
        "concurrency": concurrency,
        "speedup_at_8": round(speedup, 2),
        "coalesce": {
            "open_hits_at_8": open_hits_at_8,
            "expected_open_hits": len(workload) - len(distinct_keys),
        },
        "pool": pool_totals,
        "degradation": degradation,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="serving engine benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small dataset/workload; skips the wall-clock gate")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--distinct", type=int, default=None)
    parser.add_argument("--zipf", type=float, default=1.1)
    parser.add_argument("--methods", nargs="+", default=None)
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    if args.quick:
        defaults = {"scale": 0.05, "requests": 120, "distinct": 24,
                    "methods": ["C3SQL"]}
    else:
        defaults = {"scale": 0.08, "requests": 240, "distinct": 32,
                    "methods": ["SuperSQL", "DAILSQL"]}
    result = run_bench(
        scale=args.scale if args.scale is not None else defaults["scale"],
        seed=args.seed,
        requests=args.requests if args.requests is not None else defaults["requests"],
        distinct_examples=(
            args.distinct if args.distinct is not None else defaults["distinct"]
        ),
        zipf_s=args.zipf,
        method_names=tuple(args.methods or defaults["methods"]),
        quick=args.quick,
    )

    problems = []
    if not result["responses_identical"]:
        problems.append("served responses diverge from offline Evaluator records")
    if result["coalesce"]["open_hits_at_8"] != result["coalesce"]["expected_open_hits"]:
        problems.append("open-loop coalescing is not exact")
    if result["timeouts_total"]:
        problems.append("deadline-free runs recorded timeouts")
    if result["pool"]["checkouts"] == 0:
        problems.append("connection pool was never exercised")
    if result["degradation"]["timeouts"] != result["degradation"]["requests"]:
        problems.append("zero-deadline run did not time out every request")
    if not args.quick and result["speedup_at_8"] < SPEEDUP_GATE:
        problems.append(
            f"speedup_at_8 {result['speedup_at_8']}x below the {SPEEDUP_GATE}x gate"
        )

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    for problem in problems:
        print(f"bench_serve: FAIL — {problem}")
    if not problems:
        print(
            f"bench_serve: OK — {result['speedup_at_8']}x at concurrency "
            f"{CONCURRENCIES[-1]} ({result['requests']} requests, "
            f"{result['distinct_keys']} distinct)"
        )
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
