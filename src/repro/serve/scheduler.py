"""Decode scheduler: batched model draws for serving micro-batches.

The serving engine groups waiting computations by ``(method, db_id)``
into micro-batches (:class:`~repro.serve.engine.ServingEngine`'s
scheduler thread).  A :class:`DecodeScheduler` rides along: it opens one
*decode window* per micro-batch and installs it as the ambient window of
the worker thread running that batch
(:func:`repro.llm.engine.decode_window`).  Every decoder draw issued by
a member request's :class:`~repro.llm.decoding.BoundSampler` is then
submitted to the window, which routes the whole draw list through the
model's batched :meth:`~repro.llm.model.SimulatedLanguageModel.generate_many`
path — draw-invariant work (lexicon, intent parse, pruned schema,
systematic corruption) is hoisted once per submission while each draw's
stochastic stream stays bit-identical to sequential decoding.

The window tallies deterministic counters (submissions routed, draws
carried, largest single submission) that the engine folds into
:class:`~repro.serve.engine.ServeStats` and — when tracing is on — into
the run's :class:`~repro.obs.registry.MetricsRegistry` as
``serve_decode_windows`` / ``serve_decode_submissions`` /
``serve_decode_draws``.  The per-stage ``llm_batched_calls`` /
``llm_batch_draws`` span counters are annotated by the model itself and
flow through the ordinary span → registry → report → Prometheus path.

Thread/process safety: a window is installed thread-locally and used by
the one worker thread running its micro-batch; the scheduler's
cumulative counters take an internal lock, so one scheduler serves every
worker thread of an engine.  When batching is globally disabled
(:func:`repro.llm.engine.batching_disabled`) :meth:`DecodeScheduler.window`
installs nothing and decoding falls back to sequential per-draw calls.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.llm.engine import batching_enabled, decode_window


@dataclass
class DecodeWindowStats:
    """Deterministic cumulative counters of one :class:`DecodeScheduler`."""

    windows: int = 0
    submissions: int = 0
    draws: int = 0
    max_submission: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class _DecodeWindow:
    """One micro-batch's ambient decode window (single worker thread)."""

    __slots__ = ("batch_size", "submissions", "draws", "max_submission")

    def __init__(self, batch_size: int) -> None:
        self.batch_size = batch_size
        self.submissions = 0
        self.draws = 0
        self.max_submission = 0

    def submit(self, sampler, draws: list[tuple[int, float]]) -> list:
        """Route one decoder's draw list through the batched model path."""
        self.submissions += 1
        self.draws += len(draws)
        self.max_submission = max(self.max_submission, len(draws))
        return sampler.generate_batch(draws)


class DecodeScheduler:
    """Opens decode windows over serving micro-batches and keeps tallies."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stats = DecodeWindowStats()

    @contextmanager
    def window(self, batch_size: int = 1):
        """Ambient decode window for one micro-batch (no-op when batching
        is globally disabled — decoding then runs sequentially)."""
        if not batching_enabled():
            yield None
            return
        active = _DecodeWindow(batch_size)
        try:
            with decode_window(active):
                yield active
        finally:
            with self._lock:
                self.stats.windows += 1
                self.stats.submissions += active.submissions
                self.stats.draws += active.draws
                self.stats.max_submission = max(
                    self.stats.max_submission, active.max_submission
                )

    def stats_dict(self) -> dict[str, int]:
        """Snapshot of the cumulative window counters."""
        with self._lock:
            return self.stats.as_dict()
