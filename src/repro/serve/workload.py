"""Seeded, Zipf-skewed request workloads for the serving benchmark.

Real NL2SQL traffic is heavily repeated — a few popular questions
dominate — which is exactly what in-flight coalescing exploits.
:func:`build_workload` draws requests over a capped set of distinct dev
examples with Zipf-distributed popularity, deterministically from the
spec's seed via :func:`~repro.utils.rng.derive_rng`: the same spec over
the same dataset always yields the same request sequence, so benchmark
counters (coalesce hits, distinct keys) are exact gates, not
statistical ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.benchmark import Dataset
from repro.errors import ServeError
from repro.serve.engine import ServeRequest
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one synthetic serving workload."""

    requests: int = 200
    methods: tuple[str, ...] = ("SuperSQL",)
    distinct_examples: int = 32
    zipf_s: float = 1.1
    seed: int = 7


def build_workload(dataset: Dataset, spec: WorkloadSpec) -> list[ServeRequest]:
    """Draw ``spec.requests`` requests over the dataset's dev split.

    Popularity rank ``r`` (0-based) gets weight ``1 / (r + 1)**zipf_s``;
    which example holds which rank is itself a seeded shuffle, so skew
    is not correlated with dataset order.  Methods round-robin over
    ``spec.methods`` per distinct example, keeping each ``(method,
    db_id, question)`` key's popularity intact.
    """
    if spec.requests <= 0:
        raise ServeError("workload needs a positive request count")
    examples = list(dataset.dev_examples[: max(spec.distinct_examples, 1)])
    if not examples:
        raise ServeError(f"dataset {dataset.name!r} has no dev examples to serve")
    rng = derive_rng(spec.seed, "serve-workload", dataset.name, spec.requests)
    rng.shuffle(examples)
    weights = [1.0 / (rank + 1) ** spec.zipf_s for rank in range(len(examples))]
    requests = []
    for _ in range(spec.requests):
        index = rng.choices(range(len(examples)), weights=weights, k=1)[0]
        example = examples[index]
        method = spec.methods[index % len(spec.methods)]
        requests.append(
            ServeRequest(method=method, db_id=example.db_id, question=example.question)
        )
    return requests
