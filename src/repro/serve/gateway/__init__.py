"""repro.serve.gateway: sharded multi-process serving behind HTTP.

The horizontal scale-out layer over :class:`repro.serve.ServingEngine`:
a :class:`HashRing` partitions databases across spawn-context worker
processes, :class:`ShardedGateway` routes requests/writes/invalidations
to owner shards and merges their metrics, and
:class:`GatewayHTTPServer` fronts it all with ``/query`` / ``/healthz``
/ ``/metrics`` endpoints.  See docs/SERVING.md ("The sharded gateway")
for the full contract.
"""

from repro.serve.gateway.cluster import (
    DEFAULT_CHUNK_SIZE,
    GatewayStats,
    ShardedGateway,
)
from repro.serve.gateway.http import GatewayHTTPClient, GatewayHTTPServer
from repro.serve.gateway.ring import DEFAULT_VNODES, HashRing, stable_hash
from repro.serve.gateway.wire import (
    canonical_record_json,
    record_digest,
    record_to_dict,
    response_to_dict,
)
from repro.serve.gateway.worker import owned_db_ids, worker_main

__all__ = [
    "HashRing",
    "stable_hash",
    "DEFAULT_VNODES",
    "ShardedGateway",
    "GatewayStats",
    "DEFAULT_CHUNK_SIZE",
    "GatewayHTTPServer",
    "GatewayHTTPClient",
    "worker_main",
    "owned_db_ids",
    "record_to_dict",
    "record_digest",
    "canonical_record_json",
    "response_to_dict",
]
