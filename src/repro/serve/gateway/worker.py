"""Gateway shard worker: one process, one ServingEngine, owned databases.

``worker_main`` is the spawn target for every gateway shard.  Workers
are started with the **spawn** context on purpose: nothing module-level
is inherited from the parent, so process-global switches
(``repro.dbengine.pool`` pooling, ``repro.utils.cache`` memo caches)
must arrive explicitly in the handshake — the single-process engine's
habit of "whatever the module globals happen to say" does not survive
scale-out, and making propagation explicit is the point.

Each worker rebuilds the dataset deterministically from the picklable
:class:`~repro.datagen.benchmark.BenchmarkConfig` (the same trick the
parallel evaluator uses), derives its owned ``db_id`` slice from the
shared :class:`~repro.serve.gateway.ring.HashRing` parameters, and runs
a :class:`~repro.serve.engine.ServingEngine` restricted to that slice
(``ServeConfig.db_ids``) under its own ambient tracer.  The parent
talks to it over a duplex pipe with ``(op, batch_id, ...)`` tuples;
every request gets a ``(batch_id, ("ok" | "error", payload))`` reply.

Inputs/outputs: pipe messages in (``serve`` / ``apply`` /
``invalidate`` / ``stats`` / ``metrics`` / ``ping`` / ``shutdown``);
pickled :class:`~repro.serve.engine.ServeResponse` lists, digest
tuples, counter dicts, or registry exports out.

Thread/process safety: ``worker_main`` owns its process and services
the pipe from one loop; the parent must serialize sends per worker
(the cluster holds a per-worker send lock).
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.datagen.benchmark import BenchmarkConfig, build_benchmark
from repro.dbengine.pool import pooling_enabled, set_pooling_enabled
from repro.llm.engine import batching_enabled, set_batching_enabled
from repro.obs.trace import Tracer, tracing
from repro.serve.engine import ServeConfig, ServeRequest, ServingEngine
from repro.serve.gateway.ring import HashRing
from repro.serve.gateway.wire import record_digest
from repro.utils.cache import caches_enabled, set_caches_enabled


def owned_db_ids(dataset_db_ids: list[str], shard_id: int, ring: HashRing) -> list[str]:
    """The sorted slice of ``dataset_db_ids`` this shard owns."""
    return [db_id for db_id in sorted(dataset_db_ids) if ring.owner(db_id) == shard_id]


def _digest_response(response) -> tuple:
    """Compact deterministic projection for high-volume passes."""
    return (
        response.status.value,
        response.cached,
        response.coalesced,
        response.error,
        record_digest(response.record),
        response.total_s,
    )


def worker_main(
    conn,
    shard_id: int,
    shards: int,
    vnodes: int,
    dataset_config: BenchmarkConfig,
    serve_config: ServeConfig,
    switches: dict,
) -> None:
    """Run one shard worker until a ``shutdown`` message arrives."""
    # Explicit switch propagation: under spawn these globals reset to
    # their defaults, so the parent's choices must be re-applied here.
    set_pooling_enabled(bool(switches.get("pooling", True)))
    set_caches_enabled(bool(switches.get("caches", True)))
    set_batching_enabled(bool(switches.get("batching", True)))
    dataset = build_benchmark(dataset_config)
    ring = HashRing(shards, vnodes)
    owned = owned_db_ids(list(dataset.databases), shard_id, ring)
    config = replace(serve_config, db_ids=tuple(owned))
    tracer = Tracer()
    with tracing(tracer):
        engine = ServingEngine(dataset, config)
        engine.start()
        try:
            _serve_loop(conn, engine, dataset, tracer, shard_id, owned)
        finally:
            engine.close()
            conn.close()


def _serve_loop(conn, engine, dataset, tracer, shard_id, owned) -> None:
    while True:
        message = conn.recv()
        op = message[0]
        if op == "shutdown":
            return
        batch_id = message[1]
        try:
            payload = _dispatch(message, engine, dataset, tracer, shard_id, owned)
        except Exception as exc:  # noqa: BLE001 - worker must keep serving
            conn.send((batch_id, ("error", f"{type(exc).__name__}: {exc}")))
        else:
            conn.send((batch_id, ("ok", payload)))


def _dispatch(message, engine, dataset, tracer, shard_id, owned):
    op = message[0]
    if op == "serve":
        _, _, items, mode = message
        requests = [
            ServeRequest(method, db_id, question, deadline_s)
            for method, db_id, question, deadline_s in items
        ]
        responses = engine.serve(requests)
        if mode == "digest":
            return [_digest_response(response) for response in responses]
        return responses
    if op == "apply":
        _, _, db_id, sql = message
        database = dataset.databases[db_id]
        affected = database.apply_write(sql)
        return {"affected": affected, "data_version": database.data_version}
    if op == "invalidate":
        _, _, db_id = message
        database = dataset.databases[db_id]
        database.mark_mutated()
        return {"data_version": database.data_version}
    if op == "stats":
        return {
            "shard": shard_id,
            "db_ids": list(owned),
            "engine": engine.stats.as_dict(),
            "cache": engine.cache_stats(),
            "pool": engine.pool_stats(),
        }
    if op == "metrics":
        return tracer.metrics.as_dict()
    if op == "ping":
        return {
            "shard": shard_id,
            "pid": os.getpid(),
            "db_ids": list(owned),
            "pooling": pooling_enabled(),
            "caches": caches_enabled(),
            "batching": batching_enabled(),
            # The execution backend this worker's rebuilt dataset runs
            # on — the parent asserts it matches the coordinator's.
            "backend": dataset.config.backend if dataset.config else "sqlite",
        }
    raise ValueError(f"unknown gateway op {op!r}")
