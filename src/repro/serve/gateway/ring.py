"""Consistent-hash ring assigning databases to gateway shards.

Sharding the serving tier partitions *databases*, not requests: every
request for one ``db_id`` must land on the shard whose worker holds
that database's warm replicas, mutation listeners, and response-cache
entries.  A :class:`HashRing` maps ``db_id -> shard`` with consistent
hashing (each shard projects ``vnodes`` virtual points onto a 64-bit
ring; a key is owned by the first point at or clockwise-after its own
hash), so growing the shard count moves only ``~1/n`` of the databases.

Hashes come from :func:`hashlib.blake2b` — never the built-in
``hash()``, whose per-process ``PYTHONHASHSEED`` salting would give
every gateway process a different ring.  Parent and spawned workers
build rings from the same ``(shards, vnodes)`` parameters and agree on
ownership by construction.

Inputs/outputs: shard count + vnode count in; a stable
``owner(db_id) -> int`` mapping and per-shard partitions out.

Thread/process safety: instances are immutable after construction and
safe to share across threads; equal parameters give identical rings in
any process.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

#: Virtual points each shard projects onto the ring.  64 keeps the
#: worst-case database imbalance low at the shard counts the gateway
#: targets (≤ 16) while the ring stays tiny (shards × 64 entries).
DEFAULT_VNODES = 64


def stable_hash(text: str) -> int:
    """Position ``text`` on the 64-bit ring, identically in any process."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over ``shards`` workers."""

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((stable_hash(f"shard-{shard}-vnode-{vnode}"), shard))
        points.sort()
        self._points = [position for position, _ in points]
        self._owners = [shard for _, shard in points]

    def owner(self, db_id: str) -> int:
        """The shard owning ``db_id`` (first point clockwise of its hash)."""
        position = stable_hash(db_id)
        index = bisect_right(self._points, position) % len(self._points)
        return self._owners[index]

    def partition(self, db_ids: list[str]) -> dict[int, list[str]]:
        """Split ``db_ids`` by owner; every shard appears, possibly empty.

        Databases within a shard keep the caller's order, so a sorted
        input yields a deterministic layout for warmup and tests.
        """
        assignment: dict[int, list[str]] = {shard: [] for shard in range(self.shards)}
        for db_id in db_ids:
            assignment[self.owner(db_id)].append(db_id)
        return assignment
