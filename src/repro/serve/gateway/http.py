"""Async HTTP front end for the sharded gateway (stdlib only).

:class:`GatewayHTTPServer` runs an :mod:`asyncio` HTTP/1.1 server on a
background thread in front of a started
:class:`~repro.serve.gateway.cluster.ShardedGateway`:

* ``POST /query`` — JSON ``{"method", "db_id", "question",
  "deadline_s"?}`` in, the canonical
  :func:`~repro.serve.gateway.wire.response_to_dict` envelope out
  (typed ``ok`` / ``timeout`` / ``rejected`` / ``error`` statuses, never
  a hang).
* ``GET /healthz`` — liveness JSON; HTTP 200 when every shard answers,
  503 when degraded.
* ``GET /metrics`` — the merged shard + parent metric state in
  Prometheus text exposition format.

Blocking gateway calls run on the event loop's default executor so the
accept loop stays responsive; connections are keep-alive until the
client closes.  :class:`GatewayHTTPClient` is the matching
:mod:`http.client` helper used by the benchmark and tests.

Inputs/outputs: HTTP requests in; deterministic JSON bodies /
Prometheus text out (timing fields are excluded from ``/query`` bodies
so identical traces produce byte-identical responses).

Thread/process safety: the server owns its loop thread; ``start``/
``close`` are safe from the owning thread.  The client serializes its
one connection with a lock, so an instance may be shared across
threads.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

from repro.errors import GatewayError
from repro.serve.gateway.cluster import ShardedGateway
from repro.serve.gateway.wire import response_to_dict

_MAX_BODY_BYTES = 1 << 20

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            500: "Internal Server Error", 503: "Service Unavailable"}


def _http_response(
    status: int, body: bytes, content_type: str, keep_alive: bool
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class GatewayHTTPServer:
    """Background-thread asyncio HTTP server over one started gateway."""

    def __init__(
        self, gateway: ShardedGateway, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port replaces it on start
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "GatewayHTTPServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="gateway-http", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise GatewayError(f"HTTP server failed to start: {self._startup_error}")
        return self

    def close(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "GatewayHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle_connection, self.host, self.port)
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:  # noqa: BLE001 - surface to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    # -- request handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line.strip() == b"":
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) < 3:
                    writer.write(_http_response(
                        400, _json_bytes({"error": "malformed request line"}),
                        "application/json", keep_alive=False,
                    ))
                    await writer.drain()
                    break
                method, target = parts[0].upper(), parts[1]
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY_BYTES:
                    writer.write(_http_response(
                        400, _json_bytes({"error": "body too large"}),
                        "application/json", keep_alive=False,
                    ))
                    await writer.drain()
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                status, payload, content_type = await self._route(method, target, body)
                writer.write(_http_response(status, payload, content_type, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, bytes, str]:
        loop = asyncio.get_running_loop()
        path = target.split("?", 1)[0]
        if method == "POST" and path == "/query":
            try:
                request = json.loads(body.decode("utf-8") or "{}")
                name = request["method"]
                db_id = request["db_id"]
                question = request["question"]
                deadline_s = request.get("deadline_s")
            except (ValueError, KeyError, UnicodeDecodeError) as exc:
                return (
                    400,
                    _json_bytes({"error": f"bad /query body: {exc}"}),
                    "application/json",
                )
            try:
                response = await loop.run_in_executor(
                    None, self.gateway.ask, name, db_id, question, deadline_s
                )
            except GatewayError as exc:
                return 500, _json_bytes({"error": str(exc)}), "application/json"
            return 200, _json_bytes(response_to_dict(response)), "application/json"
        if method == "GET" and path == "/healthz":
            try:
                health = await loop.run_in_executor(None, self.gateway.healthz)
            except GatewayError as exc:
                return 503, _json_bytes({"error": str(exc)}), "application/json"
            status = 200 if health.get("status") == "ok" else 503
            return status, _json_bytes(health), "application/json"
        if method == "GET" and path == "/metrics":
            try:
                text = await loop.run_in_executor(None, self.gateway.metrics_text)
            except GatewayError as exc:
                return 503, _json_bytes({"error": str(exc)}), "application/json"
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4"
        return (
            404,
            _json_bytes({"error": f"no route for {method} {path}"}),
            "application/json",
        )


class GatewayHTTPClient:
    """Keep-alive :mod:`http.client` helper for the gateway endpoints."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
        self._lock = threading.Lock()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "GatewayHTTPClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        headers = {"Content-Type": "application/json"} if body else {}
        with self._lock:
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, OSError):
                # One reconnect: the server may have closed an idle
                # keep-alive connection between requests.
                self._conn.close()
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                return response.status, response.read()

    def query(
        self, method: str, db_id: str, question: str,
        deadline_s: float | None = None,
    ) -> dict:
        payload: dict = {"method": method, "db_id": db_id, "question": question}
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        status, body = self._request("POST", "/query", _json_bytes(payload))
        if status != 200:
            raise GatewayError(f"/query returned HTTP {status}: {body[:200]!r}")
        return json.loads(body)

    def healthz(self) -> dict:
        _, body = self._request("GET", "/healthz")
        return json.loads(body)

    def metrics_text(self) -> str:
        status, body = self._request("GET", "/metrics")
        if status != 200:
            raise GatewayError(f"/metrics returned HTTP {status}")
        return body.decode("utf-8")
