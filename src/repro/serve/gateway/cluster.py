"""Sharded gateway: a pool of spawn-context shard workers plus routing.

:class:`ShardedGateway` is the parent-side half of the scale-out layer.
It spawns ``shards`` worker processes (each running
:func:`~repro.serve.gateway.worker.worker_main` over its ring-owned
database slice), routes every request to the owner shard via the shared
:class:`~repro.serve.gateway.ring.HashRing`, and re-assembles responses
in request order.  Writes (``apply_write``) and out-of-band
invalidations route the same way, so ``Database.mark_mutated`` events
reach the shard whose response cache and replica pool actually hold the
stale state — :meth:`attach_dataset` bridges parent-side mutation
listeners across the process boundary.

Workers are deliberately started with the **spawn** context and handed
the parent's module-global switch state (connection pooling, memo
caches) in the handshake; nothing is inherited by accident.

Inputs/outputs: a picklable
:class:`~repro.datagen.benchmark.BenchmarkConfig` +
:class:`~repro.serve.engine.ServeConfig` in;
:class:`~repro.serve.engine.ServeResponse` lists (or compact digest
tuples), per-shard stats dicts, and merged Prometheus-ready metric
exports out.

Thread/process safety: all public methods are safe from any thread —
each worker pipe has a dedicated send lock and reader thread, and
responses are matched by batch id.  The gateway itself must not be
shipped across processes (workers hold OS pipes).
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass, field

from repro.datagen.benchmark import BenchmarkConfig, Dataset
from repro.dbengine.backends import available_backends, backend_available
from repro.dbengine.pool import pooling_enabled
from repro.llm.engine import batching_enabled
from repro.errors import GatewayError
from repro.obs.prometheus import merge_metric_exports, render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.serve.engine import ServeConfig, ServeRequest, ServeResponse
from repro.serve.gateway.ring import DEFAULT_VNODES, HashRing
from repro.serve.gateway.worker import worker_main
from repro.utils.cache import caches_enabled

#: Requests shipped per pipe message in :meth:`ShardedGateway.serve_many`;
#: bounds peak pickle size while keeping per-message overhead amortized.
DEFAULT_CHUNK_SIZE = 2048


@dataclass
class GatewayStats:
    """Deterministic parent-side routing counters."""

    requests: int = 0
    apply_writes: int = 0
    invalidations_forwarded: int = 0
    worker_errors: int = 0
    routed: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "apply_writes": self.apply_writes,
            "invalidations_forwarded": self.invalidations_forwarded,
            "worker_errors": self.worker_errors,
            "routed": {str(shard): count for shard, count in sorted(self.routed.items())},
        }


class _Pending:
    """One in-flight worker call; resolved by the worker's reader thread."""

    __slots__ = ("event", "payload", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload = None
        self.failed: str | None = None

    def wait(self):
        self.event.wait()
        if self.failed is not None:
            raise GatewayError(self.failed)
        return self.payload


class _WorkerHandle:
    """Parent-side endpoint for one shard worker process."""

    def __init__(self, shard_id: int, process, conn) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.pending: dict[int, _Pending] = {}
        self.pending_lock = threading.Lock()
        self.alive = True
        self.reader = threading.Thread(
            target=self._read_loop, name=f"gateway-reader-{shard_id}", daemon=True
        )
        self.reader.start()

    def call(self, batch_id: int, message: tuple) -> _Pending:
        pending = _Pending()
        with self.pending_lock:
            if not self.alive:
                pending.failed = f"shard {self.shard_id} worker is not running"
                pending.event.set()
                return pending
            self.pending[batch_id] = pending
        with self.send_lock:
            try:
                self.conn.send(message)
            except (OSError, ValueError) as exc:
                with self.pending_lock:
                    self.pending.pop(batch_id, None)
                pending.failed = f"send to shard {self.shard_id} failed: {exc}"
                pending.event.set()
        return pending

    def _read_loop(self) -> None:
        while True:
            try:
                batch_id, (kind, payload) = self.conn.recv()
            except (EOFError, OSError):
                self._fail_all(f"shard {self.shard_id} worker pipe closed")
                return
            with self.pending_lock:
                pending = self.pending.pop(batch_id, None)
            if pending is None:
                continue  # stale reply for an abandoned call
            if kind == "error":
                pending.failed = f"shard {self.shard_id}: {payload}"
            else:
                pending.payload = payload
            pending.event.set()

    def _fail_all(self, reason: str) -> None:
        with self.pending_lock:
            self.alive = False
            drained = list(self.pending.values())
            self.pending.clear()
        for pending in drained:
            pending.failed = reason
            pending.event.set()


class ShardedGateway:
    """Consistent-hash sharded serving across spawn-context worker processes."""

    def __init__(
        self,
        dataset_config: BenchmarkConfig,
        serve_config: ServeConfig | None = None,
        shards: int = 2,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if shards <= 0:
            raise GatewayError("shards must be positive")
        self.dataset_config = dataset_config
        self.serve_config = serve_config if serve_config is not None else ServeConfig()
        self.ring = HashRing(shards, vnodes)
        self.shards = shards
        self.stats = GatewayStats()
        self.metrics = MetricsRegistry()
        self._stats_lock = threading.Lock()
        self._batch_ids = iter(range(1, 2**62)).__next__
        self._batch_lock = threading.Lock()
        self._workers: list[_WorkerHandle] = []
        self._attached: list[tuple[object, object]] = []
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ShardedGateway":
        """Spawn, warm, and handshake every shard worker."""
        if self._started:
            return self
        if self._closed:
            raise GatewayError("gateway is closed and cannot be restarted")
        context = multiprocessing.get_context("spawn")
        # Fail before spawning when the configured engine cannot exist in
        # the workers: a spawn-side import error would otherwise surface
        # as an opaque dead-pipe GatewayError per shard.
        expected_backend = self.dataset_config.backend
        if not backend_available(expected_backend):
            raise GatewayError(
                f"execution backend {expected_backend!r} is not available "
                f"(installed engines: {', '.join(available_backends())})"
            )
        switches = {
            "pooling": pooling_enabled(),
            "caches": caches_enabled(),
            "batching": batching_enabled(),
        }
        for shard_id in range(self.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=worker_main,
                name=f"gateway-shard-{shard_id}",
                args=(
                    child_conn, shard_id, self.shards, self.ring.vnodes,
                    self.dataset_config, self.serve_config, switches,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(shard_id, process, parent_conn))
        self._started = True
        # The ping reply arrives only after the worker finishes dataset
        # build + warm start, so this doubles as the readiness barrier —
        # and as the backend handshake: every shard must serve from the
        # same engine the coordinator's dataset was built on.
        for handle in self._workers:
            reply = self._call(handle, ("ping",))
            worker_backend = reply.get("backend", "sqlite")
            if worker_backend != expected_backend:
                raise GatewayError(
                    f"shard {handle.shard_id} runs backend "
                    f"{worker_backend!r}, expected {expected_backend!r}"
                )
        return self

    def close(self) -> None:
        """Detach listeners, stop workers, and join their processes."""
        if self._closed:
            return
        self._closed = True
        for database, forwarder in self._attached:
            database.remove_mutation_listener(forwarder)
        self._attached.clear()
        for handle in self._workers:
            with handle.send_lock:
                try:
                    handle.conn.send(("shutdown",))
                except (OSError, ValueError):
                    pass
        for handle in self._workers:
            handle.process.join(timeout=30)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
            handle.conn.close()
        self._started = False

    def __enter__(self) -> "ShardedGateway":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- plumbing -------------------------------------------------------

    def _next_batch_id(self) -> int:
        with self._batch_lock:
            return self._batch_ids()

    def _handle(self, shard: int) -> _WorkerHandle:
        if not self._started or self._closed:
            raise GatewayError("gateway is not running (use start() or a with-block)")
        return self._workers[shard]

    def _send(self, handle: _WorkerHandle, message_tail: tuple) -> _Pending:
        batch_id = self._next_batch_id()
        message = (message_tail[0], batch_id, *message_tail[1:])
        return handle.call(batch_id, message)

    def _call(self, handle: _WorkerHandle, message_tail: tuple):
        try:
            return self._send(handle, message_tail).wait()
        except GatewayError:
            with self._stats_lock:
                self.stats.worker_errors += 1
                self.metrics.count("gateway_worker_errors", shard=handle.shard_id)
            raise

    # -- routing --------------------------------------------------------

    def owner(self, db_id: str) -> int:
        """The shard that owns ``db_id`` on this gateway's ring."""
        return self.ring.owner(db_id)

    def serve_many(
        self,
        requests: list[ServeRequest],
        mode: str = "full",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> list:
        """Route a batch to owner shards; results come back in request order.

        ``mode="full"`` returns :class:`ServeResponse` objects;
        ``mode="digest"`` returns compact ``(status, cached, coalesced,
        error, record_digest, total_s)`` tuples, trading record payloads
        for pipe throughput on high-volume passes.  Chunks for different
        shards are in flight concurrently; chunks for one shard are
        pipelined in order on its pipe.
        """
        if mode not in ("full", "digest"):
            raise GatewayError(f"unknown serve mode {mode!r}")
        if chunk_size <= 0:
            raise GatewayError("chunk_size must be positive")
        by_shard: dict[int, list[tuple[int, ServeRequest]]] = {}
        for index, request in enumerate(requests):
            by_shard.setdefault(self.owner(request.db_id), []).append((index, request))
        with self._stats_lock:
            self.stats.requests += len(requests)
            for shard, slice_ in by_shard.items():
                self.stats.routed[shard] = self.stats.routed.get(shard, 0) + len(slice_)
                self.metrics.count(
                    "gateway_requests", value=float(len(slice_)), shard=shard
                )
        in_flight: list[tuple[list[int], _Pending]] = []
        for shard in sorted(by_shard):
            handle = self._handle(shard)
            slice_ = by_shard[shard]
            for start in range(0, len(slice_), chunk_size):
                chunk = slice_[start:start + chunk_size]
                indices = [index for index, _ in chunk]
                items = [
                    (r.method, r.db_id, r.question, r.deadline_s) for _, r in chunk
                ]
                in_flight.append((indices, self._send(handle, ("serve", items, mode))))
        results: list = [None] * len(requests)
        failures: list[str] = []
        for indices, pending in in_flight:
            try:
                payload = pending.wait()
            except GatewayError as exc:
                failures.append(str(exc))
                continue
            for index, result in zip(indices, payload):
                results[index] = result
        if failures:
            with self._stats_lock:
                self.stats.worker_errors += len(failures)
            raise GatewayError("; ".join(failures))
        return results

    def serve(self, requests: list[ServeRequest]) -> list[ServeResponse]:
        """Alias of :meth:`serve_many` in full mode (engine-compatible shape)."""
        return self.serve_many(requests, mode="full")

    def ask(
        self, method: str, db_id: str, question: str,
        deadline_s: float | None = None,
    ) -> ServeResponse:
        """Route one request and wait for its response."""
        return self.serve_many(
            [ServeRequest(method, db_id, question, deadline_s)]
        )[0]

    # -- writes & invalidation ------------------------------------------

    def apply_write(self, db_id: str, sql: str) -> dict:
        """Execute one DML statement on the owner shard's master copy.

        The worker's ``Database.apply_write`` commits, bumps
        ``data_version``, and fires the shard-local mutation listeners,
        so the owning response cache invalidates exactly as it would in
        a single process.
        """
        shard = self.owner(db_id)
        with self._stats_lock:
            self.stats.apply_writes += 1
            self.metrics.count("gateway_apply_writes", shard=shard)
        return self._call(self._handle(shard), ("apply", db_id, sql))

    def invalidate(self, db_id: str) -> dict:
        """Forward an out-of-band mutation event to the owner shard."""
        shard = self.owner(db_id)
        with self._stats_lock:
            self.stats.invalidations_forwarded += 1
            self.metrics.count("gateway_invalidations", shard=shard)
        return self._call(self._handle(shard), ("invalidate", db_id))

    def attach_dataset(self, dataset: Dataset) -> None:
        """Bridge a parent-side dataset's mutation events to owner shards.

        Registers one mutation listener per database that forwards
        ``mark_mutated`` to :meth:`invalidate` on the owning shard —
        the cross-process continuation of the engine's in-process
        listener chain.  Listeners are removed on :meth:`close`.
        """
        for db_id, database in dataset.databases.items():
            def forwarder(mutated_db_id: str, version: int, _db_id: str = db_id) -> None:
                self.invalidate(_db_id)

            database.add_mutation_listener(forwarder)
            self._attached.append((database, forwarder))

    # -- introspection ---------------------------------------------------

    def shard_stats(self) -> list[dict]:
        """One stats dict per shard (engine/cache/pool counters + layout)."""
        pendings = [
            self._send(self._handle(shard), ("stats",)) for shard in range(self.shards)
        ]
        return [pending.wait() for pending in pendings]

    def shard_layout(self) -> dict[int, list[str]]:
        """Owned ``db_id`` lists per shard, from the live workers."""
        return {entry["shard"]: entry["db_ids"] for entry in self.shard_stats()}

    def healthz(self) -> dict:
        """Liveness summary: gateway status plus one entry per shard."""
        entries = []
        status = "ok"
        for shard in range(self.shards):
            try:
                entries.append(self._call(self._handle(shard), ("ping",)))
            except GatewayError as exc:
                status = "degraded"
                entries.append({"shard": shard, "error": str(exc)})
        return {"status": status, "shards": entries}

    def metrics_export(self) -> dict:
        """Merged ``MetricsRegistry.as_dict()`` export across shards + parent."""
        exports = [self.metrics.as_dict()]
        pendings = [
            self._send(self._handle(shard), ("metrics",))
            for shard in range(self.shards)
        ]
        exports.extend(pending.wait() for pending in pendings)
        return merge_metric_exports(exports)

    def metrics_text(self) -> str:
        """The merged export rendered in Prometheus text format."""
        return render_prometheus(self.metrics_export())
