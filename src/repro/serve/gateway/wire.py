"""Wire formats shared by the gateway parent, workers, and HTTP layer.

One canonical JSON-able shape per payload: evaluation records flatten
to plain dicts (enums as their ``.value``), serve responses carry the
record plus the typed status/error envelope, and ``record_digest``
hashes the canonical form so high-volume passes can assert
bit-identical results without shipping full records across the
process boundary.

Inputs/outputs: :class:`~repro.core.metrics.EvaluationRecord` /
:class:`~repro.serve.engine.ServeResponse` objects in; sorted-key
JSON-compatible dicts and hex digests out.  Two records are equal iff
their canonical dicts are equal iff their digests are equal.

Thread/process safety: pure functions, no shared state; safe from any
thread or process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum

from repro.core.metrics import EvaluationRecord
from repro.serve.engine import ServeResponse


def record_to_dict(record: EvaluationRecord) -> dict:
    """Flatten one evaluation record into a JSON-able dict (enums → values)."""
    out: dict = {}
    for field in dataclasses.fields(record):
        value = getattr(record, field.name)
        out[field.name] = value.value if isinstance(value, Enum) else value
    return out


def canonical_record_json(record: EvaluationRecord) -> str:
    """Sorted-key JSON of the canonical dict: the bit-identity witness."""
    return json.dumps(record_to_dict(record), sort_keys=True, default=str)


def record_digest(record: EvaluationRecord | None) -> str | None:
    """Stable hex digest of a record's canonical JSON (``None`` passes through)."""
    if record is None:
        return None
    payload = canonical_record_json(record).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def response_to_dict(response: ServeResponse) -> dict:
    """Serialize one serve response (record included) for the HTTP layer.

    Timing fields are intentionally omitted: the HTTP contract exposes
    only deterministic content so two topologies serving the same trace
    return byte-identical bodies.
    """
    return {
        "request": {
            "method": response.request.method,
            "db_id": response.request.db_id,
            "question": response.request.question,
        },
        "status": response.status.value,
        "error": response.error,
        "cached": response.cached,
        "record": None if response.record is None else record_to_dict(response.record),
    }
