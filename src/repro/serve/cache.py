"""Cross-request response cache for the online serving engine.

:class:`ResponseCache` memoizes terminal OK responses across requests —
the tier above in-flight coalescing, which only deduplicates
*concurrent* identical requests.  Entries are keyed on ``(method,
db_id, normalized_question, data_version)``:

* the question is canonicalized with
  :func:`repro.utils.text.normalize_question` (whitespace/case only by
  default; the opt-in ``semantic`` mode also folds paraphrase
  equivalence classes, trading a measurable correctness risk for
  cross-paraphrase hits);
* the database's ``data_version`` is part of the key, so a content
  mutation structurally orphans every cached record for that database —
  a stale entry can never match a post-mutation lookup.
  :meth:`invalidate` (wired to ``Database.add_mutation_listener`` by the
  engine) additionally purges the orphaned entries eagerly and counts
  them.

Storage is a :class:`repro.utils.cache.TTLCache`: bounded LRU with an
optional time-to-live measured on a pluggable clock
(:class:`repro.utils.cache.LogicalClock` makes TTL expiry deterministic
in tests).  Cached records are the exact offline
:class:`~repro.core.metrics.EvaluationRecord` objects, so cache hits are
bit-identical to fresh evaluations.

Thread/process safety: every method is safe from any thread (one cache
lock plus the TTL store's own lock); instances do not cross process
boundaries.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Hashable

from repro.core.metrics import EvaluationRecord
from repro.utils.cache import TTLCache
from repro.utils.text import normalize_question

#: Default bound on cached responses per engine.
DEFAULT_RESPONSE_CACHE_SIZE = 4096


class ResponseCache:
    """Bounded TTL+LRU memo of served records, invalidated by data_version."""

    def __init__(
        self,
        maxsize: int = DEFAULT_RESPONSE_CACHE_SIZE,
        ttl_s: float | None = None,
        semantic: bool = False,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.semantic = bool(semantic)
        self.ttl_s = ttl_s
        self._cache = TTLCache(maxsize=maxsize, ttl=ttl_s, clock=clock)
        self._lock = threading.Lock()
        self._invalidations = 0
        self._stores = 0

    def key(
        self, method: str, db_id: str, question: str, data_version: int
    ) -> tuple[str, str, str, int]:
        """The cache identity of one request against one database state."""
        return (
            method,
            db_id,
            normalize_question(question, semantic=self.semantic),
            int(data_version),
        )

    def lookup(
        self, method: str, db_id: str, question: str, data_version: int
    ) -> EvaluationRecord | None:
        """Return the cached record, or ``None`` on a miss/expiry."""
        hit, value = self._cache.lookup(self.key(method, db_id, question, data_version))
        return value if hit else None

    def store(
        self,
        method: str,
        db_id: str,
        question: str,
        data_version: int,
        record: EvaluationRecord,
    ) -> None:
        """Memoize one freshly-computed record under the current version."""
        self._cache.put(self.key(method, db_id, question, data_version), record)
        with self._lock:
            self._stores += 1

    def invalidate(self, db_id: str, current_version: int) -> int:
        """Purge entries for ``db_id`` older than ``current_version``.

        Version-keyed lookups already structurally miss stale entries;
        this eagerly reclaims their memory and feeds the deterministic
        ``invalidations`` counter the benchmark gates on.  Returns the
        number of purged entries.
        """

        def stale(key: Hashable) -> bool:
            return key[1] == db_id and key[3] < current_version  # type: ignore[index]

        removed = self._cache.purge(stale)
        with self._lock:
            self._invalidations += removed
        return removed

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def stats(self) -> dict[str, int]:
        """Deterministic counters: hits/misses/expirations/evictions/…"""
        stats = self._cache.stats()
        with self._lock:
            stats["invalidations"] = self._invalidations
            stats["stores"] = self._stores
        return stats
