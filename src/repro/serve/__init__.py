"""repro.serve: online NL2SQL serving over the offline evaluation pipeline.

:mod:`repro.serve.engine` is the request scheduler (micro-batching,
in-flight coalescing, admission control, deadlines, warm start);
:mod:`repro.serve.scheduler` opens one decode window per micro-batch so
member requests' decoder draws run through the model's batched
``generate_many`` path (bit-identical candidates, hoisted per-question
work); :mod:`repro.serve.cache` is the cross-request response cache tier
(TTL+LRU, ``data_version``-invalidated); :mod:`repro.serve.workload`
generates seeded Zipf-skewed request streams; :mod:`repro.serve.bench`
is the load-generator benchmark behind ``python -m repro serve-bench``
and ``BENCH_serve.json``; :mod:`repro.serve.gateway` shards databases
across spawn-context worker processes behind an async HTTP gateway
(``/query`` / ``/healthz`` / ``/metrics``).  See docs/SERVING.md for
the architecture and knob reference.

Served responses are bit-identical to offline
:class:`~repro.core.evaluator.Evaluator` records under any concurrency,
batching, or coalescing schedule.
"""

from repro.serve.cache import DEFAULT_RESPONSE_CACHE_SIZE, ResponseCache
from repro.serve.engine import (
    ServeConfig,
    ServeFuture,
    ServeRequest,
    ServeResponse,
    ServeSpan,
    ServeStats,
    ServeStatus,
    ServingEngine,
    ingest_serve_cache,
    ingest_serve_span,
    question_index,
)
from repro.serve.gateway import (
    GatewayHTTPClient,
    GatewayHTTPServer,
    GatewayStats,
    HashRing,
    ShardedGateway,
)
from repro.serve.scheduler import DecodeScheduler, DecodeWindowStats
from repro.serve.workload import WorkloadSpec, build_workload

__all__ = [
    "DecodeScheduler",
    "DecodeWindowStats",
    "HashRing",
    "ShardedGateway",
    "GatewayStats",
    "GatewayHTTPServer",
    "GatewayHTTPClient",
    "DEFAULT_RESPONSE_CACHE_SIZE",
    "ResponseCache",
    "ServeConfig",
    "ServeFuture",
    "ServeRequest",
    "ServeResponse",
    "ServeSpan",
    "ServeStats",
    "ServeStatus",
    "ServingEngine",
    "ingest_serve_cache",
    "ingest_serve_span",
    "question_index",
    "WorkloadSpec",
    "build_workload",
]
