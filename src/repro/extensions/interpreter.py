"""SQL and query-result interpretation (paper §6).

``explain_sql`` walks a parsed query and produces a clause-by-clause
English explanation; ``explain_results`` summarizes an execution result.
Together they implement the "interpret the query results back to the NL
query" opportunity: a user can read what the generated SQL actually does
before trusting it.
"""

from __future__ import annotations

from repro.dbengine.executor import ExecutionResult
from repro.sqlkit.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    NotExpr,
    SelectStatement,
    Star,
    Subquery,
)
from repro.sqlkit.parser import parse_select
from repro.sqlkit.printer import render_expr
from repro.utils.text import normalize_identifier

_OP_WORDS = {
    "=": "equals",
    "!=": "is not",
    ">": "is greater than",
    "<": "is less than",
    ">=": "is at least",
    "<=": "is at most",
}

_AGG_WORDS = {
    "count": "the number of",
    "sum": "the total",
    "avg": "the average",
    "min": "the smallest",
    "max": "the largest",
}


def _phrase(expr: Expr) -> str:
    if isinstance(expr, Star):
        return "all columns"
    if isinstance(expr, ColumnRef):
        return normalize_identifier(expr.column)
    if isinstance(expr, Literal):
        return repr(expr.value) if isinstance(expr.value, str) else str(expr.value)
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        inner = _phrase(expr.args[0]) if expr.args else "rows"
        if expr.name == "count" and expr.args and isinstance(expr.args[0], Star):
            inner = "rows"
        distinct = "distinct " if expr.distinct else ""
        return f"{_AGG_WORDS[expr.name]} {distinct}{inner}"
    return render_expr(expr)


def _condition_phrase(expr: Expr) -> str:
    if isinstance(expr, BooleanOp):
        joiner = f" {expr.op} "
        return joiner.join(_condition_phrase(op) for op in expr.operands)
    if isinstance(expr, NotExpr):
        return f"not ({_condition_phrase(expr.operand)})"
    if isinstance(expr, BinaryOp) and expr.op in _OP_WORDS:
        if isinstance(expr.right, Subquery):
            return (
                f"{_phrase(expr.left)} {_OP_WORDS[expr.op]} the result of "
                f"a subquery ({_subquery_phrase(expr.right.select)})"
            )
        return f"{_phrase(expr.left)} {_OP_WORDS[expr.op]} {_phrase(expr.right)}"
    if isinstance(expr, LikeExpr):
        negation = "does not match" if expr.negated else "matches"
        return f"{_phrase(expr.operand)} {negation} the pattern {_phrase(expr.pattern)}"
    if isinstance(expr, BetweenExpr):
        negation = "is not" if expr.negated else "is"
        return (
            f"{_phrase(expr.operand)} {negation} between {_phrase(expr.low)} "
            f"and {_phrase(expr.high)}"
        )
    if isinstance(expr, IsNullExpr):
        return f"{_phrase(expr.operand)} is {'not ' if expr.negated else ''}missing"
    if isinstance(expr, InExpr):
        negation = "is not" if expr.negated else "is"
        if expr.subquery is not None:
            return (
                f"{_phrase(expr.operand)} {negation} among the results of "
                f"a subquery ({_subquery_phrase(expr.subquery.select)})"
            )
        values = ", ".join(_phrase(v) for v in expr.values)
        return f"{_phrase(expr.operand)} {negation} one of: {values}"
    if isinstance(expr, Exists):
        negation = "no" if expr.negated else "at least one"
        return f"there exists {negation} matching row in ({_subquery_phrase(expr.subquery.select)})"
    return render_expr(expr)


def _subquery_phrase(statement: SelectStatement) -> str:
    target = ", ".join(_phrase(item.expr) for item in statement.select_items)
    table = statement.from_clause.base.name if statement.from_clause else "nothing"
    phrase = f"{target} from {normalize_identifier(table)}"
    if statement.where is not None:
        phrase += f" where {_condition_phrase(statement.where)}"
    return phrase


def explain_sql(sql: str | SelectStatement) -> list[str]:
    """Explain a query clause by clause; returns one sentence per clause."""
    statement = sql if isinstance(sql, SelectStatement) else parse_select(sql)
    lines: list[str] = []

    targets = ", ".join(_phrase(item.expr) for item in statement.select_items)
    distinct = "distinct " if statement.distinct else ""
    if statement.from_clause is not None:
        tables = [normalize_identifier(t.name) for t in statement.from_clause.tables]
        if len(tables) == 1:
            lines.append(f"Report the {distinct}{targets} from {tables[0]}.")
        else:
            joined = ", ".join(tables)
            lines.append(
                f"Combine {joined} through their key relationships and report "
                f"the {distinct}{targets}."
            )
    else:
        lines.append(f"Compute {targets}.")

    if statement.where is not None:
        lines.append(f"Keep only rows where {_condition_phrase(statement.where)}.")
    if statement.group_by:
        keys = ", ".join(_phrase(expr) for expr in statement.group_by)
        lines.append(f"Group the rows by {keys}.")
    if statement.having is not None:
        lines.append(f"Keep only groups where {_condition_phrase(statement.having)}.")
    if statement.order_by:
        parts = [
            f"{_phrase(item.expr)} ({'descending' if item.direction == 'desc' else 'ascending'})"
            for item in statement.order_by
        ]
        lines.append(f"Sort the answer by {', '.join(parts)}.")
    if statement.limit is not None:
        lines.append(f"Return only the first {statement.limit} row(s).")
    if statement.set_operation is not None:
        op_word = {
            "union": "combined with", "union all": "concatenated with",
            "intersect": "intersected with", "except": "minus",
        }[statement.set_operation.op]
        lines.append(
            f"The result is {op_word} another query: "
            f"{_subquery_phrase(statement.set_operation.right)}."
        )
    return lines


def explain_results(result: ExecutionResult, max_preview: int = 3) -> str:
    """One-line interpretation of an execution result."""
    if not result.ok:
        return f"The query failed to execute: {result.error}"
    if not result.rows:
        return "The query executed but returned no rows."
    preview = ", ".join(str(row) for row in result.rows[:max_preview])
    suffix = "" if len(result.rows) <= max_preview else ", ..."
    return f"The query returned {len(result.rows)} row(s): {preview}{suffix}"
