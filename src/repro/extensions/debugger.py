"""NL2SQL Debugger: diagnose question/SQL mismatches (paper §6).

Given a question, a predicted SQL query, and the database, produce a
structured diagnosis:

1. **syntax** — does the SQL parse?
2. **schema** — does it reference only real tables/columns (PICARD gate)?
3. **execution** — does it run, and does it return anything?
4. **intent alignment** — parse the question with the reference NLU and
   compare structural features (aggregation, grouping, ordering, joins,
   nesting) between what the question asks and what the SQL does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.intents import Aggregate, QueryIntent
from repro.dbengine.database import Database
from repro.dbengine.executor import execute_sql
from repro.errors import ReproError
from repro.nlu.intent_parser import IntentParser, NLUParseError
from repro.sqlkit.features import extract_features
from repro.sqlkit.picard import PicardChecker


@dataclass(frozen=True)
class Diagnosis:
    """Structured outcome of one debugging pass."""

    question: str
    sql: str
    parses: bool
    schema_issues: tuple[str, ...] = field(default_factory=tuple)
    executes: bool = False
    returns_rows: bool = False
    execution_error: str | None = None
    alignment_issues: tuple[str, ...] = field(default_factory=tuple)
    intent_parsed: bool = False

    @property
    def ok(self) -> bool:
        return (
            self.parses
            and not self.schema_issues
            and self.executes
            and not self.alignment_issues
        )

    def summary(self) -> str:
        if self.ok:
            return "no issues detected"
        issues: list[str] = []
        if not self.parses:
            issues.append("SQL does not parse")
        issues.extend(self.schema_issues)
        if self.parses and not self.executes:
            issues.append(f"execution failed: {self.execution_error}")
        issues.extend(self.alignment_issues)
        return "; ".join(issues)


def _intent_expectations(intent: QueryIntent) -> dict[str, bool]:
    return {
        "aggregation": intent.aggregate != Aggregate.NONE,
        "grouping": intent.group_by is not None,
        "ordering": intent.order is not None,
        "join": intent.has_join,
        "nesting": intent.has_subquery,
    }


def _sql_observations(sql: str) -> dict[str, bool] | None:
    try:
        features = extract_features(sql)
    except ReproError:
        return None
    return {
        "aggregation": features.num_aggregates > 0,
        "grouping": features.has_group_by,
        "ordering": features.has_order_by,
        "join": features.has_join,
        "nesting": features.has_subquery,
    }


def diagnose(question: str, sql: str, database: Database) -> Diagnosis:
    """Run the full diagnostic battery for one (question, SQL) pair."""
    checker = PicardChecker(database.schema)
    violations = checker.violations(sql)
    parses = not any(v.startswith(("parse error", "tokenize error")) for v in violations)
    schema_issues = tuple(
        v for v in violations if not v.startswith(("parse error", "tokenize error"))
    )

    executes = False
    returns_rows = False
    execution_error: str | None = None
    if parses:
        result = execute_sql(database, sql)
        executes = result.ok
        returns_rows = bool(result.rows)
        execution_error = result.error

    alignment: list[str] = []
    intent_parsed = False
    observations = _sql_observations(sql) if parses else None
    try:
        intent = IntentParser(database.schema).parse(question)
        intent_parsed = True
    except (NLUParseError, ReproError):
        intent = None
    if intent is not None and observations is not None:
        expectations = _intent_expectations(intent)
        for aspect, expected in expectations.items():
            observed = observations[aspect]
            if expected and not observed:
                alignment.append(f"question asks for {aspect} but the SQL has none")
            elif observed and not expected and aspect in ("grouping", "nesting"):
                alignment.append(f"SQL introduces {aspect} the question did not ask for")

    return Diagnosis(
        question=question,
        sql=sql,
        parses=parses,
        schema_issues=schema_issues,
        executes=executes,
        returns_rows=returns_rows,
        execution_error=execution_error,
        alignment_issues=tuple(alignment),
        intent_parsed=intent_parsed,
    )
