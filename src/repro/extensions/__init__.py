"""Extensions implementing the paper's §6 research opportunities.

* :mod:`query_rewriter` — clarify ambiguous/underspecified NL queries.
* :mod:`debugger` — diagnose mismatches between a question and a
  predicted SQL query (the "NL2SQL Debugger").
* :mod:`interpreter` — explain a SQL query back in natural language
  ("SQL and Query Results Interpretation").
* :mod:`augmentation` — adaptive training-data generation driven by
  evaluation feedback.
"""

from repro.extensions.query_rewriter import RewriteResult, rewrite_question
from repro.extensions.debugger import Diagnosis, diagnose
from repro.extensions.interpreter import explain_sql, explain_results
from repro.extensions.augmentation import AugmentationPlan, plan_augmentation, generate_examples

__all__ = [
    "RewriteResult",
    "rewrite_question",
    "Diagnosis",
    "diagnose",
    "explain_sql",
    "explain_results",
    "AugmentationPlan",
    "plan_augmentation",
    "generate_examples",
]
