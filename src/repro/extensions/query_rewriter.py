"""Query Rewriter: clarify NL questions before translation (paper §6).

The paper proposes automatically refining user queries to remove
ambiguity.  This implementation canonicalizes phrasing through the full
lexicon, flags the ambiguities it can detect against the schema
(column phrases matching multiple tables equally well, unresolved rare
phrasings), and reports how confident a downstream parser should be.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlu.lexicon import Lexicon
from repro.nlu.linker import SchemaLinker
from repro.schema.model import DatabaseSchema
from repro.utils.text import tokenize_words


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of rewriting one question."""

    original: str
    rewritten: str
    changed: bool
    ambiguities: tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_ambiguous(self) -> bool:
        return bool(self.ambiguities)


def _ambiguous_column_phrases(
    question: str, schema: DatabaseSchema, margin: float = 0.06
) -> list[str]:
    """Noun phrases that link to two different tables nearly equally well."""
    linker = SchemaLinker(schema)
    tokens = tokenize_words(question)
    flagged: list[str] = []
    # Examine 1- and 2-token windows as candidate column phrases.
    windows = set(tokens) | {
        f"{a} {b}" for a, b in zip(tokens, tokens[1:])
    }
    for phrase in sorted(windows):
        ranked = linker.rank_columns(phrase)
        if len(ranked) < 2:
            continue
        top, runner = ranked[0], ranked[1]
        if top.score < 0.75:
            continue
        same_column_name = top.column.name.lower() == runner.column.name.lower()
        different_table = top.table.name.lower() != runner.table.name.lower()
        if same_column_name and different_table and top.score - runner.score < margin:
            flagged.append(
                f"phrase {phrase!r} matches both {top.table.name}.{top.column.name} "
                f"and {runner.table.name}.{runner.column.name}"
            )
    return flagged


def rewrite_question(
    question: str,
    schema: DatabaseSchema,
    lexicon: Lexicon | None = None,
) -> RewriteResult:
    """Rewrite ``question`` into canonical phrasing and flag ambiguities."""
    lexicon = lexicon or Lexicon.full()
    normalized = lexicon.normalize(question)
    # Restore sentence case for presentation.
    rewritten = normalized[0].upper() + normalized[1:] if normalized else normalized
    ambiguities = _ambiguous_column_phrases(question, schema)
    unresolved = Lexicon.with_coverage(set()).unresolved_hard_phrases(normalized)
    for phrase in unresolved:
        if phrase in normalized:
            ambiguities.append(f"rare phrasing {phrase!r} kept after rewriting")
    return RewriteResult(
        original=question,
        rewritten=rewritten,
        changed=rewritten.lower() != question.strip().lower(),
        ambiguities=tuple(ambiguities),
    )
