"""Adaptive training-data generation (paper §6).

"The key idea is that we dynamically synthesize (NL, SQL) pairs ...
utilizing insights gained from NL2SQL performance evaluations."

:func:`plan_augmentation` inspects a method's evaluation records and
identifies where it is weak — which SQL shapes and which domains — and
:func:`generate_examples` synthesizes new training pairs concentrated on
exactly those weaknesses, using the same intent grammar as the benchmark
builder (with fresh RNG streams, so new pairs never duplicate benchmark
examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import MethodReport
from repro.datagen.benchmark import Dataset, Example
from repro.datagen.intent_gen import IntentSampler
from repro.datagen.intents import IntentShape
from repro.datagen.nl_render import render_intent_nl
from repro.datagen.sql_render import render_intent_sql
from repro.dbengine.executor import execute_sql
from repro.errors import DataGenerationError
from repro.sqlkit.hardness import classify_bird_difficulty, classify_hardness
from repro.utils.rng import derive_rng

# Feature flags -> the intent shapes that exercise them.
_SHAPES_FOR_WEAKNESS = {
    "subquery": (IntentShape.SUBQUERY_CMP_AGG, IntentShape.SUBQUERY_IN,
                 IntentShape.SUBQUERY_NOT_IN, IntentShape.EXTREME),
    "join": (IntentShape.JOIN_PROJECT, IntentShape.JOIN_GROUP),
    "logical_connector": (IntentShape.PROJECT, IntentShape.SET_OP),
    "order_by": (IntentShape.ORDER_TOP,),
    "general": tuple(IntentShape),
}


@dataclass(frozen=True)
class AugmentationPlan:
    """Where to focus new training data."""

    weaknesses: tuple[str, ...]              # ordered, worst first
    weak_domains: tuple[str, ...]            # domains below average EX
    per_weakness_accuracy: dict[str, float] = field(default_factory=dict)

    @property
    def target_shapes(self) -> tuple[IntentShape, ...]:
        shapes: list[IntentShape] = []
        for weakness in self.weaknesses or ("general",):
            for shape in _SHAPES_FOR_WEAKNESS.get(weakness, ()):
                if shape not in shapes:
                    shapes.append(shape)
        return tuple(shapes or _SHAPES_FOR_WEAKNESS["general"])


def plan_augmentation(
    report: MethodReport, weakness_margin: float = 5.0
) -> AugmentationPlan:
    """Identify the method's weak characteristics and domains."""
    overall = report.ex
    accuracy: dict[str, float] = {}
    for name, flag in (
        ("subquery", "has_subquery"),
        ("join", "has_join"),
        ("logical_connector", "has_logical_connector"),
        ("order_by", "has_order_by"),
    ):
        subset = report.subset(lambda r, f=flag: getattr(r, f))
        if len(subset) >= 3:
            accuracy[name] = subset.ex
    weaknesses = sorted(
        (name for name, ex in accuracy.items() if ex < overall - weakness_margin),
        key=lambda name: accuracy[name],
    )
    domains = sorted({r.domain for r in report.records})
    weak_domains = tuple(
        domain
        for domain in domains
        if len(report.by_domain(domain)) >= 3
        and report.by_domain(domain).ex < overall - weakness_margin
    )
    return AugmentationPlan(
        weaknesses=tuple(weaknesses),
        weak_domains=weak_domains,
        per_weakness_accuracy=accuracy,
    )


def generate_examples(
    plan: AugmentationPlan,
    dataset: Dataset,
    count: int,
    seed: int = 1_000_003,
) -> list[Example]:
    """Synthesize ``count`` new training pairs targeting the plan.

    Uses training-split databases (preferring the plan's weak domains) so
    the new pairs are valid fine-tuning data for the same benchmark.
    """
    train_dbs = sorted({e.db_id for e in dataset.train_examples})
    if not train_dbs:
        train_dbs = sorted(dataset.databases)
    preferred = [
        db_id for db_id in train_dbs
        if dataset.databases[db_id].schema.domain in plan.weak_domains
    ] or train_dbs

    rng = derive_rng(seed, "augment")
    shapes = plan.target_shapes
    examples: list[Example] = []
    attempts = 0
    while len(examples) < count and attempts < count * 15:
        attempts += 1
        db_id = preferred[rng.randrange(len(preferred))]
        database = dataset.databases[db_id]
        sampler = IntentSampler(database, rng)
        shape = shapes[rng.randrange(len(shapes))]
        try:
            intent = sampler.sample(shape)
            gold_sql = render_intent_sql(intent, database.schema)
            question = render_intent_nl(intent, database.schema)
        except DataGenerationError:
            continue
        if not execute_sql(database, gold_sql).ok:
            continue
        index = len(examples)
        examples.append(Example(
            example_id=f"augment-{index}",
            db_id=db_id,
            domain=database.schema.domain,
            question=question,
            gold_sql=gold_sql,
            hardness=classify_hardness(gold_sql),
            bird_difficulty=classify_bird_difficulty(gold_sql),
            split="train",
            variant_group=f"augment-{index}",
            intent=intent,
        ))
    return examples
