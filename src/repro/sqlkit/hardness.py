"""SQL hardness classification.

Implements the Spider benchmark's official four-level hardness rules
(easy / medium / hard / extra) by counting clause components exactly the
way Spider's ``eval_hardness`` does, plus a BIRD-style three-level
difficulty (simple / moderate / challenging) heuristic used for the
BIRD-like synthetic benchmark.
"""

from __future__ import annotations

from enum import Enum

from repro.sqlkit.ast_nodes import BooleanOp, SelectStatement
from repro.sqlkit.features import SQLFeatures, extract_features
from repro.sqlkit.parser import parse_select


class Hardness(str, Enum):
    """Spider's four difficulty levels."""

    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"
    EXTRA = "extra"

    @property
    def rank(self) -> int:
        return ("easy", "medium", "hard", "extra").index(self.value)


class BirdDifficulty(str, Enum):
    """BIRD's three difficulty levels."""

    SIMPLE = "simple"
    MODERATE = "moderate"
    CHALLENGING = "challenging"

    @property
    def rank(self) -> int:
        return ("simple", "moderate", "challenging").index(self.value)


def _count_or(statement: SelectStatement) -> int:
    count = 0
    for clause in (statement.where, statement.having):
        if clause is None:
            continue
        stack = [clause]
        while stack:
            node = stack.pop()
            if isinstance(node, BooleanOp):
                if node.op == "or":
                    count += len(node.operands) - 1
                stack.extend(node.operands)
    return count


def count_component1(statement: SelectStatement, features: SQLFeatures) -> int:
    """Spider component-1 count: WHERE, GROUP BY, ORDER BY, LIMIT, JOIN, OR, LIKE."""
    count = 0
    if statement.where is not None:
        count += 1
    if statement.group_by:
        count += 1
    if statement.order_by:
        count += 1
    if statement.limit is not None:
        count += 1
    if statement.from_clause is not None:
        count += len(statement.from_clause.joins)
    count += _count_or(statement)
    count += sum(1 for __ in _iter_likes(statement))
    return count


def _iter_likes(statement: SelectStatement):
    for expr in statement.iter_expressions():
        if type(expr).__name__ == "LikeExpr":
            yield expr


def count_component2(statement: SelectStatement) -> int:
    """Spider component-2 count: nesting via subqueries or set operations."""
    return len(statement.subqueries())


def count_others(statement: SelectStatement) -> int:
    """Spider "others" count: >1 aggregate, >1 select column, >1 where condition, >1 group-by key."""
    features = extract_features(statement)
    count = 0
    aggregates_in_root = sum(
        1
        for expr in statement.iter_expressions()
        if type(expr).__name__ == "FuncCall" and getattr(expr, "is_aggregate", False)
    )
    if aggregates_in_root > 1:
        count += 1
    if len(statement.select_items) > 1:
        count += 1
    if features.num_where_conditions > 1:
        count += 1
    if len(statement.group_by) > 1:
        count += 1
    return count


def classify_hardness(sql: str | SelectStatement) -> Hardness:
    """Classify a query with Spider's official hardness rules."""
    statement = sql if isinstance(sql, SelectStatement) else parse_select(sql)
    features = extract_features(statement)
    comp1 = count_component1(statement, features)
    comp2 = count_component2(statement)
    others = count_others(statement)

    if comp1 <= 1 and others == 0 and comp2 == 0:
        return Hardness.EASY
    if (others <= 2 and comp1 <= 1 and comp2 == 0) or (
        comp1 <= 2 and others < 2 and comp2 == 0
    ):
        return Hardness.MEDIUM
    if (
        (others > 2 and comp1 <= 2 and comp2 == 0)
        or (2 < comp1 <= 3 and others <= 2 and comp2 == 0)
        or (comp1 <= 1 and others == 0 and comp2 <= 1)
    ):
        return Hardness.HARD
    return Hardness.EXTRA


def classify_bird_difficulty(sql: str | SelectStatement) -> BirdDifficulty:
    """Heuristic BIRD difficulty from structural complexity.

    BIRD's labels are human annotations; we approximate them with a
    weighted component score so that the synthetic BIRD-like benchmark
    gets a comparable simple/moderate/challenging split.
    """
    statement = sql if isinstance(sql, SelectStatement) else parse_select(sql)
    features = extract_features(statement)
    score = (
        2.0 * features.num_subqueries
        + 1.2 * features.num_joins
        + 0.8 * features.num_logical_connectors
        + 0.8 * max(features.num_aggregates - 1, 0)
        + 0.6 * int(features.has_group_by)
        + 0.5 * int(features.has_order_by)
        + 0.8 * int("case" in features.keywords)
        + 0.5 * int(features.has_having)
    )
    if score < 1.4:
        return BirdDifficulty.SIMPLE
    if score < 2.8:
        return BirdDifficulty.MODERATE
    return BirdDifficulty.CHALLENGING
