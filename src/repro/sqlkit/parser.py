"""Recursive-descent parser for the Spider/BIRD SQL subset.

The grammar (roughly)::

    query      := select (setop select)*
    select     := SELECT [DISTINCT] items [FROM from] [WHERE expr]
                  [GROUP BY exprs] [HAVING expr] [ORDER BY orders] [LIMIT n]
    from       := table_ref (join_kw table_ref [ON expr])*
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := [NOT] predicate
    predicate  := additive [comparison | LIKE | IN | BETWEEN | IS NULL]
    additive   := multiplicative (('+'|'-'|'||') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    primary    := literal | func(...) | column | (query) | (expr) | CASE ...
"""

from __future__ import annotations

from repro.errors import SQLParseError
from repro.sqlkit.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    BooleanOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expr,
    FromClause,
    FuncCall,
    InExpr,
    IsNullExpr,
    Join,
    LikeExpr,
    Literal,
    NotExpr,
    OrderItem,
    SelectItem,
    SelectStatement,
    SetOperation,
    Star,
    Subquery,
    TableRef,
)
from repro.sqlkit.tokenizer import FUNCTIONS, Token, TokenType, tokenize, unquote

_JOIN_TYPES = {"join", "inner", "left", "right", "full", "cross", "outer"}
_SET_OPS = {"union", "intersect", "except"}


class _Parser:
    """Token-stream cursor with the parsing methods."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.token_type != TokenType.EOF:
            self._pos += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise SQLParseError(f"expected {word.upper()!r}, found {self.current.value!r}")
        return self.advance()

    def expect_punct(self, symbol: str) -> Token:
        token = self.current
        if token.token_type != TokenType.PUNCTUATION or token.value != symbol:
            raise SQLParseError(f"expected {symbol!r}, found {token.value!r}")
        return self.advance()

    def accept_keyword(self, *words: str) -> Token | None:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def accept_punct(self, symbol: str) -> bool:
        token = self.current
        if token.token_type == TokenType.PUNCTUATION and token.value == symbol:
            self.advance()
            return True
        return False

    # -- grammar --------------------------------------------------------

    def parse_query(self) -> SelectStatement:
        statement = self.parse_select_core()
        current = statement
        while self.current.is_keyword(*_SET_OPS):
            op_token = self.advance()
            op = op_token.lowered
            if op == "union" and self.accept_keyword("all"):
                op = "union all"
            right = self.parse_select_core()
            current.set_operation = SetOperation(op=op, right=right)
            current = right
        return statement

    def parse_select_core(self) -> SelectStatement:
        self.expect_keyword("select")
        statement = SelectStatement()
        statement.distinct = self.accept_keyword("distinct") is not None
        statement.select_items = self._parse_select_items()
        if self.accept_keyword("from"):
            statement.from_clause = self._parse_from()
        if self.accept_keyword("where"):
            statement.where = self.parse_expr()
        if self.current.is_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            statement.group_by = self._parse_expr_list()
        if self.accept_keyword("having"):
            statement.having = self.parse_expr()
        if self.current.is_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            statement.order_by = self._parse_order_items()
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.token_type != TokenType.NUMBER:
                raise SQLParseError(f"expected LIMIT count, found {token.value!r}")
            statement.limit = int(float(token.value))
            if self.accept_keyword("offset"):
                self.advance()  # offset value parsed but not modeled
        return statement

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias: str | None = None
        if self.accept_keyword("as"):
            alias_token = self.advance()
            alias = alias_token.value
        elif self.current.token_type == TokenType.IDENTIFIER and not self._starts_clause():
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def _starts_clause(self) -> bool:
        return self.current.is_keyword(
            "from", "where", "group", "having", "order", "limit",
            "union", "intersect", "except", "on", "and", "or",
        )

    def _parse_from(self) -> FromClause:
        base = self._parse_table_ref()
        from_clause = FromClause(base=base)
        while True:
            join_type = self._parse_join_keywords()
            if join_type is None:
                if self.accept_punct(","):
                    join_type = "join"  # comma join treated as inner join
                else:
                    break
            table = self._parse_table_ref()
            condition: Expr | None = None
            if self.accept_keyword("on"):
                condition = self.parse_expr()
            from_clause.joins.append(Join(table=table, condition=condition, join_type=join_type))
        return from_clause

    def _parse_join_keywords(self) -> str | None:
        if not self.current.is_keyword(*_JOIN_TYPES):
            return None
        words = []
        while self.current.is_keyword(*_JOIN_TYPES):
            words.append(self.advance().lowered)
        if words[-1] != "join":
            raise SQLParseError(f"malformed join keywords: {' '.join(words)}")
        return " ".join(words)

    def _parse_table_ref(self) -> TableRef:
        token = self.advance()
        if token.token_type not in (TokenType.IDENTIFIER, TokenType.STRING):
            raise SQLParseError(f"expected table name, found {token.value!r}")
        # Quoted identifiers arrive pre-unquoted; legacy single-quoted
        # table names still need their literal quotes stripped.
        name = token.value if token.token_type == TokenType.IDENTIFIER else unquote(token.value)
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self.advance().value
        elif self.current.token_type == TokenType.IDENTIFIER and not self._starts_from_tail():
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def _starts_from_tail(self) -> bool:
        return self.current.is_keyword(
            "join", "inner", "left", "right", "full", "cross", "outer", "on",
            "where", "group", "having", "order", "limit",
            "union", "intersect", "except",
        )

    def _parse_expr_list(self) -> list[Expr]:
        exprs = [self.parse_expr()]
        while self.accept_punct(","):
            exprs.append(self.parse_expr())
        return exprs

    def _parse_order_items(self) -> list[OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            direction = "asc"
            if self.current.is_keyword("asc", "desc"):
                direction = self.advance().lowered
            items.append(OrderItem(expr=expr, direction=direction))
            if not self.accept_punct(","):
                break
        return items

    # -- expressions ----------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        operands = [self._parse_and()]
        while self.accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp(op="or", operands=operands)

    def _parse_and(self) -> Expr:
        operands = [self._parse_not()]
        while self.accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp(op="and", operands=operands)

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return NotExpr(operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        if self.current.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            subquery = Subquery(select=self.parse_query())
            self.expect_punct(")")
            return Exists(subquery=subquery)
        left = self._parse_additive()
        token = self.current
        if token.token_type == TokenType.OPERATOR and token.value in BinaryOp.COMPARISONS:
            self.advance()
            right = self._parse_additive()
            return BinaryOp(op="!=" if token.value == "<>" else token.value, left=left, right=right)
        negated = False
        if token.is_keyword("not"):
            lookahead = self.peek()
            if lookahead.is_keyword("like", "in", "between"):
                self.advance()
                negated = True
                token = self.current
        if token.is_keyword("like"):
            self.advance()
            pattern = self._parse_additive()
            escape: Expr | None = None
            if self.accept_keyword("escape"):
                escape = self._parse_additive()
            return LikeExpr(operand=left, pattern=pattern, negated=negated, escape=escape)
        if token.is_keyword("between"):
            self.advance()
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return BetweenExpr(operand=left, low=low, high=high, negated=negated)
        if token.is_keyword("in"):
            self.advance()
            self.expect_punct("(")
            if self.current.is_keyword("select"):
                subquery = Subquery(select=self.parse_query())
                self.expect_punct(")")
                return InExpr(operand=left, subquery=subquery, negated=negated)
            values = self._parse_expr_list()
            self.expect_punct(")")
            return InExpr(operand=left, values=values, negated=negated)
        if token.is_keyword("is"):
            self.advance()
            is_negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return IsNullExpr(operand=left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.current.token_type == TokenType.OPERATOR and self.current.value in ("+", "-", "||"):
            op = self.advance().value
            right = self._parse_multiplicative()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self.current.token_type == TokenType.OPERATOR and self.current.value in ("*", "/", "%"):
            # A bare '*' projection is never reached here: '*' only arrives
            # as an operator between two operands.
            op = self.advance().value
            right = self._parse_unary()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> Expr:
        if self.current.token_type == TokenType.OPERATOR and self.current.value == "-":
            self.advance()
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(value=-operand.value)
            return BinaryOp(op="-", left=Literal(value=0), right=operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.token_type == TokenType.NUMBER:
            self.advance()
            text = token.value
            return Literal(value=float(text) if "." in text else int(text))
        if token.token_type == TokenType.STRING:
            self.advance()
            return Literal(value=unquote(token.value))
        if token.is_keyword("null"):
            self.advance()
            return Literal(value=None)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_keyword("cast"):
            return self._parse_cast()
        if token.token_type == TokenType.PUNCTUATION and token.value == "(":
            self.advance()
            if self.current.is_keyword("select"):
                subquery = Subquery(select=self.parse_query())
                self.expect_punct(")")
                return subquery
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.token_type == TokenType.OPERATOR and token.value == "*":
            self.advance()
            return Star()
        if token.token_type == TokenType.IDENTIFIER:
            return self._parse_identifier_expr()
        raise SQLParseError(f"unexpected token {token.value!r} in expression")

    def _parse_case(self) -> Expr:
        self.expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            value = self.parse_expr()
            whens.append((condition, value))
        else_value: Expr | None = None
        if self.accept_keyword("else"):
            else_value = self.parse_expr()
        self.expect_keyword("end")
        if not whens:
            raise SQLParseError("CASE expression requires at least one WHEN branch")
        return CaseExpr(whens=whens, else_value=else_value)

    def _parse_cast(self) -> Expr:
        self.expect_keyword("cast")
        self.expect_punct("(")
        operand = self.parse_expr()
        self.expect_keyword("as")
        type_token = self.advance()
        self.expect_punct(")")
        return FuncCall(name="cast", args=[operand, Literal(value=type_token.value)])

    def _parse_identifier_expr(self) -> Expr:
        name_token = self.advance()
        name = name_token.value
        if (
            not name_token.quoted
            and self.current.token_type == TokenType.PUNCTUATION
            and self.current.value == "("
        ):
            return self._parse_func_call(name)
        if self.accept_punct("."):
            member = self.advance()
            if member.token_type == TokenType.OPERATOR and member.value == "*":
                return Star(table=name)
            if member.token_type not in (TokenType.IDENTIFIER, TokenType.STRING, TokenType.KEYWORD):
                raise SQLParseError(f"expected column after {name}., found {member.value!r}")
            column = member.value if member.token_type == TokenType.IDENTIFIER else unquote(member.value)
            return ColumnRef(column=column, table=name, quoted=member.quoted)
        return ColumnRef(column=name, quoted=name_token.quoted)

    def _parse_func_call(self, name: str) -> Expr:
        if name.lower() not in FUNCTIONS:
            raise SQLParseError(f"unknown function {name!r}")
        self.expect_punct("(")
        distinct = self.accept_keyword("distinct") is not None
        args: list[Expr] = []
        if not (self.current.token_type == TokenType.PUNCTUATION and self.current.value == ")"):
            args = self._parse_expr_list()
        self.expect_punct(")")
        return FuncCall(name=name.lower(), args=args, distinct=distinct)


def parse_select(sql: str) -> SelectStatement:
    """Parse ``sql`` into a :class:`SelectStatement`.

    Raises:
        SQLParseError: if the input is not a single valid SELECT query.
    """
    tokens = tokenize(sql)
    parser = _Parser(tokens)
    statement = parser.parse_query()
    parser.accept_punct(";")
    if parser.current.token_type != TokenType.EOF:
        raise SQLParseError(f"trailing tokens after query: {parser.current.value!r}")
    return statement


def parse_sql(sql: str) -> SelectStatement:
    """Alias of :func:`parse_select` (the dialect is SELECT-only)."""
    return parse_select(sql)
