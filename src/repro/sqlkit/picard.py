"""PICARD-style constrained decoding gate.

PICARD (Scholak et al., 2021) rejects, token by token, any decoder output
that cannot be completed into syntactically valid, schema-consistent SQL.
In this reproduction the gate operates at candidate granularity: the
decoding loop proposes complete candidate queries (beam entries or
samples) and :class:`PicardChecker` accepts only those that

1. tokenize and parse under the SQL grammar,
2. reference only tables present in the schema,
3. reference only columns that exist in the referenced tables, and
4. use aggregate functions with sane arity.

It also exposes :meth:`is_prefix_feasible` for incremental use, which
checks whether a token prefix can still be completed into a valid query.
"""

from __future__ import annotations

from repro.errors import SQLError, SQLParseError, SQLTokenizeError
from repro.schema.model import DatabaseSchema
from repro.sqlkit.ast_nodes import ColumnRef, FuncCall, SelectStatement, Star
from repro.sqlkit.parser import parse_select
from repro.sqlkit.tokenizer import tokenize

# Completions tried when deciding whether a prefix is still viable.  If a
# prefix concatenated with any of these parses, the prefix is feasible.
_PROBE_COMPLETIONS = (
    "",
    " *",
    " * FROM t",
    " FROM t",
    " t",
    " 1",
    " 1 FROM t",
    " = 1",
    " ON a.b = c.d",
    " BY x",
    ")",
    " 1)",
    " END",
)


def is_valid_sql(sql: str, schema: DatabaseSchema | None = None) -> bool:
    """Return True iff ``sql`` parses (and, if given, fits ``schema``)."""
    try:
        statement = parse_select(sql)
    except SQLError:
        return False
    if schema is None:
        return True
    return not schema_violations(statement, schema)


def schema_violations(statement: SelectStatement, schema: DatabaseSchema) -> list[str]:
    """Return human-readable schema-consistency violations (empty = valid)."""
    violations: list[str] = []
    for stmt in statement.all_statements():
        violations.extend(_statement_violations(stmt, schema))
    return violations


def _statement_violations(statement: SelectStatement, schema: DatabaseSchema) -> list[str]:
    violations: list[str] = []
    bindings: dict[str, str] = {}
    if statement.from_clause is not None:
        for table_ref in statement.from_clause.tables:
            if not schema.has_table(table_ref.name):
                violations.append(f"unknown table {table_ref.name!r}")
            else:
                bindings[table_ref.binding.lower()] = table_ref.name

    for expr in statement.iter_expressions():
        if isinstance(expr, ColumnRef):
            violations.extend(_column_violations(expr, bindings, schema))
        elif isinstance(expr, Star) and expr.table:
            if expr.table.lower() not in bindings and not schema.has_table(expr.table):
                violations.append(f"star over unknown table {expr.table!r}")
        elif isinstance(expr, FuncCall):
            if expr.is_aggregate and expr.name.lower() != "count" and len(expr.args) != 1:
                violations.append(f"aggregate {expr.name} expects 1 argument")
    return violations


def _column_violations(
    expr: ColumnRef, bindings: dict[str, str], schema: DatabaseSchema
) -> list[str]:
    if expr.table:
        table_name = bindings.get(expr.table.lower(), expr.table)
        if not schema.has_table(table_name):
            # Unqualified subquery correlation: the binding may come from an
            # outer scope; tolerate tables known to the schema only.
            return [f"column {expr.column!r} references unknown table {expr.table!r}"]
        if not schema.table(table_name).has_column(expr.column):
            return [f"table {table_name!r} has no column {expr.column!r}"]
        return []
    # Unqualified column: must exist in at least one bound table (or, if no
    # FROM bindings resolved, anywhere in the schema — subquery correlation).
    candidates = list(bindings.values()) or schema.table_names
    if any(
        schema.has_table(name) and schema.table(name).has_column(expr.column)
        for name in candidates
    ):
        return []
    return [f"column {expr.column!r} not found in referenced tables"]


class PicardChecker:
    """Schema-aware validity gate used by constrained decoding."""

    def __init__(self, schema: DatabaseSchema | None = None) -> None:
        self.schema = schema

    def accepts(self, sql: str) -> bool:
        """Full-candidate check: parseable and schema-consistent.

        Verdicts are memoized per (live schema object, sql) — every
        checker over the same schema shares one memo, and the verdict is
        a pure function of (sql, schema), so the memo never needs
        invalidation while the schema object lives.
        """
        from repro.utils.cache import caches_enabled, per_object_cache

        if self.schema is None or not caches_enabled():
            return is_valid_sql(sql, self.schema)
        cache = per_object_cache(self.schema, "picard_accepts", maxsize=2048)
        hit, verdict = cache.lookup(sql)
        if hit:
            from repro.obs.trace import get_tracer

            get_tracer().annotate_stage(memo_hits=1)
            return verdict
        verdict = is_valid_sql(sql, self.schema)
        cache.put(sql, verdict)
        return verdict

    def violations(self, sql: str) -> list[str]:
        """Return all problems with ``sql`` (parse errors or schema issues)."""
        try:
            statement = parse_select(sql)
        except SQLTokenizeError as exc:
            return [f"tokenize error: {exc}"]
        except SQLParseError as exc:
            return [f"parse error: {exc}"]
        if self.schema is None:
            return []
        return schema_violations(statement, self.schema)

    def is_prefix_feasible(self, prefix: str) -> bool:
        """Return True if ``prefix`` may still extend to a parseable query.

        Tries a battery of canned completions; any successful parse means
        the prefix is viable.  Schema checks are not applied to prefixes
        (identifiers may still be mid-token).
        """
        stripped = prefix.strip()
        if not stripped:
            return True
        try:
            tokenize(stripped)
        except SQLTokenizeError:
            return False
        for completion in _PROBE_COMPLETIONS:
            try:
                parse_select(stripped + completion)
                return True
            except SQLError:
                continue
        return False
