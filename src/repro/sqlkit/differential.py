"""Differential / metamorphic correctness harness for the SQL toolkit.

Every number the testbed reports — EX, EM, VES, the AAS fitness — flows
through ``sqlkit`` (tokenize/parse/print/exact-match) and
``dbengine.executor``, so a bug in the metrics layer silently distorts
every downstream conclusion.  This module adversarially verifies that
layer with three oracle families:

1. **Round-trip oracles** — ``parse -> to_sql -> parse`` must be
   idempotent, and ``normalize_sql(q)`` must be *execution-equivalent*
   to ``q`` on the live SQLite databases (this is the oracle that
   catches semantics-changing rewrites like lexing the quoted
   identifier ``"name"`` as the string literal ``'name'``).
2. **Metamorphic EM oracles** — ``exact_match`` must be reflexive and
   symmetric, *invariant* under semantics-preserving transforms (alias
   renaming, join-operand flips, ``a < b`` ↔ ``b > a`` comparison
   mirrors), and *variant* under semantics-changing ones (duplicate
   select items, clause deletion).
3. **Executor oracles** — ``results_match`` must be symmetric, stable
   under row reordering when order does not matter, and must never
   equate results that were silently truncated at the row cap.
4. **Cross-engine oracles** (opt-in via ``cross_backend``) — the same
   query over the same content must produce equivalent result sets on
   two execution backends (e.g. SQLite vs DuckDB); each primary
   database is mirrored onto the second engine with
   :func:`~repro.dbengine.database.clone_database` and every checked
   query runs on both.  Error *strings* may differ across engines (both
   failing counts as equivalent); a success/failure or row-set mismatch
   is a divergence, clause-minimized on the primary engine pair.

SQL flows from three sources: the gold queries of ``datagen``-built
benchmarks, corruption-mutated variants of their intents (the
``repro.llm.corruption`` error model, i.e. realistic *wrong* SQL), and a
seeded grammar generator that exercises quoting, ``LIKE .. ESCAPE``,
and operator corners the benchmarks rarely hit.  Runs are deterministic
for a given seed; every divergence is reported as a clause-minimized
repro case.

The optional ``hypothesis`` dev dependency can drive the same generator
as a shrinking strategy (:func:`sql_strategy`); the harness itself has
no hard dependency on it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dbengine.backends import backend_available
from repro.dbengine.database import Database, clone_database
from repro.dbengine.executor import ExecutionResult, execute_sql, results_match
from repro.errors import ReproError, SQLError
from repro.sqlkit.ast_nodes import (
    BinaryOp,
    ColumnRef,
    LikeExpr,
    Literal,
    SelectItem,
    SelectStatement,
    Star,
)
from repro.sqlkit.exact_match import exact_match
from repro.sqlkit.parser import parse_select
from repro.sqlkit.printer import to_sql
from repro.utils.rng import derive_rng

if TYPE_CHECKING:  # imported lazily at runtime: datagen itself imports sqlkit
    from repro.datagen.benchmark import Dataset, Example

FAMILY_ROUND_TRIP = "round-trip"
FAMILY_METAMORPHIC_EM = "metamorphic-em"
FAMILY_EXECUTOR = "executor"
FAMILY_CROSS_ENGINE = "cross-engine"

_MIRROR_COMPARISONS = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}


@dataclass(frozen=True)
class Divergence:
    """One confirmed oracle violation, with a minimized repro query."""

    family: str
    oracle: str
    sql: str
    counterpart: str = ""
    detail: str = ""
    db_id: str = ""

    def __str__(self) -> str:
        lines = [f"[{self.family}/{self.oracle}] {self.detail}", f"  sql: {self.sql}"]
        if self.counterpart:
            lines.append(f"  vs:  {self.counterpart}")
        if self.db_id:
            lines.append(f"  db:  {self.db_id}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one harness run."""

    seeds: int = 0
    checks: int = 0
    checks_by_family: dict[str, int] = field(default_factory=dict)
    skipped: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def count(self, family: str) -> None:
        self.checks += 1
        self.checks_by_family[family] = self.checks_by_family.get(family, 0) + 1

    def summary(self) -> str:
        families = ", ".join(
            f"{name}={count}" for name, count in sorted(self.checks_by_family.items())
        )
        verdict = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        return (
            f"fuzz-sqlkit: {verdict} — {self.checks} oracle checks over "
            f"{self.seeds} seeds ({families}; {self.skipped} skipped inputs)"
        )


# -- semantics-preserving / semantics-changing transforms --------------------


def rename_aliases(statement: SelectStatement) -> SelectStatement:
    """Deep-copied statement with every table bound to a fresh alias.

    Column qualifiers are rewritten consistently, with correlated
    subqueries inheriting (and shadowing) the outer scope — exactly the
    scoping ``exact_match`` must resolve.
    """
    renamed = copy.deepcopy(statement)
    counter = iter(range(1, 10_000))
    _rename_scope(renamed, {}, counter)
    return renamed


def _rename_scope(
    statement: SelectStatement, outer: dict[str, str], counter
) -> None:
    mapping = dict(outer)
    if statement.from_clause is not None:
        for table_ref in statement.from_clause.tables:
            old_binding = table_ref.binding.lower()
            table_ref.alias = f"FZ{next(counter)}"
            mapping[old_binding] = table_ref.alias
    for expr in statement.iter_expressions():
        if isinstance(expr, (ColumnRef, Star)) and expr.table:
            replacement = mapping.get(expr.table.lower())
            if replacement is not None:
                expr.table = replacement
    # Expression subqueries are correlated scopes; set-operation branches
    # are siblings and only see the scope this statement inherited.
    for expr in statement.iter_expressions():
        if hasattr(expr, "select"):
            _rename_scope(expr.select, mapping, counter)
    if statement.set_operation is not None:
        _rename_scope(statement.set_operation.right, outer, counter)


def flip_join_operands(statement: SelectStatement) -> SelectStatement:
    """Deep copy with every ``ON a = b`` rewritten to ``ON b = a``."""
    flipped = copy.deepcopy(statement)
    for stmt in flipped.all_statements():
        if stmt.from_clause is None:
            continue
        for join in stmt.from_clause.joins:
            condition = join.condition
            if isinstance(condition, BinaryOp) and condition.op == "=":
                condition.left, condition.right = condition.right, condition.left
    return flipped


def mirror_comparisons(statement: SelectStatement) -> SelectStatement:
    """Deep copy with every ``a < b`` rewritten to ``b > a`` (and <=/>=)."""
    mirrored = copy.deepcopy(statement)
    for stmt in mirrored.all_statements():
        for expr in stmt.iter_expressions():
            if isinstance(expr, BinaryOp) and expr.op in _MIRROR_COMPARISONS:
                expr.left, expr.right = expr.right, expr.left
                expr.op = _MIRROR_COMPARISONS[expr.op]
    return mirrored


def duplicate_select_item(statement: SelectStatement) -> SelectStatement:
    """Deep copy with the first projection item repeated (shape-changing)."""
    duplicated = copy.deepcopy(statement)
    duplicated.select_items.append(copy.deepcopy(duplicated.select_items[0]))
    return duplicated


def clause_deletions(statement: SelectStatement) -> list[tuple[str, SelectStatement]]:
    """Semantics-changing single-clause deletions of ``statement``."""
    variants: list[tuple[str, SelectStatement]] = []

    def variant(name: str) -> SelectStatement:
        clone = copy.deepcopy(statement)
        variants.append((name, clone))
        return clone

    if statement.where is not None:
        variant("drop-where").where = None
    if statement.order_by:
        variant("drop-order-by").order_by = []
    if statement.limit is not None:
        variant("drop-limit").limit = None
    if statement.having is not None:
        variant("drop-having").having = None
    if statement.group_by:
        clone = variant("drop-group-by")
        clone.group_by = []
        clone.having = None
    if statement.set_operation is not None:
        variant("drop-set-op").set_operation = None
    if len(statement.select_items) > 1:
        clone = variant("drop-select-item")
        clone.select_items = clone.select_items[:-1]
    return variants


# -- seeded grammar generator ------------------------------------------------


def generate_query(database: Database, rng) -> str:
    """One random, schema-valid SELECT over ``database``.

    Deliberately exercises the corners the benchmark generator rarely
    emits: quoted identifiers, ``LIKE .. ESCAPE``, mirrored comparisons,
    arithmetic, IN-lists, and BETWEEN.
    """
    schema = database.schema
    tables = list(schema.tables)
    table = tables[rng.randrange(len(tables))]

    def column_ref(column) -> str:
        if rng.random() < 0.2:
            return f'"{column.name}"'
        if rng.random() < 0.3:
            return f"{table.name}.{column.name}"
        return column.name

    columns = list(table.columns)
    projection_count = 1 + rng.randrange(min(3, len(columns)))
    projection = [
        column_ref(columns[rng.randrange(len(columns))])
        for __ in range(projection_count)
    ]
    if rng.random() < 0.1:
        projection = ["*"]
    distinct = "DISTINCT " if rng.random() < 0.2 else ""
    sql = f"SELECT {distinct}{', '.join(projection)} FROM {table.name}"

    predicates: list[str] = []
    for __ in range(rng.randrange(3)):
        column = columns[rng.randrange(len(columns))]
        ref = column_ref(column)
        roll = rng.random()
        if column.col_type.is_numeric:
            value = rng.randrange(-5, 2_000)
            if roll < 0.5:
                op = ("<", ">", "<=", ">=", "=", "!=")[rng.randrange(6)]
                if rng.random() < 0.5:
                    predicates.append(f"{ref} {op} {value}")
                else:
                    mirrored = _MIRROR_COMPARISONS.get(op, op)
                    predicates.append(f"{value} {mirrored} {ref}")
            elif roll < 0.75:
                predicates.append(f"{ref} BETWEEN {value} AND {value + 100}")
            else:
                predicates.append(f"{ref} + 1 > {value}")
        else:
            samples = database.sample_values(table.name, column.name, count=3)
            text = str(samples[0]) if samples else "x"
            text = text.replace("'", "''")
            if roll < 0.4:
                predicates.append(f"{ref} = '{text}'")
            elif roll < 0.6:
                prefix = text[:3].replace("'", "''")
                predicates.append(f"{ref} LIKE '{prefix}%'")
            elif roll < 0.75:
                prefix = text[:2].replace("'", "''")
                predicates.append(f"{ref} LIKE '{prefix}!%%' ESCAPE '!'")
            elif roll < 0.9:
                predicates.append(f"{ref} IN ('{text}', 'zz-{rng.randrange(100)}')")
            else:
                predicates.append(f"{ref} IS NOT NULL")
    if predicates:
        connector = " AND " if rng.random() < 0.7 else " OR "
        sql += " WHERE " + connector.join(predicates)

    if rng.random() < 0.3:
        column = columns[rng.randrange(len(columns))]
        direction = "DESC" if rng.random() < 0.5 else "ASC"
        sql += f" ORDER BY {column_ref(column)} {direction}"
        if rng.random() < 0.5:
            sql += f" LIMIT {1 + rng.randrange(10)}"
    return sql


def sql_strategy(database: Database):
    """A ``hypothesis`` strategy over :func:`generate_query` outputs.

    Requires the optional ``hypothesis`` dev dependency; shrinking
    happens on the generator seed, so failures minimize naturally.
    """
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - dev-only dependency
        raise ReproError(
            "sql_strategy requires the 'hypothesis' dev dependency"
        ) from exc
    import random as _random

    return st.builds(
        lambda seed: generate_query(database, _random.Random(seed)),
        st.integers(min_value=0, max_value=2**32 - 1),
    )


# -- corruption-based off-distribution source --------------------------------


def corrupted_sql(example: Example, database: Database, rng) -> str | None:
    """A realistic *wrong* query: ``example``'s intent under the error model."""
    if example.intent is None:
        return None
    from repro.datagen.sql_render import render_intent_sql
    from repro.llm.corruption import CorruptionContext, CorruptionSampler, error_rates
    from repro.llm.prompt import PromptFeatures
    from repro.llm.registry import get_profile

    context = CorruptionContext(
        schema=database.schema,
        database=database,
        profile=get_profile("starcoder-1b"),
        features=PromptFeatures(),
        temperature=0.8,
    )
    sampler = CorruptionSampler(context, rng)
    try:
        intent = sampler.apply(example.intent, error_rates(context, example.intent))
        return render_intent_sql(intent, database.schema)
    except ReproError:
        return None


# -- the harness -------------------------------------------------------------


class DifferentialFuzzer:
    """Runs the three oracle families over seeded SQL streams.

    ``datasets`` supplies both the databases and the gold/intent corpus;
    build them with :func:`build_fuzz_datasets` (or pass any
    ``datagen``-built :class:`Dataset`).
    """

    def __init__(
        self,
        datasets: list[Dataset],
        seed: int = 42,
        max_divergences: int = 25,
        cross_backend: str | None = None,
    ) -> None:
        if not datasets:
            raise ValueError("DifferentialFuzzer needs at least one dataset")
        if cross_backend is not None and not backend_available(cross_backend):
            raise ValueError(
                f"cross-engine backend {cross_backend!r} is not available"
            )
        self.datasets = datasets
        self.seed = seed
        self.max_divergences = max_divergences
        self.cross_backend = cross_backend
        # Lazily-cloned mirror databases on the second engine, keyed by
        # the primary Database's identity (db_ids can repeat across
        # datasets).
        self._mirrors: dict[int, Database] = {}
        self._pools: list[tuple[Database, list[Example]]] = []
        for dataset in datasets:
            by_db: dict[str, list[Example]] = {}
            for example in dataset.examples:
                by_db.setdefault(example.db_id, []).append(example)
            for db_id, examples in sorted(by_db.items()):
                self._pools.append((dataset.database(db_id), examples))

    def close(self) -> None:
        """Close the cross-engine mirror databases (primaries are the
        caller's to manage)."""
        for mirror in self._mirrors.values():
            mirror.close()
        self._mirrors.clear()

    def _mirror(self, database: Database) -> Database:
        key = id(database)
        if key not in self._mirrors:
            self._mirrors[key] = clone_database(database, self.cross_backend)
        return self._mirrors[key]

    # -- oracle families ------------------------------------------------

    def check_round_trip(
        self, sql: str, database: Database, report: FuzzReport
    ) -> None:
        """Family 1: print/parse idempotence + execution equivalence."""
        try:
            statement = parse_select(sql)
        except SQLError:
            report.skipped += 1
            return
        printed = to_sql(statement)

        report.count(FAMILY_ROUND_TRIP)
        try:
            reprinted = to_sql(parse_select(printed))
        except SQLError as exc:
            self._diverge(
                report, FAMILY_ROUND_TRIP, "reparse", sql, printed,
                f"printed SQL no longer parses: {exc}", database.db_id,
            )
            return
        if reprinted != printed:
            self._diverge(
                report, FAMILY_ROUND_TRIP, "idempotence", printed, reprinted,
                "parse -> to_sql is not a fixed point", database.db_id,
            )
            return

        report.count(FAMILY_ROUND_TRIP)
        original = execute_sql(database, sql)
        normalized = execute_sql(database, printed)
        ordered = bool(statement.order_by)
        if not _execution_equivalent(original, normalized, ordered):
            self._diverge(
                report, FAMILY_ROUND_TRIP, "execution-equivalence", sql, printed,
                _execution_diff(original, normalized), database.db_id,
                minimize_on=database,
            )

    def check_metamorphic_em(
        self, sql: str, database: Database, report: FuzzReport
    ) -> None:
        """Family 2: EM reflexivity/symmetry, invariances, variances."""
        try:
            statement = parse_select(sql)
        except SQLError:
            report.skipped += 1
            return

        report.count(FAMILY_METAMORPHIC_EM)
        if not exact_match(sql, sql):
            self._diverge(
                report, FAMILY_METAMORPHIC_EM, "reflexivity", sql, sql,
                "exact_match(q, q) is False", database.db_id,
            )
            return

        invariants = [
            ("alias-rename", rename_aliases(statement)),
            ("join-operand-flip", flip_join_operands(statement)),
            ("comparison-mirror", mirror_comparisons(statement)),
        ]
        for name, variant in invariants:
            variant_sql = to_sql(variant)
            report.count(FAMILY_METAMORPHIC_EM)
            forward = exact_match(sql, variant_sql)
            backward = exact_match(variant_sql, sql)
            if forward != backward:
                self._diverge(
                    report, FAMILY_METAMORPHIC_EM, f"symmetry/{name}", sql,
                    variant_sql, "exact_match is asymmetric", database.db_id,
                )
            elif not forward:
                self._diverge(
                    report, FAMILY_METAMORPHIC_EM, f"invariance/{name}", sql,
                    variant_sql,
                    f"semantics-preserving transform '{name}' broke EM",
                    database.db_id,
                )

        variants = [("duplicate-select-item", duplicate_select_item(statement))]
        variants.extend(clause_deletions(statement))
        for name, variant in variants:
            variant_sql = to_sql(variant)
            if variant_sql == to_sql(statement):
                continue
            report.count(FAMILY_METAMORPHIC_EM)
            if exact_match(sql, variant_sql):
                self._diverge(
                    report, FAMILY_METAMORPHIC_EM, f"variance/{name}", sql,
                    variant_sql,
                    f"semantics-changing transform '{name}' left EM True",
                    database.db_id,
                )

    def check_executor(
        self,
        sql: str,
        other_sql: str,
        database: Database,
        report: FuzzReport,
    ) -> None:
        """Family 3: results_match symmetry, reorder stability, truncation."""
        result = execute_sql(database, sql)
        other = execute_sql(database, other_sql)

        report.count(FAMILY_EXECUTOR)
        for ordered in (False, True):
            forward = results_match(result, other, order_matters=ordered)
            backward = results_match(other, result, order_matters=ordered)
            if forward != backward:
                self._diverge(
                    report, FAMILY_EXECUTOR, "symmetry", sql, other_sql,
                    f"results_match asymmetric (order_matters={ordered})",
                    database.db_id,
                )

        if result.ok and len(result.rows) > 1:
            report.count(FAMILY_EXECUTOR)
            reordered = ExecutionResult(
                rows=list(reversed(result.rows)), sql=result.sql
            )
            if not results_match(result, reordered, order_matters=False):
                self._diverge(
                    report, FAMILY_EXECUTOR, "reorder-stability", sql, sql,
                    "unordered comparison is sensitive to row order",
                    database.db_id,
                )

        if result.ok and other.ok and len(result.rows) > 1 and len(other.rows) > 1:
            report.count(FAMILY_EXECUTOR)
            capped = execute_sql(database, sql, max_rows=1)
            capped_other = execute_sql(database, other_sql, max_rows=1)
            if capped.ok and not capped.truncated:
                self._diverge(
                    report, FAMILY_EXECUTOR, "truncation-flag", sql, "",
                    "row-capped execution did not set truncated", database.db_id,
                )
            elif results_match(capped, capped_other):
                self._diverge(
                    report, FAMILY_EXECUTOR, "truncation-equate", sql, other_sql,
                    "two silently truncated results compared as equal",
                    database.db_id,
                )

    def check_cross_engine(
        self, sql: str, database: Database, report: FuzzReport
    ) -> None:
        """Family 4: the same query over the same content must produce
        equivalent results on both execution backends."""
        if self.cross_backend is None:
            return
        try:
            statement = parse_select(sql)
        except SQLError:
            report.skipped += 1
            return
        mirror = self._mirror(database)
        report.count(FAMILY_CROSS_ENGINE)
        primary = execute_sql(database, sql)
        secondary = execute_sql(mirror, sql)
        ordered = bool(statement.order_by)
        if not _cross_engine_equivalent(primary, secondary, ordered):
            minimized = minimize_failure(
                sql,
                lambda candidate: not _cross_engine_equivalent_sql(
                    candidate, database, mirror
                ),
            )
            self._diverge(
                report, FAMILY_CROSS_ENGINE, "result-equivalence", minimized, sql,
                _cross_engine_diff(primary, secondary, database, mirror),
                database.db_id,
            )

    # -- drivers --------------------------------------------------------

    def check_gold_corpus(self, report: FuzzReport) -> None:
        """Round-trip + EM oracles over every gold query of every dataset.

        This is the end-to-end assertion that ``normalize_sql`` stays
        execution-equivalent on the benchmarks the paper's metrics run on.
        """
        seen: set[tuple[str, str]] = set()
        for database, examples in self._pools:
            for example in examples:
                key = (example.db_id, example.gold_sql)
                if key in seen:
                    continue
                seen.add(key)
                self.check_round_trip(example.gold_sql, database, report)
                self.check_metamorphic_em(example.gold_sql, database, report)
                self.check_cross_engine(example.gold_sql, database, report)
                if len(report.divergences) >= self.max_divergences:
                    return

    def run(self, seeds: int = 200, include_gold_corpus: bool = True) -> FuzzReport:
        """Run the full harness: gold corpus plus ``seeds`` fuzz rounds."""
        report = FuzzReport(seeds=seeds)
        if include_gold_corpus:
            self.check_gold_corpus(report)
        for index in range(seeds):
            if len(report.divergences) >= self.max_divergences:
                break
            rng = derive_rng(self.seed, "fuzz-sqlkit", index)
            database, examples = self._pools[rng.randrange(len(self._pools))]
            sql = self._draw_sql(examples, database, rng)
            if sql is None:
                report.skipped += 1
                continue
            self.check_round_trip(sql, database, report)
            self.check_metamorphic_em(sql, database, report)
            self.check_cross_engine(sql, database, report)
            other = self._draw_sql(examples, database, rng)
            if other is not None:
                self.check_executor(sql, other, database, report)
        return report

    def _draw_sql(self, examples: list[Example], database: Database, rng) -> str | None:
        roll = rng.random()
        example = examples[rng.randrange(len(examples))]
        if roll < 0.35:
            return example.gold_sql
        if roll < 0.65:
            corrupted = corrupted_sql(example, database, rng)
            return corrupted if corrupted is not None else example.gold_sql
        return generate_query(database, rng)

    # -- divergence handling --------------------------------------------

    def _diverge(
        self,
        report: FuzzReport,
        family: str,
        oracle: str,
        sql: str,
        counterpart: str,
        detail: str,
        db_id: str,
        minimize_on: Database | None = None,
    ) -> None:
        if minimize_on is not None:
            sql = minimize_failure(
                sql,
                lambda candidate: not _normalize_preserves_execution(
                    candidate, minimize_on
                ),
            )
        report.divergences.append(
            Divergence(
                family=family,
                oracle=oracle,
                sql=sql,
                counterpart=counterpart,
                detail=detail,
                db_id=db_id,
            )
        )


def _execution_equivalent(
    original: ExecutionResult, normalized: ExecutionResult, ordered: bool
) -> bool:
    if original.ok != normalized.ok:
        return False
    if not original.ok:
        return True
    if original.truncated != normalized.truncated:
        return False
    if original.truncated:
        # Both are identical-length prefixes of the same plan's output;
        # compare them literally (results_match refuses truncated pairs).
        return original.rows == normalized.rows
    return results_match(original, normalized, order_matters=ordered) and results_match(
        normalized, original, order_matters=ordered
    )


def _execution_diff(original: ExecutionResult, normalized: ExecutionResult) -> str:
    if original.ok != normalized.ok:
        failing = normalized if original.ok else original
        return f"normalize_sql changed execution outcome: {failing.error}"
    return (
        "normalize_sql changed the result set "
        f"({len(original.rows)} rows vs {len(normalized.rows)} rows)"
    )


def _cross_engine_equivalent(
    primary: ExecutionResult, secondary: ExecutionResult, ordered: bool
) -> bool:
    if primary.ok != secondary.ok:
        return False
    if not primary.ok:
        # Both engines rejected the query; their error *strings* are
        # engine-worded and deliberately not compared.
        return True
    if primary.truncated != secondary.truncated:
        return False
    if primary.truncated:
        # Two row-capped prefixes of an unordered result need not agree
        # across engines; equivalence is undecidable from the prefix.
        return True
    return results_match(primary, secondary, order_matters=ordered) and results_match(
        secondary, primary, order_matters=ordered
    )


def _cross_engine_equivalent_sql(
    sql: str, database: Database, mirror: Database
) -> bool:
    try:
        statement = parse_select(sql)
    except SQLError:
        return True  # unparseable candidates are vacuously fine
    primary = execute_sql(database, sql)
    secondary = execute_sql(mirror, sql)
    return _cross_engine_equivalent(primary, secondary, bool(statement.order_by))


def _cross_engine_diff(
    primary: ExecutionResult,
    secondary: ExecutionResult,
    database: Database,
    mirror: Database,
) -> str:
    names = f"{database.backend_name} vs {mirror.backend_name}"
    if primary.ok != secondary.ok:
        failing = secondary if primary.ok else primary
        side = mirror.backend_name if primary.ok else database.backend_name
        return f"engines disagree on outcome ({names}): {side} failed: {failing.error}"
    return (
        f"engines disagree on the result set ({names}): "
        f"{len(primary.rows)} rows vs {len(secondary.rows)} rows"
    )


def _normalize_preserves_execution(sql: str, database: Database) -> bool:
    try:
        statement = parse_select(sql)
        printed = to_sql(statement)
    except SQLError:
        return True  # unparseable candidates are vacuously fine
    original = execute_sql(database, sql)
    normalized = execute_sql(database, printed)
    return _execution_equivalent(original, normalized, bool(statement.order_by))


def minimize_failure(sql: str, still_fails) -> str:
    """Greedy clause-level shrink: smallest variant where ``still_fails``.

    ``still_fails(candidate_sql) -> bool`` re-runs the oracle.  The
    original ``sql`` is returned unchanged when no reduction reproduces
    the failure (or when it does not parse).
    """
    try:
        current = parse_select(sql)
    except SQLError:
        return sql
    if not still_fails(to_sql(current)):
        return sql
    changed = True
    while changed:
        changed = False
        for candidate in _reductions(current):
            candidate_sql = to_sql(candidate)
            try:
                if still_fails(candidate_sql):
                    current = candidate
                    changed = True
                    break
            except Exception:
                continue
    return to_sql(current)


def _reductions(statement: SelectStatement) -> list[SelectStatement]:
    """Single-step structural reductions, roughly largest-first."""
    candidates: list[SelectStatement] = []

    def clone() -> SelectStatement:
        copied = copy.deepcopy(statement)
        candidates.append(copied)
        return copied

    if statement.set_operation is not None:
        clone().set_operation = None
    if statement.from_clause is not None and statement.from_clause.joins:
        reduced = clone()
        reduced.from_clause.joins = reduced.from_clause.joins[:-1]
    if statement.where is not None:
        clone().where = None
        for part in getattr(statement.where, "operands", []):
            clone().where = copy.deepcopy(part)
    if statement.having is not None:
        clone().having = None
    if statement.group_by:
        reduced = clone()
        reduced.group_by = []
        reduced.having = None
    if statement.order_by:
        clone().order_by = []
    if statement.limit is not None:
        clone().limit = None
    if len(statement.select_items) > 1:
        clone().select_items = copy.deepcopy(statement.select_items[:1])
    elif statement.select_items and not isinstance(
        statement.select_items[0].expr, (Star, ColumnRef, Literal)
    ):
        # Collapse a complex lone projection (CASE, function, arithmetic).
        clone().select_items = [SelectItem(expr=Star())]
    for index, item in enumerate(statement.select_items):
        if isinstance(item.expr, LikeExpr) and item.expr.escape is not None:
            reduced = clone()
            reduced.select_items[index].expr.escape = None
    return candidates


# -- corpus / entry-point helpers --------------------------------------------


def build_fuzz_datasets(
    benchmark: str = "both", scale: float = 0.08, seed: int = 42
) -> list[Dataset]:
    """Small spider-like / bird-like benchmarks for the harness to chew on."""
    from repro.datagen.benchmark import (
        bird_like_config,
        build_benchmark,
        spider_like_config,
    )

    configs = {
        "spider": [spider_like_config(scale=scale, seed=seed)],
        "bird": [bird_like_config(scale=scale, seed=seed + 1)],
    }
    configs["both"] = configs["spider"] + configs["bird"]
    try:
        chosen = configs[benchmark]
    except KeyError as exc:
        raise ValueError(f"unknown benchmark {benchmark!r}") from exc
    return [build_benchmark(config) for config in chosen]


def run_fuzz(
    seeds: int = 200,
    benchmark: str = "both",
    scale: float = 0.08,
    seed: int = 42,
    include_gold_corpus: bool = True,
    max_divergences: int = 25,
    cross_backend: str | None = None,
) -> FuzzReport:
    """Build the fuzz corpus, run the harness, and return the report.

    ``cross_backend`` additionally mirrors every database onto that
    engine and runs the cross-engine oracle family on every checked
    query (requires the engine package, e.g. ``duckdb``).
    """
    datasets = build_fuzz_datasets(benchmark=benchmark, scale=scale, seed=seed)
    fuzzer = None
    try:
        fuzzer = DifferentialFuzzer(
            datasets,
            seed=seed,
            max_divergences=max_divergences,
            cross_backend=cross_backend,
        )
        return fuzzer.run(seeds=seeds, include_gold_corpus=include_gold_corpus)
    finally:
        if fuzzer is not None:
            fuzzer.close()
        for dataset in datasets:
            dataset.close()
