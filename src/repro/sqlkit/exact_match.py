"""Spider-style Exact Match (EM) comparison.

Spider's EM metric decomposes both queries into clause components and
compares each component as a set, after resolving table aliases, so that
``SELECT T1.name FROM airports AS T1`` matches
``SELECT airports.name FROM airports``.  Following the official metric,
literal *values* in conditions are ignored by default ("exact set match
without values"); pass ``compare_values=True`` for a stricter variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLError
from repro.sqlkit.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    BooleanOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    NotExpr,
    SelectStatement,
    Star,
    Subquery,
)
from repro.sqlkit.parser import parse_select


@dataclass(frozen=True)
class _Canon:
    """Canonical component decomposition of one SELECT statement.

    ``select_items`` is an order-insensitive *multiset* (sorted tuple):
    ``SELECT a, a`` returns a different shape than ``SELECT a`` and must
    not collapse to the same component set.
    """

    select_items: tuple[str, ...]
    distinct: bool
    tables: frozenset[str]
    join_conditions: frozenset[str]
    where_conditions: frozenset[str]
    group_by: frozenset[str]
    having_conditions: frozenset[str]
    order_by: tuple[str, ...]
    limit: int | None
    set_op: str | None
    nested: tuple["_Canon", ...]


def _alias_map(
    statement: SelectStatement, outer: dict[str, str] | None = None
) -> dict[str, str]:
    """Binding -> real table name, inheriting (and shadowing) outer scope.

    Correlated subqueries reference the enclosing query's aliases
    (``WHERE T2.aid = T1.id``); a fresh per-statement map would leave
    ``T1`` unresolved and fail semantically identical pairs.
    """
    mapping: dict[str, str] = dict(outer or {})
    if statement.from_clause is None:
        return mapping
    for table in statement.from_clause.tables:
        mapping[table.binding.lower()] = table.name.lower()
        mapping[table.name.lower()] = table.name.lower()
    return mapping


def _canon_column(expr: ColumnRef | Star, aliases: dict[str, str], single_table: str | None) -> str:
    if isinstance(expr, Star):
        return "*"
    table = (expr.table or "").lower()
    resolved = aliases.get(table, table)
    if not resolved and single_table:
        resolved = single_table
    return f"{resolved}.{expr.column.lower()}"


def _canon_expr(
    expr: Expr,
    aliases: dict[str, str],
    single_table: str | None,
    compare_values: bool,
) -> str:
    if isinstance(expr, (ColumnRef, Star)):
        return _canon_column(expr, aliases, single_table)
    if isinstance(expr, Literal):
        if compare_values:
            return f"lit:{expr.value!r}".lower()
        return "lit:?"
    if isinstance(expr, FuncCall):
        args = ",".join(_canon_expr(a, aliases, single_table, compare_values) for a in expr.args)
        distinct = "distinct " if expr.distinct else ""
        return f"{expr.name.lower()}({distinct}{args})"
    if isinstance(expr, BinaryOp):
        op = "!=" if expr.op == "<>" else expr.op
        left = _canon_expr(expr.left, aliases, single_table, compare_values)
        right = _canon_expr(expr.right, aliases, single_table, compare_values)
        if op in ("=", "!="):
            # Symmetric comparisons: operand order is irrelevant.
            left, right = sorted((left, right))
        elif op in (">", ">="):
            # Mirror flips: ``a > b`` is ``b < a``; canonicalize on < / <=
            # so flipped spellings compare equal (but a<b never equals b<a).
            op = "<" if op == ">" else "<="
            left, right = right, left
        return f"({left} {op} {right})"
    if isinstance(expr, BooleanOp):
        inner = sorted(
            _canon_expr(operand, aliases, single_table, compare_values)
            for operand in expr.operands
        )
        return f"({f' {expr.op} '.join(inner)})"
    if isinstance(expr, NotExpr):
        return f"(not {_canon_expr(expr.operand, aliases, single_table, compare_values)})"
    if isinstance(expr, LikeExpr):
        keyword = "not like" if expr.negated else "like"
        pattern = _canon_expr(expr.pattern, aliases, single_table, compare_values)
        suffix = ""
        if expr.escape is not None:
            suffix = f" escape {_canon_expr(expr.escape, aliases, single_table, compare_values)}"
        return f"({_canon_expr(expr.operand, aliases, single_table, compare_values)} {keyword} {pattern}{suffix})"
    if isinstance(expr, BetweenExpr):
        keyword = "not between" if expr.negated else "between"
        low = _canon_expr(expr.low, aliases, single_table, compare_values)
        high = _canon_expr(expr.high, aliases, single_table, compare_values)
        return f"({_canon_expr(expr.operand, aliases, single_table, compare_values)} {keyword} {low} {high})"
    if isinstance(expr, IsNullExpr):
        keyword = "is not null" if expr.negated else "is null"
        return f"({_canon_expr(expr.operand, aliases, single_table, compare_values)} {keyword})"
    if isinstance(expr, InExpr):
        keyword = "not in" if expr.negated else "in"
        operand = _canon_expr(expr.operand, aliases, single_table, compare_values)
        if expr.subquery is not None:
            inner = repr(_canonicalize(expr.subquery.select, compare_values, aliases))
            return f"({operand} {keyword} <{inner}>)"
        values = sorted(
            _canon_expr(value, aliases, single_table, compare_values) for value in expr.values
        )
        return f"({operand} {keyword} [{','.join(values)}])"
    if isinstance(expr, Exists):
        keyword = "not exists" if expr.negated else "exists"
        inner = repr(_canonicalize(expr.subquery.select, compare_values, aliases))
        return f"({keyword} <{inner}>)"
    if isinstance(expr, Subquery):
        return f"<{_canonicalize(expr.select, compare_values, aliases)!r}>"
    if isinstance(expr, CaseExpr):
        whens = ";".join(
            f"{_canon_expr(c, aliases, single_table, compare_values)}:"
            f"{_canon_expr(v, aliases, single_table, compare_values)}"
            for c, v in expr.whens
        )
        tail = (
            _canon_expr(expr.else_value, aliases, single_table, compare_values)
            if expr.else_value is not None
            else ""
        )
        return f"(case {whens} else {tail})"
    raise SQLError(f"cannot canonicalize expression node {type(expr).__name__}")


def _split_conditions(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BooleanOp) and expr.op == "and":
        flattened: list[Expr] = []
        for operand in expr.operands:
            flattened.extend(_split_conditions(operand))
        return flattened
    return [expr]


def _canonicalize(
    statement: SelectStatement,
    compare_values: bool,
    outer_aliases: dict[str, str] | None = None,
) -> _Canon:
    aliases = _alias_map(statement, outer_aliases)
    single_table: str | None = None
    if statement.from_clause is not None and len(statement.from_clause.tables) == 1:
        single_table = statement.from_clause.base.name.lower()

    def canon(expr: Expr) -> str:
        return _canon_expr(expr, aliases, single_table, compare_values)

    select_items = tuple(sorted(
        ("distinct " if statement.distinct else "") + canon(item.expr)
        for item in statement.select_items
    ))
    tables = frozenset(
        table.name.lower()
        for table in (statement.from_clause.tables if statement.from_clause else [])
    )
    join_conditions = frozenset(
        canon(join.condition)
        for join in (statement.from_clause.joins if statement.from_clause else [])
        if join.condition is not None
    )
    where_conditions = frozenset(canon(cond) for cond in _split_conditions(statement.where))
    having_conditions = frozenset(canon(cond) for cond in _split_conditions(statement.having))
    group_by = frozenset(canon(expr) for expr in statement.group_by)
    order_by = tuple(f"{canon(item.expr)} {item.direction}" for item in statement.order_by)
    nested: list[_Canon] = []
    set_op: str | None = None
    if statement.set_operation is not None:
        set_op = statement.set_operation.op
        # Set-operation branches are sibling scopes: they see the same
        # outer aliases as this statement, not this statement's own FROM.
        nested.append(
            _canonicalize(statement.set_operation.right, compare_values, outer_aliases)
        )
    return _Canon(
        select_items=select_items,
        distinct=statement.distinct,
        tables=tables,
        join_conditions=join_conditions,
        where_conditions=where_conditions,
        group_by=group_by,
        having_conditions=having_conditions,
        order_by=order_by,
        limit=statement.limit,
        set_op=set_op,
        nested=tuple(nested),
    )


def exact_match(
    predicted: str | SelectStatement,
    gold: str | SelectStatement,
    compare_values: bool = False,
) -> bool:
    """Return True iff the two queries match component-wise (Spider EM).

    Unparseable predictions simply do not match.
    """
    try:
        pred_stmt = predicted if isinstance(predicted, SelectStatement) else parse_select(predicted)
        gold_stmt = gold if isinstance(gold, SelectStatement) else parse_select(gold)
    except SQLError:
        return False
    return _canonicalize(pred_stmt, compare_values) == _canonicalize(gold_stmt, compare_values)
