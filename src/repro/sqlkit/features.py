"""SQL characteristic extraction (paper Exp-2 and the dataset filter).

Given a query, :func:`extract_features` reports the four characteristics
the paper filters on — subqueries, logical connectors, JOINs, ORDER BY —
plus the component counts the Spider hardness classifier needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlkit.ast_nodes import (
    BooleanOp,
    Exists,
    FuncCall,
    InExpr,
    NotExpr,
    SelectStatement,
)
from repro.sqlkit.parser import parse_select


@dataclass(frozen=True)
class SQLFeatures:
    """Structural features of a SQL query.

    Attributes mirror the paper's filtering axes:

    * ``num_subqueries`` — nested SELECTs via IN/EXISTS/scalar subqueries
      and set operations (UNION/INTERSECT/EXCEPT count as nesting, matching
      Spider's evaluation convention).
    * ``num_logical_connectors`` — AND/OR occurrences in WHERE/HAVING
      (join ON conditions excluded: those are structural, not filters).
    * ``num_joins`` — JOIN keywords across all statements.
    * ``has_order_by`` — any ORDER BY clause.
    """

    num_joins: int = 0
    num_subqueries: int = 0
    num_logical_connectors: int = 0
    has_order_by: bool = False
    num_aggregates: int = 0
    num_select_columns: int = 1
    num_where_conditions: int = 0
    has_group_by: bool = False
    has_having: bool = False
    has_limit: bool = False
    has_distinct: bool = False
    has_set_operation: bool = False
    has_like: bool = False
    num_tables: int = 1
    keywords: frozenset[str] = field(default_factory=frozenset)

    @property
    def has_subquery(self) -> bool:
        return self.num_subqueries > 0

    @property
    def has_join(self) -> bool:
        return self.num_joins > 0

    @property
    def has_logical_connector(self) -> bool:
        return self.num_logical_connectors > 0


def _count_connectors(statement: SelectStatement) -> int:
    count = 0
    for clause in (statement.where, statement.having):
        if clause is None:
            continue
        stack = [clause]
        while stack:
            node = stack.pop()
            if isinstance(node, BooleanOp):
                count += len(node.operands) - 1
                stack.extend(node.operands)
            elif isinstance(node, NotExpr):
                stack.append(node.operand)
    return count


def _count_where_conditions(statement: SelectStatement) -> int:
    if statement.where is None:
        return 0
    count = 0
    stack = [statement.where]
    while stack:
        node = stack.pop()
        if isinstance(node, BooleanOp):
            stack.extend(node.operands)
        elif isinstance(node, NotExpr):
            stack.append(node.operand)
        else:
            count += 1
    return count


def _collect_keywords(statement: SelectStatement) -> set[str]:
    keywords: set[str] = set()
    if statement.where is not None:
        keywords.add("where")
    if statement.group_by:
        keywords.add("group by")
    if statement.having is not None:
        keywords.add("having")
    if statement.order_by:
        keywords.add("order by")
    if statement.limit is not None:
        keywords.add("limit")
    if statement.distinct:
        keywords.add("distinct")
    if statement.set_operation is not None:
        keywords.add(statement.set_operation.op.split()[0])
    for expr in statement.iter_expressions():
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            keywords.add(expr.name.lower())
        if isinstance(expr, InExpr):
            keywords.add("in")
        if isinstance(expr, Exists):
            keywords.add("exists")
        type_name = type(expr).__name__
        if type_name == "LikeExpr":
            keywords.add("like")
        if type_name == "BetweenExpr":
            keywords.add("between")
        if type_name == "CaseExpr":
            keywords.add("case")
    return keywords


def features_of_statement(root: SelectStatement) -> SQLFeatures:
    """Extract features from a parsed statement (including nested queries)."""
    statements = root.all_statements()
    num_joins = sum(
        len(statement.from_clause.joins) if statement.from_clause else 0
        for statement in statements
    )
    num_subqueries = len(statements) - 1
    num_connectors = sum(_count_connectors(statement) for statement in statements)
    has_order_by = any(statement.order_by for statement in statements)
    num_aggregates = sum(
        1
        for statement in statements
        for expr in statement.iter_expressions()
        if isinstance(expr, FuncCall) and expr.is_aggregate
    )
    keywords: set[str] = set()
    for statement in statements:
        keywords |= _collect_keywords(statement)
    num_tables = sum(
        len(statement.from_clause.tables) if statement.from_clause else 0
        for statement in statements
    )
    return SQLFeatures(
        num_joins=num_joins,
        num_subqueries=num_subqueries,
        num_logical_connectors=num_connectors,
        has_order_by=has_order_by,
        num_aggregates=num_aggregates,
        num_select_columns=len(root.select_items),
        num_where_conditions=sum(_count_where_conditions(s) for s in statements),
        has_group_by=any(statement.group_by for statement in statements),
        has_having=any(statement.having is not None for statement in statements),
        has_limit=any(statement.limit is not None for statement in statements),
        has_distinct=any(statement.distinct for statement in statements),
        has_set_operation=any(statement.set_operation is not None for statement in statements),
        has_like="like" in keywords,
        num_tables=max(num_tables, 1),
        keywords=frozenset(keywords),
    )


def extract_features(sql: str | SelectStatement) -> SQLFeatures:
    """Extract :class:`SQLFeatures` from SQL text or a parsed statement."""
    statement = sql if isinstance(sql, SelectStatement) else parse_select(sql)
    return features_of_statement(statement)
