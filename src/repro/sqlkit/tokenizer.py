"""SQL tokenizer.

Produces a flat token stream consumed by the recursive-descent parser and
by the PICARD-style incremental validity checker.  The dialect covers the
Spider/BIRD SQL subset: SELECT queries with joins, subqueries, set
operations, aggregates, CASE/IIF, LIKE/IN/BETWEEN/EXISTS, and literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SQLTokenizeError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "offset", "join", "inner", "left", "right", "outer", "full",
    "cross", "on", "as", "and", "or", "not", "in", "like", "between", "is",
    "null", "exists", "union", "intersect", "except", "all", "asc", "desc",
    "case", "when", "then", "else", "end", "cast", "escape",
}

FUNCTIONS = {"count", "sum", "avg", "min", "max", "abs", "round", "length", "iif", "strftime"}


class TokenType(Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single token with its lexical type, value, and source position.

    ``quoted`` marks identifiers that were written with SQLite identifier
    quotes (``"..."`` or `` `...` ``); their ``value`` is the unquoted
    name.  String-literal tokens keep their raw quoted text as ``value``.
    """

    token_type: TokenType
    value: str
    position: int
    quoted: bool = False

    @property
    def lowered(self) -> str:
        return self.value.lower()

    def is_keyword(self, *words: str) -> bool:
        return self.token_type == TokenType.KEYWORD and self.lowered in words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.token_type.value}, {self.value!r})"


_OPERATORS = ("<>", "!=", ">=", "<=", "=", ">", "<", "+", "-", "*", "/", "%", "||")
_PUNCTUATION = {"(", ")", ",", ".", ";"}


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list of :class:`Token`, ending with an EOF token.

    Raises:
        SQLTokenizeError: on unterminated strings or illegal characters.
    """
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        char = sql[i]
        if char.isspace():
            i += 1
            continue
        if char in ("'", '"', "`"):
            end = _scan_string(sql, i)
            raw = sql[i:end]
            if char == "'":
                tokens.append(Token(TokenType.STRING, raw, i))
            else:
                # Double-quoted / backtick names are quoted *identifiers* in
                # SQLite, never string literals; rewriting them to '...'
                # would change semantics.  The token carries the unquoted
                # name plus a ``quoted`` marker so the printer can restore
                # identifier quotes.
                tokens.append(Token(TokenType.IDENTIFIER, unquote(raw), i, quoted=True))
            i = end
            continue
        if char.isdigit() or (char == "." and i + 1 < length and sql[i + 1].isdigit()):
            end = _scan_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, sql[i:end], i))
            i = end
            continue
        if char.isalpha() or char == "_":
            end = i
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[i:end]
            token_type = TokenType.KEYWORD if word.lower() in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(token_type, word, i))
            i = end
            continue
        matched_operator = next((op for op in _OPERATORS if sql.startswith(op, i)), None)
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, i))
            i += len(matched_operator)
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, i))
            i += 1
            continue
        raise SQLTokenizeError(f"illegal character {char!r}", i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _scan_string(sql: str, start: int) -> int:
    quote = sql[start]
    i = start + 1
    length = len(sql)
    while i < length:
        if sql[i] == quote:
            if i + 1 < length and sql[i + 1] == quote:  # escaped quote ('')
                i += 2
                continue
            return i + 1
        i += 1
    raise SQLTokenizeError("unterminated string literal", start)


def _scan_number(sql: str, start: int) -> int:
    i = start
    length = len(sql)
    seen_dot = False
    while i < length:
        char = sql[i]
        if char.isdigit():
            i += 1
        elif char == "." and not seen_dot:
            seen_dot = True
            i += 1
        else:
            break
    return i


def unquote(raw: str) -> str:
    """Strip surrounding quotes from a string-literal token value."""
    if len(raw) >= 2 and raw[0] in ("'", '"', "`") and raw[-1] == raw[0]:
        inner = raw[1:-1]
        return inner.replace(raw[0] * 2, raw[0])
    return raw
