"""SQL toolkit: lexer, parser, AST, printer, features, hardness, EM, NatSQL, PICARD."""

from repro.sqlkit.tokenizer import Token, TokenType, tokenize
from repro.sqlkit.ast_nodes import (
    BinaryOp,
    BooleanOp,
    CaseExpr,
    ColumnRef,
    Exists,
    FromClause,
    FuncCall,
    InExpr,
    Join,
    LikeExpr,
    Literal,
    NotExpr,
    OrderItem,
    SelectItem,
    SelectStatement,
    SetOperation,
    Star,
    Subquery,
    TableRef,
)
from repro.sqlkit.parser import parse_select, parse_sql
from repro.sqlkit.printer import normalize_sql, to_sql
from repro.sqlkit.features import SQLFeatures, extract_features
from repro.sqlkit.hardness import Hardness, classify_hardness
from repro.sqlkit.exact_match import exact_match
from repro.sqlkit.natsql import NatSQLQuery, from_natsql, to_natsql
from repro.sqlkit.picard import PicardChecker, is_valid_sql
from repro.sqlkit.differential import (
    DifferentialFuzzer,
    Divergence,
    FuzzReport,
    run_fuzz,
)

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "BinaryOp",
    "BooleanOp",
    "CaseExpr",
    "ColumnRef",
    "Exists",
    "FromClause",
    "FuncCall",
    "InExpr",
    "Join",
    "LikeExpr",
    "Literal",
    "NotExpr",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "SetOperation",
    "Star",
    "Subquery",
    "TableRef",
    "parse_select",
    "parse_sql",
    "normalize_sql",
    "to_sql",
    "SQLFeatures",
    "extract_features",
    "Hardness",
    "classify_hardness",
    "exact_match",
    "NatSQLQuery",
    "from_natsql",
    "to_natsql",
    "PicardChecker",
    "is_valid_sql",
    "DifferentialFuzzer",
    "Divergence",
    "FuzzReport",
    "run_fuzz",
]
