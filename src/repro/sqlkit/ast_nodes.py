"""Typed AST for the supported SQL dialect.

Nodes are plain dataclasses.  Expression nodes share the :class:`Expr`
base; :class:`SelectStatement` is the root of a query (optionally chained
through :class:`SetOperation` for UNION/INTERSECT/EXCEPT).

The AST deliberately models the Spider/BIRD SQL subset rather than full
SQL: that is the universe the paper's benchmarks, hardness classifier, and
exact-match metric are defined over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union


class Expr:
    """Base class for all expression nodes."""

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendant expressions (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> list["Expr"]:
        """Return direct child expressions; overridden per node."""
        return []


@dataclass
class Star(Expr):
    """The ``*`` projection, optionally table-qualified (``T1.*``)."""

    table: str | None = None


@dataclass
class ColumnRef(Expr):
    """A (possibly table-qualified) column reference.

    ``quoted`` records that the column name was written with SQLite
    identifier quotes; the printer re-quotes it so SQLite's
    double-quoted-string fallback cannot reinterpret the reference.
    """

    column: str
    table: str | None = None
    quoted: bool = False

    def key(self) -> str:
        """Case-insensitive ``table.column`` key for comparisons."""
        prefix = (self.table or "").lower()
        return f"{prefix}.{self.column.lower()}"


@dataclass
class Literal(Expr):
    """A string, numeric, boolean, or NULL literal."""

    value: Union[str, int, float, bool, None]

    @property
    def is_string(self) -> bool:
        return isinstance(self.value, str)


@dataclass
class FuncCall(Expr):
    """A function call; aggregates (COUNT/SUM/AVG/MIN/MAX) included."""

    name: str
    args: list[Expr] = field(default_factory=list)
    distinct: bool = False

    AGGREGATES = ("count", "sum", "avg", "min", "max")

    @property
    def is_aggregate(self) -> bool:
        return self.name.lower() in self.AGGREGATES

    def children(self) -> list[Expr]:
        return list(self.args)


@dataclass
class BinaryOp(Expr):
    """A binary comparison or arithmetic operation."""

    op: str
    left: Expr
    right: Expr

    COMPARISONS = ("=", "!=", "<>", ">", "<", ">=", "<=")

    @property
    def is_comparison(self) -> bool:
        return self.op in self.COMPARISONS

    def children(self) -> list[Expr]:
        return [self.left, self.right]


@dataclass
class BooleanOp(Expr):
    """An AND/OR chain over two or more conditions."""

    op: str  # "and" | "or"
    operands: list[Expr] = field(default_factory=list)

    def children(self) -> list[Expr]:
        return list(self.operands)


@dataclass
class NotExpr(Expr):
    """Logical negation."""

    operand: Expr

    def children(self) -> list[Expr]:
        return [self.operand]


@dataclass
class LikeExpr(Expr):
    """``expr [NOT] LIKE pattern [ESCAPE escape]``."""

    operand: Expr
    pattern: Expr
    negated: bool = False
    escape: Expr | None = None

    def children(self) -> list[Expr]:
        kids = [self.operand, self.pattern]
        if self.escape is not None:
            kids.append(self.escape)
        return kids


@dataclass
class BetweenExpr(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand, self.low, self.high]


@dataclass
class IsNullExpr(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand]


@dataclass
class InExpr(Expr):
    """``expr [NOT] IN (values | subquery)``."""

    operand: Expr
    values: list[Expr] = field(default_factory=list)
    subquery: "Subquery | None" = None
    negated: bool = False

    def children(self) -> list[Expr]:
        kids: list[Expr] = [self.operand, *self.values]
        if self.subquery is not None:
            kids.append(self.subquery)
        return kids


@dataclass
class Exists(Expr):
    """``[NOT] EXISTS (subquery)``."""

    subquery: "Subquery"
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.subquery]


@dataclass
class CaseExpr(Expr):
    """``CASE WHEN cond THEN value [...] [ELSE value] END`` (BIRD dialect)."""

    whens: list[tuple[Expr, Expr]] = field(default_factory=list)
    else_value: Expr | None = None

    def children(self) -> list[Expr]:
        kids: list[Expr] = []
        for condition, value in self.whens:
            kids.extend([condition, value])
        if self.else_value is not None:
            kids.append(self.else_value)
        return kids


@dataclass
class Subquery(Expr):
    """A parenthesized SELECT used as an expression or IN source."""

    select: "SelectStatement"

    def children(self) -> list[Expr]:
        return []


@dataclass
class TableRef:
    """A table in the FROM clause, with optional alias (``airports AS T1``)."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is referenced by in column qualifiers."""
        return self.alias or self.name


@dataclass
class Join:
    """A JOIN edge: joined table plus optional ON condition."""

    table: TableRef
    condition: Expr | None = None
    join_type: str = "join"  # "join" | "left join" | "inner join" ...


@dataclass
class FromClause:
    """FROM clause: a base table plus zero or more JOINs."""

    base: TableRef
    joins: list[Join] = field(default_factory=list)

    @property
    def tables(self) -> list[TableRef]:
        return [self.base, *(join.table for join in self.joins)]


@dataclass
class SelectItem:
    """One projection item with optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass
class OrderItem:
    """One ORDER BY key with direction."""

    expr: Expr
    direction: str = "asc"  # "asc" | "desc"


@dataclass
class SetOperation:
    """Links a SELECT to the next one via UNION/INTERSECT/EXCEPT."""

    op: str  # "union" | "union all" | "intersect" | "except"
    right: "SelectStatement"


@dataclass
class SelectStatement:
    """Root node of a SELECT query."""

    select_items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_clause: FromClause | None = None
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    set_operation: SetOperation | None = None

    def iter_expressions(self) -> Iterator[Expr]:
        """Yield every expression in the statement (not descending into subqueries)."""
        for item in self.select_items:
            yield from item.expr.walk()
        if self.from_clause is not None:
            for join in self.from_clause.joins:
                if join.condition is not None:
                    yield from join.condition.walk()
        if self.where is not None:
            yield from self.where.walk()
        for expr in self.group_by:
            yield from expr.walk()
        if self.having is not None:
            yield from self.having.walk()
        for order_item in self.order_by:
            yield from order_item.expr.walk()

    def subqueries(self) -> list["SelectStatement"]:
        """Return directly nested SELECTs (IN/EXISTS/scalar subqueries and set ops)."""
        nested = [expr.select for expr in self.iter_expressions() if isinstance(expr, Subquery)]
        if self.set_operation is not None:
            nested.append(self.set_operation.right)
        return nested

    def all_statements(self) -> list["SelectStatement"]:
        """Return this statement plus all transitively nested statements."""
        result = [self]
        stack = self.subqueries()
        while stack:
            statement = stack.pop()
            result.append(statement)
            stack.extend(statement.subqueries())
        return result
