"""Render AST nodes back to SQL text, and normalize SQL strings.

``to_sql`` produces canonical, single-spaced SQL with uppercase keywords.
``normalize_sql`` is the parse → print round trip used throughout the
library to compare queries modulo whitespace/case/quoting differences.
"""

from __future__ import annotations

import re

from repro.sqlkit.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    BooleanOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expr,
    FromClause,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    NotExpr,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    Subquery,
    TableRef,
)
from repro.sqlkit.parser import parse_select
from repro.sqlkit.tokenizer import KEYWORDS

_BARE_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def quote_identifier(name: str, force: bool = False) -> str:
    """Render ``name`` as a SQL identifier, SQLite-quoted when needed.

    Quotes are required when the name is not a valid bare identifier or
    collides with a keyword; ``force`` re-quotes identifiers that were
    quoted in the source (bare output could hit SQLite's double-quoted
    string-literal fallback and silently change meaning).
    """
    if force or not _BARE_IDENTIFIER.match(name) or name.lower() in KEYWORDS:
        return '"' + name.replace('"', '""') + '"'
    return name


def to_sql(statement: SelectStatement) -> str:
    """Render a :class:`SelectStatement` to canonical SQL text."""
    parts = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(item) for item in statement.select_items))
    if statement.from_clause is not None:
        parts.append("FROM")
        parts.append(_render_from(statement.from_clause))
    if statement.where is not None:
        parts.append("WHERE")
        parts.append(render_expr(statement.where))
    if statement.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(render_expr(expr) for expr in statement.group_by))
    if statement.having is not None:
        parts.append("HAVING")
        parts.append(render_expr(statement.having))
    if statement.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_render_order_item(item) for item in statement.order_by))
    if statement.limit is not None:
        parts.append(f"LIMIT {statement.limit}")
    sql = " ".join(parts)
    if statement.set_operation is not None:
        sql += f" {statement.set_operation.op.upper()} {to_sql(statement.set_operation.right)}"
    return sql


def _render_select_item(item: SelectItem) -> str:
    rendered = render_expr(item.expr)
    if item.alias:
        rendered += f" AS {quote_identifier(item.alias)}"
    return rendered


def _render_order_item(item: OrderItem) -> str:
    return f"{render_expr(item.expr)} {item.direction.upper()}"


def _render_table_ref(table: TableRef) -> str:
    name = quote_identifier(table.name)
    if table.alias:
        return f"{name} AS {quote_identifier(table.alias)}"
    return name


def _render_from(from_clause: FromClause) -> str:
    parts = [_render_table_ref(from_clause.base)]
    for join in from_clause.joins:
        parts.append(join.join_type.upper())
        parts.append(_render_table_ref(join.table))
        if join.condition is not None:
            parts.append("ON")
            parts.append(render_expr(join.condition))
    return " ".join(parts)


def render_literal(value: object) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def render_expr(expr: Expr) -> str:
    """Render any expression node to SQL text."""
    if isinstance(expr, Star):
        return f"{quote_identifier(expr.table)}.*" if expr.table else "*"
    if isinstance(expr, ColumnRef):
        column = quote_identifier(expr.column, force=expr.quoted)
        return f"{quote_identifier(expr.table)}.{column}" if expr.table else column
    if isinstance(expr, Literal):
        return render_literal(expr.value)
    if isinstance(expr, FuncCall):
        inner = ", ".join(render_expr(arg) for arg in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        if expr.name.lower() == "cast" and len(expr.args) == 2:
            type_name = expr.args[1].value if isinstance(expr.args[1], Literal) else "REAL"
            return f"CAST({render_expr(expr.args[0])} AS {type_name})"
        return f"{expr.name.upper()}({inner})"
    if isinstance(expr, BinaryOp):
        return f"{_render_operand(expr.left)} {expr.op} {_render_operand(expr.right)}"
    if isinstance(expr, BooleanOp):
        joiner = f" {expr.op.upper()} "
        return joiner.join(_render_operand(op, boolean_context=True) for op in expr.operands)
    if isinstance(expr, NotExpr):
        return f"NOT {_render_operand(expr.operand, boolean_context=True)}"
    if isinstance(expr, LikeExpr):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        rendered = f"{render_expr(expr.operand)} {keyword} {render_expr(expr.pattern)}"
        if expr.escape is not None:
            rendered += f" ESCAPE {render_expr(expr.escape)}"
        return rendered
    if isinstance(expr, BetweenExpr):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{render_expr(expr.operand)} {keyword} "
            f"{render_expr(expr.low)} AND {render_expr(expr.high)}"
        )
    if isinstance(expr, IsNullExpr):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{render_expr(expr.operand)} {keyword}"
    if isinstance(expr, InExpr):
        keyword = "NOT IN" if expr.negated else "IN"
        if expr.subquery is not None:
            return f"{render_expr(expr.operand)} {keyword} ({to_sql(expr.subquery.select)})"
        values = ", ".join(render_expr(value) for value in expr.values)
        return f"{render_expr(expr.operand)} {keyword} ({values})"
    if isinstance(expr, Exists):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} ({to_sql(expr.subquery.select)})"
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(f"WHEN {render_expr(condition)} THEN {render_expr(value)}")
        if expr.else_value is not None:
            parts.append(f"ELSE {render_expr(expr.else_value)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, Subquery):
        return f"({to_sql(expr.select)})"
    raise TypeError(f"cannot render expression node {type(expr).__name__}")


def _render_operand(expr: Expr, boolean_context: bool = False) -> str:
    """Render a child expression, parenthesizing nested boolean chains."""
    rendered = render_expr(expr)
    needs_parens = isinstance(expr, BooleanOp) or (
        boolean_context and isinstance(expr, BooleanOp)
    )
    if isinstance(expr, BooleanOp):
        needs_parens = True
    if needs_parens:
        return f"({rendered})"
    return rendered


def normalize_sql(sql: str) -> str:
    """Parse then re-render ``sql``, canonicalizing case/whitespace/quoting."""
    return to_sql(parse_select(sql))
