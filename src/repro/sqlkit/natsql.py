"""NatSQL-style intermediate representation.

NatSQL (Gan et al., 2021) simplifies SQL by *removing JOIN clauses*: every
column is written fully qualified (``table.column``), and the FROM/JOIN
structure is reconstructed from the database schema's foreign keys when
decoding back to executable SQL.  The paper finds this IR reduces the
complexity of predicting JOIN-heavy queries (Finding 4); our simulated
models exploit exactly this property — a model emitting NatSQL never has
to predict a join path, so it cannot make join errors, but decoding fails
when the referenced tables are not FK-connected.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.errors import NatSQLError, SchemaError
from repro.schema.model import DatabaseSchema
from repro.sqlkit.ast_nodes import (
    ColumnRef,
    Expr,
    FromClause,
    Join,
    SelectStatement,
    Star,
    Subquery,
    TableRef,
)
from repro.sqlkit.parser import parse_select
from repro.sqlkit.printer import to_sql


@dataclass
class NatSQLQuery:
    """A query in NatSQL form: fully-qualified columns, no FROM/JOIN.

    ``statement`` holds a :class:`SelectStatement` whose ``from_clause`` is
    ``None`` and whose every :class:`ColumnRef` carries a real table name.
    """

    statement: SelectStatement
    extra_tables: list[str] = field(default_factory=list)

    def referenced_tables(self) -> list[str]:
        """Tables mentioned by columns of the root statement, in first-use order."""
        seen: list[str] = []
        for expr in self.statement.iter_expressions():
            table: str | None = None
            if isinstance(expr, ColumnRef):
                table = expr.table
            elif isinstance(expr, Star):
                table = expr.table
            if table and table.lower() not in [t.lower() for t in seen]:
                seen.append(table)
        for table in self.extra_tables:
            if table.lower() not in [t.lower() for t in seen]:
                seen.append(table)
        return seen


def _resolve_columns(statement: SelectStatement) -> None:
    """Rewrite all column references in-place to full table names."""
    if statement.from_clause is None:
        return
    aliases = {t.binding.lower(): t.name for t in statement.from_clause.tables}
    default_table = (
        statement.from_clause.base.name
        if len(statement.from_clause.tables) == 1
        else None
    )
    for expr in statement.iter_expressions():
        if isinstance(expr, ColumnRef):
            if expr.table:
                expr.table = aliases.get(expr.table.lower(), expr.table)
            elif default_table:
                expr.table = default_table
        elif isinstance(expr, Star) and expr.table:
            expr.table = aliases.get(expr.table.lower(), expr.table)


def to_natsql(sql: str | SelectStatement) -> NatSQLQuery:
    """Encode a SQL query into NatSQL (dropping the FROM/JOIN structure).

    Subqueries and set-operation branches are encoded recursively.
    """
    statement = copy.deepcopy(sql) if isinstance(sql, SelectStatement) else parse_select(sql)
    encoded = _encode(statement)
    return NatSQLQuery(
        statement=encoded,
        extra_tables=list(getattr(encoded, "_natsql_extra_tables", [])),
    )


def _encode(statement: SelectStatement) -> SelectStatement:
    _resolve_columns(statement)
    base_tables = (
        [t.name for t in statement.from_clause.tables] if statement.from_clause else []
    )
    statement.from_clause = None
    for expr in statement.iter_expressions():
        if isinstance(expr, Subquery):
            expr.select = _encode(expr.select)
    if statement.set_operation is not None:
        statement.set_operation.right = _encode(statement.set_operation.right)
    # Keep a breadcrumb of tables that had no column mention (e.g. the
    # bridging table in a 3-way join) so decoding can restore them.
    mentioned = {
        (expr.table or "").lower()
        for expr in statement.iter_expressions()
        if isinstance(expr, (ColumnRef, Star))
    }
    statement._natsql_extra_tables = [  # type: ignore[attr-defined]
        name for name in base_tables if name.lower() not in mentioned
    ]
    return statement


def from_natsql(natsql: NatSQLQuery, schema: DatabaseSchema) -> str:
    """Decode a NatSQL query back to executable SQL using schema FKs.

    Raises:
        NatSQLError: when referenced tables are unknown or not FK-connected.
    """
    statement = copy.deepcopy(natsql.statement)
    decoded = _decode(statement, schema)
    return to_sql(decoded)


def _decode(statement: SelectStatement, schema: DatabaseSchema) -> SelectStatement:
    for expr in statement.iter_expressions():
        if isinstance(expr, Subquery):
            expr.select = _decode(expr.select, schema)
    if statement.set_operation is not None:
        statement.set_operation.right = _decode(statement.set_operation.right, schema)

    tables: list[str] = []
    for expr in statement.iter_expressions():
        table: str | None = None
        if isinstance(expr, (ColumnRef, Star)):
            table = expr.table
        if table and table.lower() not in [t.lower() for t in tables]:
            tables.append(table)
    for extra in getattr(statement, "_natsql_extra_tables", []):
        if extra.lower() not in [t.lower() for t in tables]:
            tables.append(extra)
    if not tables:
        raise NatSQLError("NatSQL query references no tables; cannot build FROM clause")
    for table in tables:
        if not schema.has_table(table):
            raise NatSQLError(f"NatSQL references unknown table {table!r}")

    try:
        fk_edges = schema.join_path(tables)
    except SchemaError as exc:
        raise NatSQLError(str(exc)) from exc

    ordered = [tables[0]]
    joins: list[Join] = []
    for fk in fk_edges:
        next_table = (
            fk.target_table
            if fk.source_table.lower() in [t.lower() for t in ordered]
            else fk.source_table
        )
        if next_table.lower() in [t.lower() for t in ordered]:
            # Both endpoints already placed (cycle); still emit the ON edge.
            next_table = fk.source_table
        condition = _join_condition(fk)
        joins.append(Join(table=TableRef(name=next_table), condition=condition))
        if next_table.lower() not in [t.lower() for t in ordered]:
            ordered.append(next_table)

    statement.from_clause = FromClause(base=TableRef(name=tables[0]), joins=joins)
    return statement


def _join_condition(fk) -> Expr:
    from repro.sqlkit.ast_nodes import BinaryOp

    return BinaryOp(
        op="=",
        left=ColumnRef(column=fk.source_column, table=fk.source_table),
        right=ColumnRef(column=fk.target_column, table=fk.target_table),
    )


def natsql_text(natsql: NatSQLQuery) -> str:
    """Render the NatSQL form as text (for prompts/logging)."""
    return to_sql(natsql.statement)
