"""Shared memoization primitives for the evaluation hot path.

Pieces used by the decode/few-shot cache layers and the serving-side
response cache:

* :class:`LRUCache` — a small, thread-safe, bounded LRU with
  hit/miss/eviction counters.
* :class:`TTLCache` — an LRU that additionally expires entries after a
  time-to-live, measured on a pluggable clock (:class:`LogicalClock`
  makes TTL expiry deterministic in tests).
* :func:`per_object_cache` — a registry of LRU caches keyed by the
  *identity* of a host object (a :class:`~repro.dbengine.database.Database`,
  a :class:`~repro.schema.model.DatabaseSchema`), so every consumer of
  the same live object shares one memo and the memo dies with the
  object.  Host objects only need to support weak references.
* a process-global enable switch — :func:`caches_enabled`,
  :func:`set_caches_enabled`, and the :func:`caches_disabled` context
  manager — that lets equivalence tests (and debugging sessions) run the
  exact same pipeline with every memo layer bypassed.

The switch gates *lookups and stores*, not correctness: with caches on
or off the pipeline must produce bit-identical results, which
``tests/test_perf_caches.py`` asserts end-to-end.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any, Hashable

_MISSING = object()


class LRUCache:
    """A bounded, thread-safe LRU mapping with hit/miss/eviction counters."""

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data", "_lock")

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """Return ``(hit, value)``; ``value`` is ``None`` on a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return False, None
            self._data.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    # Locks are not picklable; a cache crossing a process boundary
    # arrives empty (memo state is a pure optimisation).
    def __getstate__(self) -> dict:
        return {"maxsize": self.maxsize}

    def __setstate__(self, state: dict) -> None:
        self.maxsize = state["maxsize"]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data = OrderedDict()
        self._lock = threading.Lock()


class LogicalClock:
    """A deterministic, manually-advanced clock for TTL caches in tests.

    Callable like ``time.monotonic``; :meth:`advance` moves time forward
    by a chosen number of seconds, so TTL expiry is exact and
    wall-clock-free.  Thread-safe.
    """

    __slots__ = ("_now", "_lock")

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        with self._lock:
            self._now += seconds
            return self._now


class TTLCache:
    """A bounded, thread-safe LRU whose entries also expire after ``ttl``.

    ``ttl=None`` disables expiry (pure LRU).  ``clock`` defaults to
    ``time.monotonic``; inject a :class:`LogicalClock` for deterministic
    expiry in tests.  Expiry is lazy — an entry past its TTL is dropped
    (and counted under ``expirations``) by the lookup that finds it —
    matching the semantics of the common ``cachetools.TTLCache``:
    an entry whose age is ``>= ttl`` is expired.
    """

    __slots__ = (
        "maxsize", "ttl", "hits", "misses", "expirations", "evictions",
        "_clock", "_data", "_lock",
    )

    def __init__(
        self,
        maxsize: int = 1024,
        ttl: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (None disables expiry)")
        self.maxsize = maxsize
        self.ttl = ttl
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        self._clock = clock if clock is not None else time.monotonic
        # key -> (value, stamp); insertion/access order is the LRU order.
        self._data: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self._lock = threading.Lock()

    def _expired(self, stamp: float, now: float) -> bool:
        return self.ttl is not None and now - stamp >= self.ttl

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """Return ``(hit, value)``; ``value`` is ``None`` on a miss."""
        with self._lock:
            entry = self._data.get(key, _MISSING)
            if entry is _MISSING:
                self.misses += 1
                return False, None
            value, stamp = entry
            if self._expired(stamp, self._clock()):
                del self._data[key]
                self.expirations += 1
                self.misses += 1
                return False, None
            self._data.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = (value, self._clock())
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns the count."""
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> dict[str, int]:
        """Deterministic counter snapshot (plus the live entry count)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "expirations": self.expirations,
                "evictions": self.evictions,
                "entries": len(self._data),
            }


# -- per-object cache registry -------------------------------------------

# (id(host), cache name) -> (weakref to host, cache).  The weakref both
# detects id reuse (a new object at a recycled address must not inherit a
# dead object's memo) and drives eviction via weakref.finalize.
_OBJECT_CACHES: dict[tuple[int, str], tuple[weakref.ref, LRUCache]] = {}
_OBJECT_CACHES_LOCK = threading.Lock()


def _evict_if_dead(key: tuple[int, str]) -> None:
    with _OBJECT_CACHES_LOCK:
        entry = _OBJECT_CACHES.get(key)
        if entry is not None and entry[0]() is None:
            del _OBJECT_CACHES[key]


def per_object_cache(host: object, name: str, maxsize: int = 1024) -> LRUCache:
    """The shared :class:`LRUCache` named ``name`` for the live ``host``.

    Every caller holding the same object gets the same cache; the cache
    is dropped when the host is garbage-collected.
    """
    key = (id(host), name)
    with _OBJECT_CACHES_LOCK:
        entry = _OBJECT_CACHES.get(key)
        if entry is not None and entry[0]() is host:
            return entry[1]
        cache = LRUCache(maxsize=maxsize)
        _OBJECT_CACHES[key] = (weakref.ref(host), cache)
    weakref.finalize(host, _evict_if_dead, key)
    return cache


def lru_cache_stats() -> dict[str, dict[str, int]]:
    """Aggregate live per-object cache counters, keyed by cache name.

    Sums ``hits``/``misses``/``entries`` over every live host sharing a
    cache name (e.g. all databases' ``candidate_exec`` memos) plus the
    live cache count, for surfacing through CLI stats and the run
    report.  Counters are process-cumulative; callers wanting per-run
    numbers snapshot before/after and subtract.
    """
    totals: dict[str, dict[str, int]] = {}
    with _OBJECT_CACHES_LOCK:
        entries = list(_OBJECT_CACHES.items())
    for (_host_id, name), (ref, cache) in entries:
        if ref() is None:
            continue
        bucket = totals.setdefault(
            name,
            {"hits": 0, "misses": 0, "evictions": 0, "entries": 0, "caches": 0},
        )
        bucket["hits"] += cache.hits
        bucket["misses"] += cache.misses
        bucket["evictions"] += cache.evictions
        bucket["entries"] += len(cache)
        bucket["caches"] += 1
    return totals


# -- global enable switch ------------------------------------------------

_ENABLED = True


def caches_enabled() -> bool:
    """True while the hot-path memo layers are active (the default)."""
    return _ENABLED


def set_caches_enabled(enabled: bool) -> None:
    """Globally enable/disable every hot-path memo layer."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Scoped bypass of all memo layers (for equivalence tests)."""
    previous = _ENABLED
    set_caches_enabled(False)
    try:
        yield
    finally:
        set_caches_enabled(previous)
