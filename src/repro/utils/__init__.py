"""Shared utilities: deterministic RNG derivation and text helpers."""

from repro.utils.rng import derive_rng, derive_seed, stable_hash
from repro.utils.text import (
    jaccard,
    levenshtein,
    normalize_identifier,
    normalized_similarity,
    singularize,
    tokenize_words,
)

__all__ = [
    "derive_rng",
    "derive_seed",
    "stable_hash",
    "jaccard",
    "levenshtein",
    "normalize_identifier",
    "normalized_similarity",
    "singularize",
    "tokenize_words",
]
