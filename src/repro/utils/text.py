"""Lightweight text utilities used by schema linking and NLU.

These are dependency-free implementations of the string-similarity
primitives the paper's systems rely on (RESDSQL's schema ranking, BRIDGE's
value matching, DAIL-SQL's question-similarity example selection).
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+")

# Equivalence classes of interchangeable question phrasings, mirroring the
# paraphrase rewrites in repro.datagen.paraphrase.  The first member of
# each class is the canonical representative; every member (lowercase)
# maps onto it.  Used only for *semantic* cache keys — the base
# normalization never rewrites words.
_SEMANTIC_CLASSES: tuple[tuple[str, ...], ...] = (
    ("show the", "list the", "display the", "give me the"),
    ("what is the", "tell me the"),
    ("how many", "count how many"),
    ("is greater than", "is more than"),
    ("is less than", "is under"),
    ("is at least", "is no less than"),
    ("is at most", "is no more than"),
    ("sorted by", "ordered by"),
    ("of all", "of the"),
    ("whose", "with"),
    ("average", "mean"),
    ("maximum", "biggest"),
    ("minimum", "smallest"),
    ("total", "sum of the"),
    ("have no", "do not have any"),
    ("have at least one", "are linked to some"),
    ("showing only the top", "limited to the first"),
    ("in descending order", "from highest to lowest"),
    ("in ascending order", "from lowest to highest"),
    ("together with", "along with"),
    ("are there", "exist"),
)

# phrase -> canonical representative, longest phrases matched first so a
# member embedded in a longer member ("how many" in "count how many",
# "with" in "along with") never fires at the wrong position.  Including
# each representative as its own key makes the rewrite idempotent.
_SEMANTIC_CANONICAL: dict[str, str] = {
    member: members[0] for members in _SEMANTIC_CLASSES for member in members
}
_SEMANTIC_RE = re.compile(
    r"\b(?:"
    + "|".join(
        re.escape(phrase)
        for phrase in sorted(_SEMANTIC_CANONICAL, key=len, reverse=True)
    )
    + r")\b"
)

# Irregular plural forms that a naive "strip the s" rule would mangle.
_IRREGULAR_SINGULARS = {
    "people": "person",
    "children": "child",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "geese": "goose",
    "criteria": "criterion",
    "data": "datum",
    "series": "series",
    "species": "species",
}


def tokenize_words(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric word tokens.

    Underscores and camelCase boundaries are treated as separators so that
    schema identifiers like ``airportCode`` or ``airport_code`` tokenize
    identically to the natural-language phrase "airport code".
    """
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", text)
    spaced = spaced.replace("_", " ")
    return [match.group(0).lower() for match in _WORD_RE.finditer(spaced)]


def normalize_identifier(name: str) -> str:
    """Normalize a schema identifier to a canonical space-joined form."""
    return " ".join(tokenize_words(name))


def normalize_question(question: str, semantic: bool = False) -> str:
    """Canonicalize one NL question for request identity and cache keys.

    The base form collapses runs of whitespace and casefolds, so
    trivially-different repeats ("List flights ", "list  flights") share
    one identity; it never changes wording, making it safe for exact
    coalescing/cache keys.  With ``semantic=True`` trailing punctuation
    is stripped and interchangeable phrasings (the
    :mod:`repro.datagen.paraphrase` rewrite pairs) are folded onto one
    representative per equivalence class — a lossy key that trades a
    measurable correctness risk for cross-paraphrase cache hits.

    Both forms are idempotent: ``normalize_question(normalize_question(q,
    s), s) == normalize_question(q, s)``.
    """
    normalized = " ".join(question.split()).casefold()
    if not semantic:
        return normalized
    normalized = normalized.rstrip(" ?.!")
    return _SEMANTIC_RE.sub(
        lambda match: _SEMANTIC_CANONICAL[match.group(0)], normalized
    )


def singularize(word: str) -> str:
    """Return a best-effort singular form of an English noun."""
    lowered = word.lower()
    if lowered in _IRREGULAR_SINGULARS:
        return _IRREGULAR_SINGULARS[lowered]
    if lowered.endswith("ies") and len(lowered) > 3:
        return lowered[:-3] + "y"
    if lowered.endswith("ses") or lowered.endswith("xes") or lowered.endswith("zes"):
        return lowered[:-2]
    if lowered.endswith("s") and not lowered.endswith("ss") and len(lowered) > 2:
        return lowered[:-1]
    return lowered


def levenshtein(a: str, b: str) -> int:
    """Compute the Levenshtein edit distance between two strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def normalized_similarity(a: str, b: str) -> float:
    """Return 1 - normalized edit distance, in [0, 1]."""
    if not a and not b:
        return 1.0
    distance = levenshtein(a.lower(), b.lower())
    return 1.0 - distance / max(len(a), len(b))


def jaccard(a: set[str] | list[str], b: set[str] | list[str]) -> float:
    """Jaccard similarity of two token collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)
