"""Lightweight text utilities used by schema linking and NLU.

These are dependency-free implementations of the string-similarity
primitives the paper's systems rely on (RESDSQL's schema ranking, BRIDGE's
value matching, DAIL-SQL's question-similarity example selection).
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+")

# Irregular plural forms that a naive "strip the s" rule would mangle.
_IRREGULAR_SINGULARS = {
    "people": "person",
    "children": "child",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "geese": "goose",
    "criteria": "criterion",
    "data": "datum",
    "series": "series",
    "species": "species",
}


def tokenize_words(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric word tokens.

    Underscores and camelCase boundaries are treated as separators so that
    schema identifiers like ``airportCode`` or ``airport_code`` tokenize
    identically to the natural-language phrase "airport code".
    """
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", text)
    spaced = spaced.replace("_", " ")
    return [match.group(0).lower() for match in _WORD_RE.finditer(spaced)]


def normalize_identifier(name: str) -> str:
    """Normalize a schema identifier to a canonical space-joined form."""
    return " ".join(tokenize_words(name))


def singularize(word: str) -> str:
    """Return a best-effort singular form of an English noun."""
    lowered = word.lower()
    if lowered in _IRREGULAR_SINGULARS:
        return _IRREGULAR_SINGULARS[lowered]
    if lowered.endswith("ies") and len(lowered) > 3:
        return lowered[:-3] + "y"
    if lowered.endswith("ses") or lowered.endswith("xes") or lowered.endswith("zes"):
        return lowered[:-2]
    if lowered.endswith("s") and not lowered.endswith("ss") and len(lowered) > 2:
        return lowered[:-1]
    return lowered


def levenshtein(a: str, b: str) -> int:
    """Compute the Levenshtein edit distance between two strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def normalized_similarity(a: str, b: str) -> float:
    """Return 1 - normalized edit distance, in [0, 1]."""
    if not a and not b:
        return 1.0
    distance = levenshtein(a.lower(), b.lower())
    return 1.0 - distance / max(len(a), len(b))


def jaccard(a: set[str] | list[str], b: set[str] | list[str]) -> float:
    """Jaccard similarity of two token collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)
