"""Deterministic random-number derivation.

All stochastic behaviour in the library (data generation, the simulated
model's error sampling, self-consistency sampling, genetic search) flows
through :func:`derive_rng`.  Streams are keyed by stable strings, so the
same (seed, key) pair always yields the same sequence regardless of call
order elsewhere in the program.  This is what makes every experiment in
the benchmark harness reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random

_MASK_64 = (1 << 64) - 1


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's builtin :func:`hash` is salted per-process for strings, so it
    cannot be used for reproducible seeding.  We hash the repr of each part
    through BLAKE2b instead.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big") & _MASK_64


def derive_seed(base_seed: int, *key_parts: object) -> int:
    """Derive a child seed from ``base_seed`` and a stable key."""
    return stable_hash(base_seed, *key_parts)


def derive_rng(base_seed: int, *key_parts: object) -> random.Random:
    """Return a :class:`random.Random` seeded from ``base_seed`` and a key.

    Example::

        rng = derive_rng(42, "corruption", model_name, question_id)
    """
    return random.Random(derive_seed(base_seed, *key_parts))
