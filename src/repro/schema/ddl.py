"""DDL rendering for :class:`~repro.schema.model.DatabaseSchema`.

Two consumers:

* the DB engine materializes schemas into SQLite with :func:`render_schema_ddl`;
* prompt construction renders per-table ``CREATE TABLE`` text in the
  SQL-style prompt format the paper's Figure 10 shows (optionally with
  BRIDGE-style value comments appended per column, Figure 15).
"""

from __future__ import annotations

from repro.schema.model import DatabaseSchema, Table


def render_create_table(
    schema: DatabaseSchema,
    table: Table,
    value_comments: dict[str, list[str]] | None = None,
    include_foreign_keys: bool = True,
) -> str:
    """Render one ``CREATE TABLE`` statement.

    Args:
        schema: Owning schema (used to locate foreign keys).
        table: Table to render.
        value_comments: Optional map ``column_name -> sample values`` that is
            rendered as trailing comments, mirroring the "Clear Schema with
            DB Content" prompt of SuperSQL (paper Figure 15).
        include_foreign_keys: Whether to emit FOREIGN KEY clauses.
    """
    lines = [f"CREATE TABLE {table.name} ("]
    body: list[str] = []
    for column in table.columns:
        parts = [f"  {column.name} {column.col_type.sqlite_affinity.lower()}"]
        if column.is_primary_key and len(table.primary_key_columns) == 1:
            parts.append("primary key")
        declaration = " ".join(parts)
        if value_comments and column.name in value_comments:
            values = ", ".join(str(v) for v in value_comments[column.name])
            declaration += f" -- values: {values}"
        body.append(declaration)
    pk_columns = table.primary_key_columns
    if len(pk_columns) > 1:
        names = ", ".join(column.name for column in pk_columns)
        body.append(f"  primary key ({names})")
    if include_foreign_keys:
        for fk in schema.foreign_keys:
            if fk.source_table.lower() == table.name.lower():
                body.append(
                    f"  foreign key ({fk.source_column}) references "
                    f"{fk.target_table}({fk.target_column})"
                )
    lines.append(",\n".join(body))
    lines.append(")")
    return "\n".join(lines)


def render_schema_ddl(
    schema: DatabaseSchema,
    value_comments: dict[str, dict[str, list[str]]] | None = None,
    include_foreign_keys: bool = True,
    tables: list[str] | None = None,
) -> str:
    """Render the full schema as concatenated ``CREATE TABLE`` statements.

    Args:
        schema: Schema to render.
        value_comments: Optional ``table -> column -> values`` comment map.
        include_foreign_keys: Whether to emit FOREIGN KEY clauses.
        tables: Optional subset of table names to render (schema-linking
            output); defaults to all tables in schema order.
    """
    selected = schema.tables
    if tables is not None:
        wanted = {name.lower() for name in tables}
        selected = [table for table in schema.tables if table.name.lower() in wanted]
    statements = [
        render_create_table(
            schema,
            table,
            value_comments=(value_comments or {}).get(table.name),
            include_foreign_keys=include_foreign_keys,
        )
        for table in selected
    ]
    return "\n\n".join(statements)
