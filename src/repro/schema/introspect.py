"""Reverse-engineer a :class:`DatabaseSchema` from a live SQLite connection.

This closes the loop between the generated DDL and the in-memory model and
lets NL2SQL360 evaluate against user-supplied SQLite databases, the way the
original testbed ingests the Spider/BIRD database folders.
"""

from __future__ import annotations

import sqlite3

from repro.schema.model import Column, ColumnType, DatabaseSchema, ForeignKey, Table

_TYPE_MAP = {
    "TEXT": ColumnType.TEXT,
    "INTEGER": ColumnType.INTEGER,
    "INT": ColumnType.INTEGER,
    "REAL": ColumnType.REAL,
    "NUMERIC": ColumnType.REAL,
    "DATE": ColumnType.DATE,
    "BOOLEAN": ColumnType.BOOLEAN,
}


def _column_type(declared: str) -> ColumnType:
    upper = declared.strip().upper()
    for key, col_type in _TYPE_MAP.items():
        if key in upper:
            return col_type
    return ColumnType.TEXT


def schema_from_sqlite(connection: sqlite3.Connection, db_id: str, domain: str = "general") -> DatabaseSchema:
    """Build a :class:`DatabaseSchema` by introspecting ``connection``.

    Reads ``sqlite_master`` for table names and uses the ``table_info`` /
    ``foreign_key_list`` pragmas for columns, primary keys, and FK edges.
    """
    cursor = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY rowid"
    )
    table_names = [row[0] for row in cursor.fetchall()]

    tables: list[Table] = []
    foreign_keys: list[ForeignKey] = []
    for table_name in table_names:
        columns: list[Column] = []
        for _, name, declared, _notnull, _default, pk_index in connection.execute(
            f'PRAGMA table_info("{table_name}")'
        ):
            columns.append(
                Column(
                    name=name,
                    col_type=_column_type(declared or ""),
                    is_primary_key=bool(pk_index),
                )
            )
        tables.append(Table(name=table_name, columns=columns))
        for row in connection.execute(f'PRAGMA foreign_key_list("{table_name}")'):
            # row: (id, seq, target_table, from_col, to_col, ...)
            _, _, target_table, from_col, to_col = row[0], row[1], row[2], row[3], row[4]
            foreign_keys.append(
                ForeignKey(
                    source_table=table_name,
                    source_column=from_col,
                    target_table=target_table,
                    target_column=to_col or from_col,
                )
            )
    return DatabaseSchema(db_id=db_id, tables=tables, foreign_keys=foreign_keys, domain=domain)
