"""In-memory model of a relational database schema.

This is the substrate every other subsystem builds on: the data generator
creates :class:`DatabaseSchema` objects, the SQL toolkit resolves column
references against them, schema linking ranks their elements, and the
DB engine materializes them into SQLite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SchemaError
from repro.utils.text import normalize_identifier


class ColumnType(str, Enum):
    """SQL column types supported by the toolkit (SQLite affinity names)."""

    TEXT = "text"
    INTEGER = "int"
    REAL = "real"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def sqlite_affinity(self) -> str:
        """Return the SQLite type name used in DDL."""
        return {
            ColumnType.TEXT: "TEXT",
            ColumnType.INTEGER: "INTEGER",
            ColumnType.REAL: "REAL",
            ColumnType.DATE: "TEXT",
            ColumnType.BOOLEAN: "INTEGER",
        }[self]

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.REAL)


@dataclass(frozen=True)
class Column:
    """A single column.

    Attributes:
        name: The physical column name (e.g. ``airport_code``).
        col_type: Logical type used for value generation and NL rendering.
        natural_name: Human phrase the NL generator uses ("airport code").
        is_primary_key: True if this column is (part of) the primary key.
    """

    name: str
    col_type: ColumnType = ColumnType.TEXT
    natural_name: str = ""
    is_primary_key: bool = False

    @property
    def display_name(self) -> str:
        """Return the natural-language phrase for this column."""
        return self.natural_name or normalize_identifier(self.name)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge: ``source_table.source_column -> target_table.target_column``."""

    source_table: str
    source_column: str
    target_table: str
    target_column: str

    def as_tuple(self) -> tuple[str, str, str, str]:
        return (self.source_table, self.source_column, self.target_table, self.target_column)


@dataclass
class Table:
    """A table: name, columns, and a natural-language display name."""

    name: str
    columns: list[Column] = field(default_factory=list)
    natural_name: str = ""

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            key = column.name.lower()
            if key in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(key)

    @property
    def display_name(self) -> str:
        return self.natural_name or normalize_identifier(self.name)

    @property
    def primary_key_columns(self) -> list[Column]:
        return [column for column in self.columns if column.is_primary_key]

    def column(self, name: str) -> Column:
        """Return the column with ``name`` (case-insensitive)."""
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)


@dataclass
class DatabaseSchema:
    """A full database schema with tables, foreign keys, and a domain label.

    The ``domain`` label drives the paper's Exp-4 (domain adaptation): both
    Spider-like and BIRD-like synthetic benchmarks tag each database with
    one of 33 domains.
    """

    db_id: str
    tables: list[Table] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    domain: str = "general"
    # Dataset-level intrinsic difficulty (0 = Spider-like; ~1 = BIRD-like:
    # messier schemas and questions needing external knowledge).
    ambient_difficulty: float = 0.0

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for table in self.tables:
            key = table.name.lower()
            if key in seen:
                raise SchemaError(f"duplicate table {table.name!r} in database {self.db_id!r}")
            seen.add(key)
        for fk in self.foreign_keys:
            self._validate_fk(fk)

    def _validate_fk(self, fk: ForeignKey) -> None:
        source = self.table(fk.source_table)
        target = self.table(fk.target_table)
        if not source.has_column(fk.source_column):
            raise SchemaError(f"FK source column {fk.source_table}.{fk.source_column} missing")
        if not target.has_column(fk.target_column):
            raise SchemaError(f"FK target column {fk.target_table}.{fk.target_column} missing")

    @property
    def table_names(self) -> list[str]:
        return [table.name for table in self.tables]

    def table(self, name: str) -> Table:
        """Return the table with ``name`` (case-insensitive)."""
        lowered = name.lower()
        for table in self.tables:
            if table.name.lower() == lowered:
                return table
        raise SchemaError(f"database {self.db_id!r} has no table {name!r}")

    def has_table(self, name: str) -> bool:
        lowered = name.lower()
        return any(table.name.lower() == lowered for table in self.tables)

    def columns_of(self, table_name: str) -> list[Column]:
        return list(self.table(table_name).columns)

    def all_columns(self) -> list[tuple[str, Column]]:
        """Return all (table_name, column) pairs in schema order."""
        return [(table.name, column) for table in self.tables for column in table.columns]

    def foreign_keys_between(self, table_a: str, table_b: str) -> list[ForeignKey]:
        """Return FK edges connecting two tables, in either direction."""
        a, b = table_a.lower(), table_b.lower()
        return [
            fk
            for fk in self.foreign_keys
            if {fk.source_table.lower(), fk.target_table.lower()} == {a, b}
        ]

    def join_path(self, tables: list[str]) -> list[ForeignKey]:
        """Return FK edges forming a join tree over ``tables``.

        Uses a greedy spanning-tree construction over the FK graph.  Raises
        :class:`SchemaError` if the tables are not FK-connected.
        """
        if len(tables) <= 1:
            return []
        remaining = [name.lower() for name in tables[1:]]
        connected = {tables[0].lower()}
        edges: list[ForeignKey] = []
        while remaining:
            progressed = False
            for candidate in list(remaining):
                for anchor in list(connected):
                    fks = self.foreign_keys_between(anchor, candidate)
                    if fks:
                        edges.append(fks[0])
                        connected.add(candidate)
                        remaining.remove(candidate)
                        progressed = True
                        break
                if progressed:
                    break
            if not progressed:
                raise SchemaError(
                    f"tables {tables} are not connected by foreign keys in {self.db_id!r}"
                )
        return edges
