"""Relational schema model: tables, columns, keys, DDL, and statistics."""

from repro.schema.model import Column, ColumnType, DatabaseSchema, ForeignKey, Table
from repro.schema.ddl import render_create_table, render_schema_ddl
from repro.schema.introspect import schema_from_sqlite
from repro.schema.stats import SchemaStatistics, corpus_statistics, schema_statistics

__all__ = [
    "Column",
    "ColumnType",
    "DatabaseSchema",
    "ForeignKey",
    "Table",
    "render_create_table",
    "render_schema_ddl",
    "schema_from_sqlite",
    "SchemaStatistics",
    "corpus_statistics",
    "schema_statistics",
]
