"""Schema statistics in the format of the paper's Table 2.

Table 2 reports, per dataset split, the min/max/avg of: tables per DB,
columns per DB, columns per table, primary keys per DB, and foreign keys
per DB.  :func:`corpus_statistics` computes exactly those aggregates over
a collection of schemas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.model import DatabaseSchema


@dataclass(frozen=True)
class MinMaxAvg:
    """A (min, max, avg) triple as reported in Table 2."""

    minimum: float
    maximum: float
    average: float

    def as_row(self) -> tuple[float, float, float]:
        return (self.minimum, self.maximum, round(self.average, 1))


def _summarize(values: list[float]) -> MinMaxAvg:
    if not values:
        return MinMaxAvg(0.0, 0.0, 0.0)
    return MinMaxAvg(min(values), max(values), sum(values) / len(values))


@dataclass(frozen=True)
class SchemaStatistics:
    """Per-database raw counts feeding the Table 2 aggregates."""

    db_id: str
    num_tables: int
    num_columns: int
    columns_per_table: float
    num_primary_keys: int
    num_foreign_keys: int


def schema_statistics(schema: DatabaseSchema) -> SchemaStatistics:
    """Compute the raw Table 2 counts for a single database."""
    num_tables = len(schema.tables)
    num_columns = sum(len(table.columns) for table in schema.tables)
    num_pks = sum(len(table.primary_key_columns) for table in schema.tables)
    return SchemaStatistics(
        db_id=schema.db_id,
        num_tables=num_tables,
        num_columns=num_columns,
        columns_per_table=num_columns / num_tables if num_tables else 0.0,
        num_primary_keys=num_pks,
        num_foreign_keys=len(schema.foreign_keys),
    )


def corpus_statistics(schemas: list[DatabaseSchema]) -> dict[str, MinMaxAvg]:
    """Compute Table 2 aggregates over a corpus of database schemas.

    Returns a dict with keys ``tables_per_db``, ``columns_per_db``,
    ``columns_per_table``, ``pks_per_db``, ``fks_per_db``.
    """
    rows = [schema_statistics(schema) for schema in schemas]
    return {
        "tables_per_db": _summarize([float(row.num_tables) for row in rows]),
        "columns_per_db": _summarize([float(row.num_columns) for row in rows]),
        "columns_per_table": _summarize([row.columns_per_table for row in rows]),
        "pks_per_db": _summarize([float(row.num_primary_keys) for row in rows]),
        "fks_per_db": _summarize([float(row.num_foreign_keys) for row in rows]),
    }
