"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the subsystems: SQL parsing, database execution, data generation,
model simulation, and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SQLError(ReproError):
    """Base class for SQL toolkit errors."""


class SQLTokenizeError(SQLError):
    """Raised when the SQL tokenizer encounters an invalid character."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class SQLParseError(SQLError):
    """Raised when the SQL parser cannot build an AST."""


class NatSQLError(SQLError):
    """Raised when a query cannot be represented in (or decoded from) NatSQL."""


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions (duplicate names, bad FKs)."""


class ExecutionError(ReproError):
    """Raised when executing SQL against a database fails."""

    def __init__(self, message: str, sql: str = "") -> None:
        super().__init__(message)
        self.sql = sql


class ExecutionTimeout(ExecutionError):
    """Raised when a query exceeds its execution time budget."""


class DataGenerationError(ReproError):
    """Raised when synthetic benchmark generation hits an invalid state."""


class ModelError(ReproError):
    """Raised for simulated language model misuse (e.g. fine-tuning an API model)."""


class EvaluationError(ReproError):
    """Raised for invalid evaluation configurations."""


class DesignSpaceError(ReproError):
    """Raised for invalid design-space configurations in NL2SQL360-AAS."""


class ServeError(ReproError):
    """Base class for online serving-engine errors."""


class ServeTimeout(ServeError):
    """Raised when waiting on a served response exceeds the caller's budget.

    Deadline expiry on the *request* never raises — it resolves the
    request with a typed ``TIMEOUT`` response; this exception covers only
    an explicit wait budget passed to ``ServeFuture.response(timeout=…)``.
    """


class ServeOverloaded(ServeError):
    """Raised when a request is submitted to an engine past admission capacity."""


class GatewayError(ServeError):
    """Raised for sharded-gateway failures (dead worker, bad op, closed gateway)."""
