"""Timed execution for the Valid Efficiency Score (VES).

BIRD's VES weighs each correctly-answered example by
``sqrt(T_gold / T_pred)`` — the relative runtime of the ground-truth query
versus the predicted query.  We time repeated executions with
``time.perf_counter`` and take the minimum to damp scheduler noise (the
minimum is the standard noise-robust estimator for micro timings: noise
only ever adds time).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.dbengine.database import Database
from repro.dbengine.executor import ExecutionResult, execute_sql


@dataclass(frozen=True)
class TimedExecution:
    """An execution result plus its minimum wall-clock runtime in seconds."""

    result: ExecutionResult
    seconds: float


def timed_execute(
    database: Database,
    sql: str,
    repeats: int = 3,
    timeout_ms: int | None = 2_000,
) -> TimedExecution:
    """Execute ``sql`` ``repeats`` times; return result and minimum runtime."""
    # Warm-up run: puts pages in SQLite's cache so the timed runs below
    # compare plans, not cold-cache effects.
    result = execute_sql(database, sql, timeout_ms=timeout_ms)
    if not result.ok:
        return TimedExecution(result=result, seconds=1e-9)
    timings: list[float] = []
    for __ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = execute_sql(database, sql, timeout_ms=timeout_ms)
        timings.append(time.perf_counter() - start)
        if not result.ok:
            break
    # Minimum is the standard noise-robust estimator for micro timings.
    return TimedExecution(result=result, seconds=max(min(timings), 1e-9))


def ves_ratio(gold_seconds: float, predicted_seconds: float) -> float:
    """BIRD's per-example efficiency weight: sqrt(T_gold / T_pred)."""
    gold_seconds = max(gold_seconds, 1e-9)
    predicted_seconds = max(predicted_seconds, 1e-9)
    return math.sqrt(gold_seconds / predicted_seconds)
