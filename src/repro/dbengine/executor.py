"""Safe SQL execution and execution-accuracy result comparison.

Execution Accuracy (EX) — the paper's headline metric — holds when the
predicted query's *result set* equals the gold query's result set.
Following the Spider evaluation, comparison is order-insensitive unless
the gold query has an ORDER BY clause, and float values are compared with
a small tolerance.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dbengine.pool import pooling_enabled
from repro.errors import ExecutionError, ExecutionTimeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (type-only)
    from repro.dbengine.database import Database

_FLOAT_TOLERANCE = 1e-6
_DEFAULT_MAX_ROWS = 100_000


@dataclass
class ExecutionResult:
    """Outcome of executing one SQL query.

    ``truncated`` marks results cut off at the executor's ``max_rows``
    cap: the visible rows are only a prefix of the true result, so two
    truncated results agreeing row-for-row proves nothing about the full
    result sets.
    """

    rows: list[tuple] = field(default_factory=list)
    error: str | None = None
    sql: str = ""
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def __len__(self) -> int:
        return len(self.rows)


def run_readonly_sqlite(
    connection: sqlite3.Connection,
    sql: str,
    max_rows: int,
    timeout_ms: int | None,
) -> ExecutionResult:
    """Run ``sql`` on a connection the caller holds exclusively.

    The connection must already reject writes (``PRAGMA query_only``);
    the caller guarantees no other thread touches it while the progress
    handler is installed.
    """
    if timeout_ms is not None:
        budget = {"ticks": max(timeout_ms, 1) * 500}

        def _tick() -> int:
            budget["ticks"] -= 1
            return 1 if budget["ticks"] <= 0 else 0

        connection.set_progress_handler(_tick, 1_000)
    try:
        cursor = connection.execute(sql)
        try:
            rows = cursor.fetchmany(max_rows + 1)
        finally:
            # Reset the statement: a lingering active cursor would block
            # the next backup-refresh of a pooled replica.
            cursor.close()
        truncated = len(rows) > max_rows
        if truncated:
            rows = rows[:max_rows]
        return ExecutionResult(
            rows=[tuple(row) for row in rows], sql=sql, truncated=truncated
        )
    except sqlite3.OperationalError as exc:
        if "interrupted" in str(exc).lower():
            return ExecutionResult(error=f"timeout: {exc}", sql=sql)
        return ExecutionResult(error=str(exc), sql=sql)
    except sqlite3.Error as exc:
        return ExecutionResult(error=str(exc), sql=sql)
    finally:
        if timeout_ms is not None:
            connection.set_progress_handler(None, 0)
        # A failed DML (e.g. a mutating candidate rejected by query_only)
        # leaves the implicit transaction open; a replica stuck in a
        # transaction would refuse the next backup-refresh.
        if connection.in_transaction:
            connection.rollback()


#: Back-compat alias; the canonical name says which engine it serves.
_run_readonly = run_readonly_sqlite


def execute_sql(
    database: Database,
    sql: str,
    max_rows: int = _DEFAULT_MAX_ROWS,
    timeout_ms: int | None = 2_000,
) -> ExecutionResult:
    """Execute ``sql`` read-only and return rows or a captured error.

    Dispatches to the database's
    :class:`~repro.dbengine.backends.ExecutionBackend`.  Errors are
    captured in the result rather than raised so that evaluation loops
    can score failing predictions as simply incorrect, and a bounded
    interrupt (progress handler on SQLite, timer-driven ``interrupt()``
    on DuckDB) caps runaway queries.

    Read-only is enforced, not assumed: on the default SQLite backend
    the query runs against a pooled replica connection with ``PRAGMA
    query_only`` set once at creation (see :mod:`repro.dbengine.pool`);
    on DuckDB a statement guard rejects writes with the identical error
    string.  Either way a mutating candidate fails and executions are
    pure given the database content — a prerequisite for the
    ``data_version``-keyed memo in :func:`execute_sql_cached` — and the
    cached and uncached paths fail such candidates identically.  With
    :func:`~repro.dbengine.pool.pooling_disabled` the backend's legacy
    serialized path (shared connection under ``Database.lock``) is used
    instead; results are bit-identical either way.
    """
    return database.backend.execute_readonly(
        sql, max_rows=max_rows, timeout_ms=timeout_ms, serialized=not pooling_enabled()
    )


def execute_sql_cached(
    database: Database,
    sql: str,
    max_rows: int = _DEFAULT_MAX_ROWS,
    timeout_ms: int | None = 2_000,
) -> ExecutionResult:
    """Execute via a bounded per-database LRU over candidate executions.

    Post-processing (self-consistency voting, execution-guided selection,
    reranking, self-correction probes) repeatedly executes near-duplicate
    candidate SQL against the same database; :func:`execute_sql` enforces
    ``PRAGMA query_only``, so results are pure given the database content
    (a mutating candidate fails instead of silently invalidating the
    memo) and they are memoized per live :class:`Database`
    keyed on ``(data_version, sql, max_rows, timeout_ms)`` —
    ``data_version`` advances on every mutation, invalidating stale
    entries.  Callers must not mutate the returned result.
    """
    from repro.utils.cache import caches_enabled, per_object_cache

    if not caches_enabled():
        return execute_sql(database, sql, max_rows=max_rows, timeout_ms=timeout_ms)
    cache = per_object_cache(database, "candidate_exec", maxsize=512)
    key = (database.data_version, sql, max_rows, timeout_ms)
    hit, result = cache.lookup(key)
    if hit:
        from repro.obs.trace import get_tracer

        get_tracer().annotate_stage(memo_hits=1)
        return result
    result = execute_sql(database, sql, max_rows=max_rows, timeout_ms=timeout_ms)
    cache.put(key, result)
    return result


def execute_sql_strict(database: Database, sql: str, **kwargs: object) -> ExecutionResult:
    """Like :func:`execute_sql` but raises on failure."""
    result = execute_sql(database, sql, **kwargs)  # type: ignore[arg-type]
    if not result.ok:
        if result.error and result.error.startswith("timeout"):
            raise ExecutionTimeout(result.error, sql)
        raise ExecutionError(result.error or "unknown execution error", sql)
    return result


def _normalize_cell(value: object) -> object:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return round(value, 6)
    return value


def _normalize_rows(rows: list[tuple], ordered: bool) -> list[tuple]:
    normalized = [tuple(_normalize_cell(cell) for cell in row) for row in rows]
    if ordered:
        return normalized
    return sorted(normalized, key=repr)


def results_match(
    predicted: ExecutionResult,
    gold: ExecutionResult,
    order_matters: bool = False,
) -> bool:
    """Return True iff both executions succeeded and produce equal results."""
    if not predicted.ok or not gold.ok:
        return False
    if predicted.truncated or gold.truncated:
        # A truncated result is a silent prefix of a larger set: two
        # truncated results agreeing row-for-row proves nothing, and a
        # truncated result matching an untruncated one of the same visible
        # length has a provably larger true row count.  Refuse both.
        return False
    if len(predicted.rows) != len(gold.rows):
        return False
    left = _normalize_rows(predicted.rows, order_matters)
    right = _normalize_rows(gold.rows, order_matters)
    if left == right:
        return True
    return _match_with_tolerance(left, right)


def _match_with_tolerance(left: list[tuple], right: list[tuple]) -> bool:
    if len(left) != len(right):
        return False
    for row_a, row_b in zip(left, right):
        if len(row_a) != len(row_b):
            return False
        for cell_a, cell_b in zip(row_a, row_b):
            if isinstance(cell_a, (int, float)) and isinstance(cell_b, (int, float)):
                if abs(float(cell_a) - float(cell_b)) > _FLOAT_TOLERANCE:
                    return False
            elif cell_a != cell_b:
                return False
    return True
