"""Database engine: materialization, safe execution, timing — pluggable.

Engines live behind the :class:`~repro.dbengine.backends.ExecutionBackend`
adapter (``sqlite`` default, ``duckdb`` optional).  On the SQLite
backend, reads run through a per-database pool of read-only replica
connections (:mod:`repro.dbengine.pool`); the legacy locked
shared-connection path remains available via :func:`pooling_disabled`
for equivalence testing.  See docs/BACKENDS.md.
"""

from repro.dbengine.backends import (
    BackendCapabilities,
    BackendUnavailableError,
    ExecutionBackend,
    available_backends,
    backend_available,
    create_backend,
    register_backend,
    registered_backends,
)
from repro.dbengine.database import Database, clone_database
from repro.dbengine.executor import ExecutionResult, execute_sql, results_match
from repro.dbengine.pool import (
    DEFAULT_POOL_SIZE,
    PoolStats,
    ReadConnectionPool,
    pooling_disabled,
    pooling_enabled,
    set_pooling_enabled,
)
from repro.dbengine.timing import TimedExecution, timed_execute, ves_ratio

__all__ = [
    "BackendCapabilities",
    "BackendUnavailableError",
    "Database",
    "ExecutionBackend",
    "ExecutionResult",
    "available_backends",
    "backend_available",
    "clone_database",
    "create_backend",
    "register_backend",
    "registered_backends",
    "execute_sql",
    "results_match",
    "TimedExecution",
    "timed_execute",
    "ves_ratio",
    "DEFAULT_POOL_SIZE",
    "PoolStats",
    "ReadConnectionPool",
    "pooling_disabled",
    "pooling_enabled",
    "set_pooling_enabled",
]
