"""SQLite-backed database engine: materialization, safe execution, timing."""

from repro.dbengine.database import Database
from repro.dbengine.executor import ExecutionResult, execute_sql, results_match
from repro.dbengine.timing import TimedExecution, timed_execute, ves_ratio

__all__ = [
    "Database",
    "ExecutionResult",
    "execute_sql",
    "results_match",
    "TimedExecution",
    "timed_execute",
    "ves_ratio",
]
