"""SQLite-backed database engine: materialization, safe execution, timing.

Reads run through a per-database pool of read-only replica connections
(:mod:`repro.dbengine.pool`); the legacy locked shared-connection path
remains available via :func:`pooling_disabled` for equivalence testing.
"""

from repro.dbengine.database import Database
from repro.dbengine.executor import ExecutionResult, execute_sql, results_match
from repro.dbengine.pool import (
    DEFAULT_POOL_SIZE,
    PoolStats,
    ReadConnectionPool,
    pooling_disabled,
    pooling_enabled,
    set_pooling_enabled,
)
from repro.dbengine.timing import TimedExecution, timed_execute, ves_ratio

__all__ = [
    "Database",
    "ExecutionResult",
    "execute_sql",
    "results_match",
    "TimedExecution",
    "timed_execute",
    "ves_ratio",
    "DEFAULT_POOL_SIZE",
    "PoolStats",
    "ReadConnectionPool",
    "pooling_disabled",
    "pooling_enabled",
    "set_pooling_enabled",
]
