"""Execution-backend benchmark: concurrent reads, refresh, columnar scans.

Measures what the backend adapter refactor is for — read throughput
under threads and scan cost on large synthetic tables — while gating
only on deterministic counters and digests, never wall-clock:

1. **Concurrent-read scaling**: one synthetic database per backend, a
   fixed seeded query mix replayed at 1/2/4 worker threads.  Gates:
   result digests bit-identical across thread counts *and* across
   backends, zero execution errors, and an exact checkout counter (one
   per query per pass).  Elapsed times and the speedup vs one thread
   are recorded for trend tracking only — a 1-CPU host cannot scale.
2. **Refresh under mutation**: a write through ``apply_write`` must
   bump ``data_version`` exactly once and be visible to the next read.
   On the SQLite replica pool the next checkout pays exactly one
   refresh; on a concurrent-read backend (DuckDB MVCC cursors) the
   refresh counter stays zero.  Both expectations are gated.
3. **Large-DB scan comparison**: aggregate scans over a wider/taller
   synthetic table on every available backend.  Gate: digests agree
   across backends.  Per-backend wall-clock (and the columnar engine's
   speedup, when installed) is recorded, never gated.

Backends that are not installed (typically ``duckdb``) are recorded as
``{"available": false}`` and every gate passes — the document stays
honest about what was measured without failing hermetic CI.

Usage::

    PYTHONPATH=src python scripts/bench_dbengine.py [--quick] \
        [--backends sqlite duckdb] [--out BENCH_dbengine.json]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from random import Random

from repro.dbengine.backends import backend_available, registered_backends
from repro.dbengine.database import Database
from repro.dbengine.executor import execute_sql
from repro.schema.model import Column, ColumnType, DatabaseSchema, Table

THREAD_COUNTS = (1, 2, 4)

_CATEGORIES = ("alpha", "beta", "gamma", "delta", "epsilon")
_REGIONS = ("north", "south", "east", "west")

# Integer-only aggregates on purpose: float summation order would make
# cross-backend digests flaky, and the digest gate is the whole point.
_QUERY_TEMPLATES = (
    "SELECT COUNT(*) FROM events WHERE bucket = {bucket}",
    "SELECT category, COUNT(*) FROM events WHERE bucket <= {bucket} "
    "GROUP BY category ORDER BY category",
    "SELECT SUM(amount_cents) FROM events WHERE category = '{category}'",
    "SELECT region, MIN(amount_cents), MAX(amount_cents) FROM events "
    "WHERE bucket >= {bucket} GROUP BY region ORDER BY region",
    "SELECT event_id, amount_cents FROM events WHERE bucket = {bucket} "
    "AND category = '{category}' ORDER BY event_id LIMIT 20",
)

_SCAN_QUERIES = (
    "SELECT category, region, COUNT(*), SUM(amount_cents) FROM events "
    "GROUP BY category, region ORDER BY category, region",
    "SELECT bucket, COUNT(*) FROM events GROUP BY bucket ORDER BY bucket",
    "SELECT COUNT(*) FROM events WHERE amount_cents > 500000",
    "SELECT MIN(amount_cents), MAX(amount_cents), SUM(amount_cents) "
    "FROM events",
)


def _events_schema() -> DatabaseSchema:
    return DatabaseSchema(
        db_id="bench_events",
        domain="general",
        tables=[
            Table(
                name="events",
                columns=[
                    Column("event_id", ColumnType.INTEGER, is_primary_key=True),
                    Column("bucket", ColumnType.INTEGER),
                    Column("category", ColumnType.TEXT),
                    Column("region", ColumnType.TEXT),
                    Column("amount_cents", ColumnType.INTEGER),
                ],
            )
        ],
    )


def build_events_database(backend: str, rows: int, seed: int) -> Database:
    """A seeded single-table database with ``rows`` events on ``backend``."""
    rng = Random(seed)
    database = Database(_events_schema(), backend=backend)
    batch = [
        (
            event_id,
            rng.randrange(16),
            rng.choice(_CATEGORIES),
            rng.choice(_REGIONS),
            rng.randrange(1_000_000),
        )
        for event_id in range(rows)
    ]
    database.insert_rows("events", batch)
    return database


def build_queries(count: int, seed: int) -> list[str]:
    """A seeded read-only query mix drawn from the template set."""
    rng = Random(seed + 1)
    return [
        rng.choice(_QUERY_TEMPLATES).format(
            bucket=rng.randrange(16), category=rng.choice(_CATEGORIES)
        )
        for _ in range(count)
    ]


def _result_digest(results) -> str:
    """Stable hash over ordered (rows, truncated, error) projections."""
    blob = repr([
        (result.rows, result.truncated, result.error) for result in results
    ])
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _run_pass(database: Database, queries: list[str], threads: int):
    """Execute ``queries`` across ``threads`` workers, preserving order."""
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        results = list(pool.map(lambda sql: execute_sql(database, sql), queries))
    return results, time.perf_counter() - start


def run_concurrent_stage(
    backend: str, rows: int, queries: list[str], seed: int
) -> dict:
    """Replay the query mix at each thread count on one backend."""
    database = build_events_database(backend, rows, seed)
    concurrent = database.backend.capabilities.concurrent_reads
    doc: dict = {
        "available": True,
        "rows": rows,
        "queries": len(queries),
        "concurrent_reads": concurrent,
        "snapshot_isolation": database.backend.capabilities.snapshot_isolation,
        "passes": {},
    }
    digests = set()
    checkouts_exact = True
    errors_total = 0
    try:
        for threads in THREAD_COUNTS:
            before = database.pool_stats()
            results, elapsed = _run_pass(database, queries, threads)
            after = database.pool_stats()
            checkouts = after["checkouts"] - before["checkouts"]
            errors = sum(1 for result in results if not result.ok)
            errors_total += errors
            if checkouts != len(queries):
                checkouts_exact = False
            digests.add(_result_digest(results))
            doc["passes"][str(threads)] = {
                "elapsed_s": round(elapsed, 4),
                "checkouts": checkouts,
                "waits": after["waits"] - before["waits"],
                "refreshes": after["refreshes"] - before["refreshes"],
                "errors": errors,
            }
        one = doc["passes"]["1"]["elapsed_s"]
        top = doc["passes"][str(THREAD_COUNTS[-1])]["elapsed_s"]
        doc["speedup_at_max_threads"] = round(one / top, 2) if top else 0.0
        doc["digest"] = sorted(digests)[0]
        doc["gates"] = {
            "digests_identical_across_threads": len(digests) == 1,
            "zero_errors": errors_total == 0,
            "checkouts_exact": checkouts_exact,
            # Concurrent-read backends never queue a reader behind a
            # replica; the SQLite pool may, so waits are only recorded.
            "no_waits_when_concurrent": (not concurrent)
            or all(p["waits"] == 0 for p in doc["passes"].values()),
        }
    finally:
        database.close()
    return doc


def run_refresh_stage(backend: str, seed: int) -> dict:
    """Gate data_version/refresh semantics around one ``apply_write``."""
    database = build_events_database(backend, rows=200, seed=seed)
    probe = "SELECT COUNT(*) FROM events WHERE category = 'alpha'"
    try:
        concurrent = database.backend.capabilities.concurrent_reads
        before_version = database.data_version
        first = execute_sql(database, probe)
        affected = database.apply_write(
            "UPDATE events SET category = 'alpha' WHERE category = 'beta'"
        )
        stats_before = database.pool_stats()
        second = execute_sql(database, probe)
        refreshes = database.pool_stats()["refreshes"] - stats_before["refreshes"]
        expected_refreshes = 0 if concurrent else 1
        return {
            "available": True,
            "affected_rows": affected,
            "version_delta": database.data_version - before_version,
            "rows_before": first.rows[0][0],
            "rows_after": second.rows[0][0],
            "refreshes_after_write": refreshes,
            "gates": {
                "version_bumped_once": database.data_version - before_version == 1,
                "write_visible_to_next_read": (
                    second.rows[0][0] == first.rows[0][0] + affected
                ),
                "refresh_counter_exact": refreshes == expected_refreshes,
            },
        }
    finally:
        database.close()


def run_scan_stage(backends: list[str], rows: int, seed: int) -> dict:
    """Aggregate scans on a large table; digest-gated across backends."""
    doc: dict = {"rows": rows, "queries": len(_SCAN_QUERIES), "backends": {}}
    digests = {}
    for backend in backends:
        if not backend_available(backend):
            doc["backends"][backend] = {"available": False}
            continue
        database = build_events_database(backend, rows, seed)
        try:
            start = time.perf_counter()
            results = [execute_sql(database, sql) for sql in _SCAN_QUERIES]
            elapsed = time.perf_counter() - start
        finally:
            database.close()
        digests[backend] = _result_digest(results)
        doc["backends"][backend] = {
            "available": True,
            "elapsed_s": round(elapsed, 4),
            "errors": sum(1 for result in results if not result.ok),
            "digest": digests[backend],
        }
    measured = [b for b in backends if doc["backends"][b].get("available")]
    if "sqlite" in digests and "duckdb" in digests:
        sqlite_s = doc["backends"]["sqlite"]["elapsed_s"]
        duckdb_s = doc["backends"]["duckdb"]["elapsed_s"]
        doc["duckdb_speedup_vs_sqlite"] = (
            round(sqlite_s / duckdb_s, 2) if duckdb_s else 0.0
        )
    doc["gates"] = {
        "digests_identical_across_backends": len(set(digests.values())) <= 1,
        "zero_errors": all(
            doc["backends"][b]["errors"] == 0 for b in measured
        ),
    }
    return doc


def run_bench(
    rows: int = 20_000,
    scan_rows: int = 120_000,
    query_count: int = 200,
    seed: int = 42,
    backends: tuple[str, ...] = ("sqlite", "duckdb"),
    quick: bool = False,
) -> dict:
    """Run all stages; returns the result document."""
    queries = build_queries(query_count, seed)
    result: dict = {
        "quick": quick,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "thread_counts": list(THREAD_COUNTS),
        "registered_backends": registered_backends(),
        "concurrent_reads": {},
        "refresh": {},
    }
    cross_digests = {}
    for backend in backends:
        if not backend_available(backend):
            result["concurrent_reads"][backend] = {"available": False}
            result["refresh"][backend] = {"available": False}
            continue
        stage = run_concurrent_stage(backend, rows, queries, seed)
        result["concurrent_reads"][backend] = stage
        cross_digests[backend] = stage["digest"]
        result["refresh"][backend] = run_refresh_stage(backend, seed)
    result["cross_backend_digest_identical"] = len(set(cross_digests.values())) <= 1
    result["scan"] = run_scan_stage(list(backends), scan_rows, seed)
    return result


def collect_gate_failures(result: dict) -> list[str]:
    """Every failed deterministic gate in the document, as messages."""
    problems = []
    for stage_name in ("concurrent_reads", "refresh"):
        for backend, doc in result[stage_name].items():
            for gate, passed in doc.get("gates", {}).items():
                if not passed:
                    problems.append(f"{stage_name}[{backend}]: {gate} failed")
    for gate, passed in result["scan"]["gates"].items():
        if not passed:
            problems.append(f"scan: {gate} failed")
    if not result["cross_backend_digest_identical"]:
        problems.append(
            "concurrent_reads: backends disagree on the query-mix digest"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="execution backend benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small tables and query mix for CI smoke")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rows", type=int, default=None,
                        help="events rows for the concurrent-read stage")
    parser.add_argument("--scan-rows", type=int, default=None,
                        help="events rows for the large-scan stage")
    parser.add_argument("--queries", type=int, default=None,
                        help="query-mix size per pass")
    parser.add_argument("--backends", nargs="+", default=["sqlite", "duckdb"],
                        help="engines to measure (unavailable ones are "
                             "recorded, not failed)")
    parser.add_argument("--out", default="BENCH_dbengine.json")
    args = parser.parse_args(argv)

    if args.quick:
        defaults = {"rows": 2_000, "scan_rows": 10_000, "queries": 60}
    else:
        defaults = {"rows": 20_000, "scan_rows": 120_000, "queries": 200}
    result = run_bench(
        rows=args.rows if args.rows is not None else defaults["rows"],
        scan_rows=(
            args.scan_rows if args.scan_rows is not None
            else defaults["scan_rows"]
        ),
        query_count=(
            args.queries if args.queries is not None else defaults["queries"]
        ),
        seed=args.seed,
        backends=tuple(args.backends),
        quick=args.quick,
    )
    problems = collect_gate_failures(result)
    result["gates_ok"] = not problems
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")

    measured = [
        backend
        for backend, doc in result["concurrent_reads"].items()
        if doc.get("available")
    ]
    if problems:
        for problem in problems:
            print(f"bench_dbengine: GATE FAILED — {problem}")
        return 1
    print(
        "bench_dbengine: OK — backends "
        + ", ".join(
            f"{b} ({result['concurrent_reads'][b]['speedup_at_max_threads']}x "
            f"at {THREAD_COUNTS[-1]} threads)"
            for b in measured
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
