"""Pluggable execution backends for :class:`~repro.dbengine.Database`.

Importing this package registers the built-in engines: ``sqlite``
(always available, replica-pool reads) and ``duckdb`` (optional
dependency, MVCC concurrent reads + columnar scans).  See
docs/BACKENDS.md for the adapter contract and how to add an engine.
"""

from repro.dbengine.backends.base import (
    BackendCapabilities,
    BackendUnavailableError,
    ExecutionBackend,
    available_backends,
    backend_available,
    create_backend,
    register_backend,
    registered_backends,
)
from repro.dbengine.backends.duckdb import DuckDBBackend, duckdb_available
from repro.dbengine.backends.sqlite import SQLiteBackend

__all__ = [
    "BackendCapabilities",
    "BackendUnavailableError",
    "ExecutionBackend",
    "SQLiteBackend",
    "DuckDBBackend",
    "available_backends",
    "backend_available",
    "create_backend",
    "duckdb_available",
    "register_backend",
    "registered_backends",
]
