"""The DuckDB execution backend — columnar storage with true MVCC reads.

DuckDB is an *optional* dependency: this module imports cleanly without
the package (the registry probe reports it unavailable and every DuckDB
test skips), so tier-1 stays hermetic.  When present, the backend
serves concurrent reads from per-thread cursors over one shared store —
DuckDB cursors are full MVCC connections, so readers see a consistent
snapshot without the per-thread replica copies SQLite needs — and runs
analytical scans column-at-a-time.

Contract notes:

* DuckDB has no ``PRAGMA query_only``, so read-only execution is
  enforced with a statement-first-keyword guard; a rejected write
  reports SQLite's exact ``"attempt to write a readonly database"``
  message so failure taxonomy and evaluation records stay
  backend-invariant.
* Timeouts use a :class:`threading.Timer` driving ``interrupt()`` on
  the executing cursor; an interrupted query reports a ``timeout:``
  error exactly like the SQLite progress-handler path.
* ``read_stats`` maps the pool vocabulary onto cursors: ``created``
  counts per-thread cursors opened, ``checkouts`` counts reads served;
  ``refreshes``/``waits`` stay zero (MVCC needs neither).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.dbengine.backends.base import (
    BackendCapabilities,
    ExecutionBackend,
    register_backend,
)
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (type-only)
    from repro.dbengine.executor import ExecutionResult

_READONLY_ERROR = "attempt to write a readonly database"

#: First keywords of statements the read-only executor will run.
_READONLY_KEYWORDS = frozenset(
    {"select", "with", "values", "describe", "show", "explain", "from"}
)

_available: bool | None = None


def duckdb_available() -> bool:
    """True when the ``duckdb`` package imports (probed once)."""
    global _available
    if _available is None:
        try:
            import duckdb  # noqa: F401

            _available = True
        except ImportError:
            _available = False
    return _available


def _first_keyword(sql: str) -> str:
    """The first bare keyword of ``sql``, skipping comments and parens."""
    text = sql.lstrip()
    while True:
        if text.startswith("--"):
            newline = text.find("\n")
            if newline < 0:
                return ""
            text = text[newline + 1 :].lstrip()
        elif text.startswith("/*"):
            end = text.find("*/")
            if end < 0:
                return ""
            text = text[end + 2 :].lstrip()
        elif text.startswith("("):
            text = text[1:].lstrip()
        else:
            break
    word = []
    for ch in text:
        if ch.isalpha() or ch == "_":
            word.append(ch)
        else:
            break
    return "".join(word).lower()


class DuckDBBackend(ExecutionBackend):
    """Columnar MVCC engine behind the ExecutionBackend adapter."""

    capabilities = BackendCapabilities(
        name="duckdb",
        dialect="duckdb",
        concurrent_reads=True,
        columnar=True,
        snapshot_isolation="mvcc",
        supports_backup=False,
    )

    def __init__(self, pool_size: int = 0) -> None:
        super().__init__()
        del pool_size  # MVCC reads need no replica pool
        self._connection = None
        self._local = threading.local()
        self._cursors: list[object] = []
        self._stats_lock = threading.Lock()
        self._stats = {"created": 0, "checkouts": 0, "refreshes": 0, "waits": 0}

    # -- lifecycle ------------------------------------------------------

    def connect(self, path: str | None) -> None:
        import duckdb

        self._connection = duckdb.connect(path) if path else duckdb.connect()

    def close(self) -> None:
        for cursor in self._cursors:
            try:
                cursor.close()
            except Exception:  # pragma: no cover - engine-version tolerant
                pass
        self._cursors.clear()
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    @property
    def connection(self) -> object:
        if self._connection is None:  # pragma: no cover - misuse guard
            raise ExecutionError("duckdb backend is not connected")
        return self._connection

    # -- schema / writes ------------------------------------------------

    def existing_tables(self) -> set[str]:
        rows = self.connection.execute(
            "SELECT table_name FROM information_schema.tables "
            "WHERE table_schema = 'main'"
        ).fetchall()
        return {row[0] for row in rows}

    def materialize(self, statements: Sequence[str]) -> None:
        for statement in statements:
            self.connection.execute(statement)

    def run(self, sql: str, params: Sequence[object] = ()) -> list[tuple]:
        cursor = self._execute(self.connection, sql, params)
        return [tuple(row) for row in cursor.fetchall()]

    @staticmethod
    def _execute(handle: object, sql: str, params: Sequence[object] = ()) -> object:
        if params:
            return handle.execute(sql, list(params))
        return handle.execute(sql)

    def apply_write(self, sql: str, params: Sequence[object] = ()) -> int:
        connection = self.connection
        try:
            connection.execute("BEGIN TRANSACTION")
            cursor = self._execute(connection, sql, params)
            affected = self._affected_rows(cursor)
            connection.execute("COMMIT")
        except Exception as exc:
            self._rollback(connection)
            raise ExecutionError(str(exc), sql) from exc
        return affected

    def insert_many(self, sql: str, rows: Iterable[Sequence[object]]) -> None:
        connection = self.connection
        try:
            connection.execute("BEGIN TRANSACTION")
            connection.executemany(sql, [list(row) for row in rows])
            connection.execute("COMMIT")
        except Exception as exc:
            self._rollback(connection)
            raise ExecutionError(str(exc), sql) from exc

    @staticmethod
    def _rollback(connection: object) -> None:
        try:
            connection.execute("ROLLBACK")
        except Exception:  # pragma: no cover - already out of transaction
            pass

    @staticmethod
    def _affected_rows(cursor: object) -> int:
        # DuckDB reports DML row counts as a one-row result ("Count").
        try:
            rows = cursor.fetchall()
        except Exception:  # pragma: no cover - engine-version tolerant
            return -1
        if len(rows) == 1 and len(rows[0]) == 1 and isinstance(rows[0][0], int):
            return rows[0][0]
        return -1

    # -- reads ----------------------------------------------------------

    def _thread_cursor(self) -> object:
        cursor = getattr(self._local, "cursor", None)
        if cursor is None:
            # cursor() opens a sibling MVCC connection over the same
            # store — the concurrent-read analogue of a pool replica.
            cursor = self.connection.cursor()
            self._local.cursor = cursor
            with self._stats_lock:
                self._stats["created"] += 1
                self._cursors.append(cursor)
        return cursor

    def execute_readonly(
        self,
        sql: str,
        max_rows: int,
        timeout_ms: int | None,
        serialized: bool = False,
    ) -> "ExecutionResult":
        from repro.dbengine.executor import ExecutionResult

        with self._stats_lock:
            self._stats["checkouts"] += 1
        if _first_keyword(sql) not in _READONLY_KEYWORDS:
            return ExecutionResult(error=_READONLY_ERROR, sql=sql)
        if serialized:
            # Equivalence path mirroring pooling_disabled(): serialize
            # on the database lock, still on a private cursor.
            with self.database.lock:
                return self._run_readonly(self._thread_cursor(), sql, max_rows, timeout_ms)
        return self._run_readonly(self._thread_cursor(), sql, max_rows, timeout_ms)

    def _run_readonly(
        self,
        cursor: object,
        sql: str,
        max_rows: int,
        timeout_ms: int | None,
    ) -> "ExecutionResult":
        from repro.dbengine.executor import ExecutionResult

        timer: threading.Timer | None = None
        interrupted = threading.Event()
        if timeout_ms is not None:

            def _interrupt() -> None:
                interrupted.set()
                try:
                    cursor.interrupt()
                except Exception:  # pragma: no cover - engine-version tolerant
                    pass

            timer = threading.Timer(max(timeout_ms, 1) / 1000.0, _interrupt)
            timer.daemon = True
            timer.start()
        try:
            result = self._execute(cursor, sql)
            rows = result.fetchmany(max_rows + 1)
            truncated = len(rows) > max_rows
            if truncated:
                rows = rows[:max_rows]
            return ExecutionResult(
                rows=[tuple(row) for row in rows], sql=sql, truncated=truncated
            )
        except Exception as exc:
            message = str(exc)
            if interrupted.is_set() or "interrupt" in message.lower():
                return ExecutionResult(error=f"timeout: {message}", sql=sql)
            return ExecutionResult(error=message, sql=sql)
        finally:
            if timer is not None:
                timer.cancel()
            self._rollback(cursor)

    def read_stats(self) -> dict[str, int]:
        with self._stats_lock:
            return dict(self._stats)


register_backend("duckdb", DuckDBBackend, available=duckdb_available)
