"""The SQLite execution backend — the default, always-available engine.

This is the pre-refactor ``Database`` behaviour moved behind the
:class:`~repro.dbengine.backends.base.ExecutionBackend` adapter, byte
for byte: one master connection (``check_same_thread=False``, foreign
keys on) guarded by ``Database.lock`` for writes, and reads served from
the per-database :class:`~repro.dbengine.pool.ReadConnectionPool` of
``:memory:`` replicas refreshed via the backup API whenever
``data_version`` advanced.  The ``serialized`` read path (used under
:func:`~repro.dbengine.pool.pooling_disabled`) toggles
``PRAGMA query_only`` on the shared master connection under the lock,
exactly as the legacy executor did.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.dbengine.backends.base import (
    BackendCapabilities,
    ExecutionBackend,
    register_backend,
)
from repro.dbengine.pool import DEFAULT_POOL_SIZE, ReadConnectionPool
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (type-only)
    from repro.dbengine.executor import ExecutionResult


class SQLiteBackend(ExecutionBackend):
    """Row-store engine with replica-pool snapshot reads."""

    capabilities = BackendCapabilities(
        name="sqlite",
        dialect="sqlite",
        concurrent_reads=False,
        columnar=False,
        snapshot_isolation="replica-pool",
        supports_backup=True,
    )

    def __init__(self, pool_size: int = DEFAULT_POOL_SIZE) -> None:
        super().__init__()
        self._pool_size = pool_size
        self._pool: ReadConnectionPool | None = None
        self._connection: sqlite3.Connection | None = None

    # -- lifecycle ------------------------------------------------------

    def connect(self, path: str | None) -> None:
        # check_same_thread=False lets the parallel evaluator's thread
        # pool share this connection; Database.lock serializes access.
        self._connection = sqlite3.connect(path or ":memory:", check_same_thread=False)
        self._connection.execute("PRAGMA foreign_keys = ON")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    @property
    def connection(self) -> sqlite3.Connection:
        if self._connection is None:  # pragma: no cover - misuse guard
            raise ExecutionError("sqlite backend is not connected")
        return self._connection

    # -- schema / writes ------------------------------------------------

    def existing_tables(self) -> set[str]:
        return {
            row[0]
            for row in self.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }

    def materialize(self, statements: Sequence[str]) -> None:
        self.connection.executescript(";\n\n".join(statements) + ";")
        self.connection.commit()

    def run(self, sql: str, params: Sequence[object] = ()) -> list[tuple]:
        cursor = self.connection.execute(sql, tuple(params))
        return [tuple(row) for row in cursor.fetchall()]

    def apply_write(self, sql: str, params: Sequence[object] = ()) -> int:
        try:
            cursor = self.connection.execute(sql, tuple(params))
            self.connection.commit()
        except sqlite3.Error as exc:
            self.connection.rollback()
            raise ExecutionError(str(exc), sql) from exc
        return cursor.rowcount

    def insert_many(self, sql: str, rows: Iterable[Sequence[object]]) -> None:
        try:
            self.connection.executemany(sql, rows)
            self.connection.commit()
        except sqlite3.Error as exc:
            # Roll back so a failed batch leaves no partial rows parked
            # in an open transaction for a later commit to publish.
            self.connection.rollback()
            raise ExecutionError(str(exc), sql) from exc

    # -- reads ----------------------------------------------------------

    def execute_readonly(
        self,
        sql: str,
        max_rows: int,
        timeout_ms: int | None,
        serialized: bool = False,
    ) -> "ExecutionResult":
        from repro.dbengine.executor import run_readonly_sqlite

        if not serialized:
            with self.read_pool().checkout() as connection:
                return run_readonly_sqlite(connection, sql, max_rows, timeout_ms)
        connection = self.connection
        # Legacy path: the database lock serializes concurrent executions
        # on the one shared connection — the PRAGMA toggle and
        # progress-handler install/remove must not interleave.
        with self.database.lock:
            connection.execute("PRAGMA query_only = ON")
            try:
                return run_readonly_sqlite(connection, sql, max_rows, timeout_ms)
            finally:
                connection.execute("PRAGMA query_only = OFF")

    def read_pool(self) -> ReadConnectionPool:
        with self.database.lock:
            if self._pool is None:
                self._pool = ReadConnectionPool(self.database, size=self._pool_size)
            return self._pool

    def read_stats(self) -> dict[str, int]:
        with self.database.lock:
            if self._pool is None:
                return super().read_stats()
            return self._pool.stats.as_dict()


register_backend("sqlite", SQLiteBackend)
