"""The ``ExecutionBackend`` adapter protocol and backend registry.

``Database`` is a facade: it owns the schema model, the ``lock``, the
monotonic ``data_version`` counter, and the mutation-listener fan-out,
while everything engine-specific — connections, DDL materialization,
writes, and read-only query execution — lives behind a narrow
:class:`ExecutionBackend` adapter.  Backends are registered by name in a
process-global registry with an availability probe, so optional engines
(DuckDB) degrade to "registered but unavailable" instead of breaking
imports when the package is absent.

Contract highlights (see docs/BACKENDS.md for the full rules):

* ``execute_readonly`` must *enforce* read-only execution, not assume
  it, and must report a rejected write with the exact SQLite error
  string ``"attempt to write a readonly database"`` so the repair
  taxonomy and evaluation records are backend-invariant.
* ``apply_write`` / ``insert_many`` commit on success and roll back on
  failure; a failed write must leave the engine with no partial state
  and the caller must not bump ``data_version`` for it.
* Backends never touch ``data_version`` themselves — the facade bumps
  it after a successful write and backends observe it (the SQLite
  replica pool refreshes stale snapshots; MVCC engines need no action).
* ``read_stats`` returns the deterministic ``created`` / ``checkouts``
  / ``refreshes`` / ``waits`` counters (all zero when a concept does
  not apply) that feed the ``pool_*`` metrics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.dbengine.pool import DEFAULT_POOL_SIZE
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (type-only)
    from repro.dbengine.database import Database
    from repro.dbengine.executor import ExecutionResult
    from repro.dbengine.pool import ReadConnectionPool


class BackendUnavailableError(ExecutionError):
    """Raised when a requested backend's engine package is not importable."""


@dataclass(frozen=True)
class BackendCapabilities:
    """Static capability flags advertised by an execution backend.

    ``concurrent_reads``
        True when the engine serves snapshot reads from many threads
        natively (MVCC) without per-thread replica copies.
    ``columnar``
        True for column-oriented storage where analytical scans are
        expected to beat a row store.
    ``snapshot_isolation``
        How a read sees a stable content version: ``"replica-pool"``
        (copy-on-refresh replicas keyed on ``data_version``), ``"mvcc"``
        (engine-native snapshots), or ``"locked"`` (serialized on the
        master connection).
    ``supports_backup``
        True when the engine exposes the ``sqlite3`` backup API used by
        the Spider-format export path.
    """

    name: str
    dialect: str
    concurrent_reads: bool
    columnar: bool
    snapshot_isolation: str
    supports_backup: bool


class ExecutionBackend(ABC):
    """Narrow adapter every execution engine implements.

    One backend instance is owned by exactly one :class:`Database`; the
    facade calls :meth:`bind` before :meth:`connect`.  Methods that read
    or write the master store (``run``, ``apply_write``,
    ``insert_many``) are called with ``Database.lock`` held;
    ``execute_readonly`` is called without it (unless ``serialized``)
    and must be safe from many threads at once.
    """

    capabilities: ClassVar[BackendCapabilities]

    def __init__(self) -> None:
        self._database: "Database | None" = None

    def bind(self, database: "Database") -> None:
        """Attach the owning facade (lock / data_version live there)."""
        self._database = database

    @property
    def database(self) -> "Database":
        if self._database is None:  # pragma: no cover - misuse guard
            raise ExecutionError("backend is not bound to a Database")
        return self._database

    # -- lifecycle ------------------------------------------------------

    @abstractmethod
    def connect(self, path: str | None) -> None:
        """Open the master store (in-memory when ``path`` is None)."""

    @abstractmethod
    def close(self) -> None:
        """Close the master connection and any read snapshots."""

    @property
    @abstractmethod
    def connection(self) -> object:
        """The engine-native master connection handle."""

    # -- schema / writes (caller holds Database.lock) -------------------

    @abstractmethod
    def existing_tables(self) -> set[str]:
        """Names of tables already materialized in the store."""

    @abstractmethod
    def materialize(self, statements: Sequence[str]) -> None:
        """Execute DDL statements and commit."""

    @abstractmethod
    def run(self, sql: str, params: Sequence[object] = ()) -> list[tuple]:
        """Run one master-side query and fetch all rows (introspection)."""

    @abstractmethod
    def apply_write(self, sql: str, params: Sequence[object] = ()) -> int:
        """Execute one DML statement and commit; roll back and raise
        :class:`~repro.errors.ExecutionError` on failure.  Returns the
        affected row count (or -1 when the engine cannot report it)."""

    @abstractmethod
    def insert_many(self, sql: str, rows: Iterable[Sequence[object]]) -> None:
        """Bulk-execute one INSERT and commit; roll back and raise on
        failure so a failed batch leaves no partial rows behind."""

    # -- reads ----------------------------------------------------------

    @abstractmethod
    def execute_readonly(
        self,
        sql: str,
        max_rows: int,
        timeout_ms: int | None,
        serialized: bool = False,
    ) -> "ExecutionResult":
        """Execute ``sql`` with writes rejected; never raises.

        ``serialized=True`` selects the legacy equivalence path that
        serializes on ``Database.lock`` (used under
        :func:`~repro.dbengine.pool.pooling_disabled`); results must be
        bit-identical either way.
        """

    def read_pool(self) -> "ReadConnectionPool":
        """The replica pool, for ``snapshot_isolation == "replica-pool"``."""
        raise ExecutionError(
            f"{self.capabilities.name} backend has no replica pool "
            f"(snapshot isolation: {self.capabilities.snapshot_isolation})"
        )

    def read_stats(self) -> dict[str, int]:
        """Deterministic read-path counters (PoolStats-shaped)."""
        return {"created": 0, "checkouts": 0, "refreshes": 0, "waits": 0}


# -- registry ------------------------------------------------------------

_FACTORIES: dict[str, Callable[[int], ExecutionBackend]] = {}
_PROBES: dict[str, Callable[[], bool]] = {}


def register_backend(
    name: str,
    factory: Callable[[int], ExecutionBackend],
    available: Callable[[], bool] = lambda: True,
) -> None:
    """Register ``factory(pool_size)`` under ``name`` with an availability probe."""
    _FACTORIES[name] = factory
    _PROBES[name] = available


def registered_backends() -> list[str]:
    """All registered backend names, available or not."""
    return sorted(_FACTORIES)


def backend_available(name: str) -> bool:
    """True when ``name`` is registered and its engine package imports."""
    probe = _PROBES.get(name)
    return bool(probe and probe())


def available_backends() -> list[str]:
    """Registered backends whose engine package is importable."""
    return [name for name in registered_backends() if backend_available(name)]


def create_backend(name: str, pool_size: int = DEFAULT_POOL_SIZE) -> ExecutionBackend:
    """Instantiate a registered backend; raise a typed error otherwise."""
    if name not in _FACTORIES:
        raise BackendUnavailableError(
            f"unknown execution backend {name!r} (registered: {', '.join(registered_backends())})"
        )
    if not backend_available(name):
        raise BackendUnavailableError(
            f"execution backend {name!r} is registered but unavailable "
            f"(engine package not installed; available: {', '.join(available_backends())})"
        )
    return _FACTORIES[name](pool_size)
