"""A populated database bound to a :class:`DatabaseSchema`.

``Database`` is an engine-agnostic facade: it owns the schema model,
the ``lock``, the monotonic ``data_version`` counter, the mutation
listeners, and the value caches used by BRIDGE-style DB-content
matching, while connections, DDL materialization, writes, and read-only
execution live behind a pluggable
:class:`~repro.dbengine.backends.ExecutionBackend` (``sqlite`` by
default; ``duckdb`` when the optional package is installed).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path

from repro.dbengine.backends.base import ExecutionBackend, create_backend
from repro.dbengine.pool import DEFAULT_POOL_SIZE, ReadConnectionPool
from repro.errors import ExecutionError, SchemaError
from repro.schema.ddl import render_schema_ddl
from repro.schema.model import ColumnType, DatabaseSchema


class Database:
    """A live database plus its in-memory schema model."""

    def __init__(
        self,
        schema: DatabaseSchema,
        path: str | Path | None = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        backend: str | ExecutionBackend = "sqlite",
    ) -> None:
        self.schema = schema
        self._path = str(path) if path is not None else None
        if isinstance(backend, str):
            backend = create_backend(backend, pool_size=pool_size)
        self.backend = backend
        self.backend.bind(self)
        self.lock = threading.RLock()
        self.backend.connect(self._path)
        self._create_tables()
        self._value_cache: dict[tuple[str, str, int], list[object]] = {}
        # Monotonic content-version counter; execution caches key on it so
        # any mutation invalidates every cached result for this database.
        self.data_version = 0
        # Callbacks fired (with (db_id, new_version)) after every
        # data_version bump; the serving response cache subscribes here.
        self._mutation_listeners: list[Callable[[str, int], None]] = []

    # -- lifecycle ------------------------------------------------------

    def _create_tables(self) -> None:
        if self.backend.existing_tables():
            return  # file-backed database already materialized
        ddl = render_schema_ddl(self.schema)
        statements = [part.strip() for part in ddl.split("\n\n") if part.strip()]
        self.backend.materialize(statements)

    def close(self) -> None:
        with self.lock:
            self.backend.close()

    @property
    def connection(self):  # noqa: ANN201 - engine-native handle
        """The backend's master connection (``sqlite3.Connection`` for
        the default backend).  Direct writers must call
        :meth:`mark_mutated` themselves."""
        return self.backend.connection

    @property
    def backend_name(self) -> str:
        """Registry name of the execution backend (e.g. ``"sqlite"``)."""
        return self.backend.capabilities.name

    def read_pool(self) -> ReadConnectionPool:
        """The lazily-created read-only replica pool for this database.

        Only meaningful for replica-pool backends (sqlite); MVCC
        backends raise — their reads need no replicas.
        """
        return self.backend.read_pool()

    def pool_stats(self) -> dict[str, int]:
        """Deterministic read-path counters (all zero before the first read)."""
        return self.backend.read_stats()

    def mark_mutated(self) -> None:
        """Record an out-of-band content mutation (e.g. a bulk restore).

        Bumps ``data_version`` and drops value caches, so execution memos
        and pooled replicas refresh before their next use, then notifies
        every registered mutation listener.  ``insert_rows`` and
        ``apply_write`` call this implicitly — strictly *after* their
        commit succeeded, so listeners never observe a version bump for
        a write that rolled back; callers writing through ``connection``
        directly (restores, migrations) must call it themselves.
        """
        with self.lock:
            self._value_cache.clear()
            self.data_version += 1
            version = self.data_version
            listeners = list(self._mutation_listeners)
        for callback in listeners:
            callback(self.db_id, version)

    def apply_write(self, sql: str, params: Sequence[object] = ()) -> int:
        """Execute one DML statement on the master connection and commit.

        The canonical write path for online mutations (the serving
        gateway routes ``/apply`` requests here): the statement runs
        under the database lock, commits, and then :meth:`mark_mutated`
        bumps ``data_version`` and notifies listeners so response caches
        and pooled replicas invalidate.  A failed write rolls back and
        raises without bumping the version or firing listeners — a
        rejected mutation must not invalidate response caches.  Returns
        the affected row count.
        """
        with self.lock:
            try:
                affected = self.backend.apply_write(sql, tuple(params))
            except ExecutionError as exc:
                raise ExecutionError(f"write failed on {self.db_id}: {exc}") from exc
        self.mark_mutated()
        return affected

    def add_mutation_listener(self, callback: Callable[[str, int], None]) -> None:
        """Subscribe ``callback(db_id, new_version)`` to content mutations.

        Listeners run on the mutating thread, after the version bump is
        visible; they must not acquire this database's lock (callers of
        ``insert_rows`` still hold it re-entrantly when they fire).
        """
        with self.lock:
            self._mutation_listeners.append(callback)

    def remove_mutation_listener(self, callback: Callable[[str, int], None]) -> None:
        """Unsubscribe a listener; unknown callbacks are ignored."""
        with self.lock:
            try:
                self._mutation_listeners.remove(callback)
            except ValueError:
                pass

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def db_id(self) -> str:
        return self.schema.db_id

    # -- loading --------------------------------------------------------

    def insert_rows(self, table_name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-insert rows into ``table_name``; returns the row count.

        The whole batch commits or rolls back as one unit: on failure no
        partial rows survive, ``data_version`` does not advance, and no
        mutation listener fires.
        """
        if not self.schema.has_table(table_name):
            raise SchemaError(f"unknown table {table_name!r}")
        columns = self.schema.table(table_name).columns
        placeholders = ", ".join("?" for __ in columns)
        column_names = ", ".join(column.name for column in columns)
        sql = f"INSERT INTO {table_name} ({column_names}) VALUES ({placeholders})"
        rows = list(rows)
        with self.lock:
            try:
                self.backend.insert_many(sql, rows)
            except ExecutionError as exc:
                raise ExecutionError(f"insert into {table_name} failed: {exc}", sql) from exc
            self.mark_mutated()
        return len(rows)

    def row_count(self, table_name: str) -> int:
        with self.lock:
            rows = self.backend.run(f"SELECT COUNT(*) FROM {table_name}")
            return int(rows[0][0])

    # -- content access (BRIDGE-style value matching) --------------------

    def column_values(self, table_name: str, column_name: str, limit: int = 2000) -> list[object]:
        """Return distinct values of a column (cached per requested limit)."""
        key = (table_name.lower(), column_name.lower(), int(limit))
        with self.lock:
            if key not in self._value_cache:
                rows = self.backend.run(
                    f"SELECT DISTINCT {column_name} FROM {table_name} LIMIT {int(limit)}"
                )
                self._value_cache[key] = [row[0] for row in rows]
            return self._value_cache[key]

    def text_columns(self) -> list[tuple[str, str]]:
        """Return (table, column) pairs for text-typed columns."""
        return [
            (table.name, column.name)
            for table in self.schema.tables
            for column in table.columns
            if column.col_type in (ColumnType.TEXT, ColumnType.DATE)
        ]

    def sample_values(self, table_name: str, column_name: str, count: int = 3) -> list[object]:
        """Return up to ``count`` example values for prompt comments."""
        values = self.column_values(table_name, column_name)
        return values[:count]


def clone_database(
    database: Database,
    backend: str,
    pool_size: int = DEFAULT_POOL_SIZE,
) -> Database:
    """Materialize ``database``'s schema and content on another backend.

    Used by the cross-engine differential oracle: the clone starts at
    ``data_version == 1`` per populated table (its own counter), so
    callers compare *content*, never version counters, across engines.
    """
    clone = Database(database.schema, backend=backend, pool_size=pool_size)
    for table in database.schema.tables:
        with database.lock:
            rows = database.backend.run(f"SELECT * FROM {table.name}")
        if rows:
            clone.insert_rows(table.name, rows)
    return clone
