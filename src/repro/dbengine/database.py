"""A populated SQLite database bound to a :class:`DatabaseSchema`.

``Database`` owns a SQLite connection (in-memory by default, or file-backed
for persistence), materializes the schema's DDL, bulk-loads rows, and
offers value lookups used by BRIDGE-style DB-content matching.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path

from repro.dbengine.pool import DEFAULT_POOL_SIZE, ReadConnectionPool
from repro.errors import ExecutionError, SchemaError
from repro.schema.ddl import render_schema_ddl
from repro.schema.model import ColumnType, DatabaseSchema


class Database:
    """A live SQLite database plus its in-memory schema model."""

    def __init__(
        self,
        schema: DatabaseSchema,
        path: str | Path | None = None,
        pool_size: int = DEFAULT_POOL_SIZE,
    ) -> None:
        self.schema = schema
        self._path = str(path) if path is not None else ":memory:"
        # check_same_thread=False lets the parallel evaluator's thread pool
        # share this connection; the lock serializes access because the
        # progress-handler install/remove in execute_sql is not atomic.
        self.connection = sqlite3.connect(self._path, check_same_thread=False)
        self.lock = threading.RLock()
        self.connection.execute("PRAGMA foreign_keys = ON")
        self._create_tables()
        self._value_cache: dict[tuple[str, str, int], list[object]] = {}
        # Monotonic content-version counter; execution caches key on it so
        # any mutation invalidates every cached result for this database.
        self.data_version = 0
        # Callbacks fired (with (db_id, new_version)) after every
        # data_version bump; the serving response cache subscribes here.
        self._mutation_listeners: list[Callable[[str, int], None]] = []
        # Read-only replica pool, created lazily on first pooled read.
        self._pool_size = pool_size
        self._pool: ReadConnectionPool | None = None

    # -- lifecycle ------------------------------------------------------

    def _create_tables(self) -> None:
        existing = {
            row[0]
            for row in self.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if existing:
            return  # file-backed database already materialized
        ddl = render_schema_ddl(self.schema)
        self.connection.executescript(ddl.replace(")\n\nCREATE", ");\n\nCREATE") + ";")
        self.connection.commit()

    def close(self) -> None:
        with self.lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            self.connection.close()

    def read_pool(self) -> ReadConnectionPool:
        """The lazily-created read-only replica pool for this database."""
        with self.lock:
            if self._pool is None:
                self._pool = ReadConnectionPool(self, size=self._pool_size)
            return self._pool

    def pool_stats(self) -> dict[str, int]:
        """Deterministic pool counters (all zero before the first read)."""
        with self.lock:
            if self._pool is None:
                return {"created": 0, "checkouts": 0, "refreshes": 0, "waits": 0}
            return self._pool.stats.as_dict()

    def mark_mutated(self) -> None:
        """Record an out-of-band content mutation (e.g. a bulk restore).

        Bumps ``data_version`` and drops value caches, so execution memos
        and pooled replicas refresh before their next use, then notifies
        every registered mutation listener.  ``insert_rows`` calls this
        implicitly; callers writing through ``connection`` directly
        (restores, migrations) must call it themselves.
        """
        with self.lock:
            self._value_cache.clear()
            self.data_version += 1
            version = self.data_version
            listeners = list(self._mutation_listeners)
        for callback in listeners:
            callback(self.db_id, version)

    def apply_write(self, sql: str, params: Sequence[object] = ()) -> int:
        """Execute one DML statement on the master connection and commit.

        The canonical write path for online mutations (the serving
        gateway routes ``/apply`` requests here): the statement runs
        under the database lock, commits, and then :meth:`mark_mutated`
        bumps ``data_version`` and notifies listeners so response caches
        and pooled replicas invalidate.  Returns the affected row count.
        """
        with self.lock:
            try:
                cursor = self.connection.execute(sql, tuple(params))
                self.connection.commit()
            except sqlite3.Error as exc:
                self.connection.rollback()
                raise ExecutionError(f"write failed on {self.db_id}: {exc}") from exc
            affected = cursor.rowcount
        self.mark_mutated()
        return affected

    def add_mutation_listener(self, callback: Callable[[str, int], None]) -> None:
        """Subscribe ``callback(db_id, new_version)`` to content mutations.

        Listeners run on the mutating thread, after the version bump is
        visible; they must not acquire this database's lock (callers of
        ``insert_rows`` still hold it re-entrantly when they fire).
        """
        with self.lock:
            self._mutation_listeners.append(callback)

    def remove_mutation_listener(self, callback: Callable[[str, int], None]) -> None:
        """Unsubscribe a listener; unknown callbacks are ignored."""
        with self.lock:
            try:
                self._mutation_listeners.remove(callback)
            except ValueError:
                pass

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def db_id(self) -> str:
        return self.schema.db_id

    # -- loading --------------------------------------------------------

    def insert_rows(self, table_name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-insert rows into ``table_name``; returns the row count."""
        if not self.schema.has_table(table_name):
            raise SchemaError(f"unknown table {table_name!r}")
        columns = self.schema.table(table_name).columns
        placeholders = ", ".join("?" for __ in columns)
        column_names = ", ".join(column.name for column in columns)
        sql = f"INSERT INTO {table_name} ({column_names}) VALUES ({placeholders})"
        rows = list(rows)
        with self.lock:
            try:
                self.connection.executemany(sql, rows)
            except sqlite3.Error as exc:
                raise ExecutionError(f"insert into {table_name} failed: {exc}", sql) from exc
            self.connection.commit()
            self.mark_mutated()
        return len(rows)

    def row_count(self, table_name: str) -> int:
        with self.lock:
            cursor = self.connection.execute(f"SELECT COUNT(*) FROM {table_name}")
            return int(cursor.fetchone()[0])

    # -- content access (BRIDGE-style value matching) --------------------

    def column_values(self, table_name: str, column_name: str, limit: int = 2000) -> list[object]:
        """Return distinct values of a column (cached per requested limit)."""
        key = (table_name.lower(), column_name.lower(), int(limit))
        with self.lock:
            if key not in self._value_cache:
                cursor = self.connection.execute(
                    f"SELECT DISTINCT {column_name} FROM {table_name} LIMIT {int(limit)}"
                )
                self._value_cache[key] = [row[0] for row in cursor.fetchall()]
            return self._value_cache[key]

    def text_columns(self) -> list[tuple[str, str]]:
        """Return (table, column) pairs for text-typed columns."""
        return [
            (table.name, column.name)
            for table in self.schema.tables
            for column in table.columns
            if column.col_type in (ColumnType.TEXT, ColumnType.DATE)
        ]

    def sample_values(self, table_name: str, column_name: str, count: int = 3) -> list[object]:
        """Return up to ``count`` example values for prompt comments."""
        values = self.column_values(table_name, column_name)
        return values[:count]
