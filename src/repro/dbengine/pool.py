"""Per-database read-only connection pool for concurrent SQL execution.

Historically every execution funneled through the one shared
``Database.connection``: each :func:`~repro.dbengine.executor.execute_sql`
call toggled ``PRAGMA query_only`` and installed a progress handler on it
under ``Database.lock``, so concurrent requests serialized on the
database even when the rest of the pipeline was cheap — and the
per-call PRAGMA/handler choreography was only safe *because* of that
lock.

:class:`ReadConnectionPool` removes the serialization point.  It keeps up
to ``size`` private replica connections per :class:`Database`:

* each replica is an independent ``:memory:`` SQLite database refreshed
  from the master via the ``sqlite3`` backup API, so pooled reads never
  touch the shared connection;
* ``PRAGMA query_only = ON`` is set **once** when a replica is created
  and never toggled again — a mutating candidate fails on the replica
  exactly as it did on the guarded master path, with the same
  "attempt to write a readonly database" error;
* replicas snapshot ``Database.data_version``; a checkout whose replica
  is stale re-runs the backup first, so the ``data_version`` invalidation
  contract of the execution caches is preserved bit-for-bit;
* checkouts are exclusive — each holder owns its replica's progress
  handler, so interrupt budgets can no longer interleave across calls.

A process-global switch (:func:`pooling_enabled` /
:func:`set_pooling_enabled` / :func:`pooling_disabled`) lets equivalence
tests run the exact same workload through the legacy locked
shared-connection path; results must be bit-identical either way.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (type-only)
    from repro.dbengine.database import Database

#: Replicas kept per database.  Sized for the serving engine's default
#: worker count; checkouts beyond it wait rather than over-allocating.
DEFAULT_POOL_SIZE = 4


@dataclass
class PoolStats:
    """Deterministic pool counters (no wall-clock)."""

    created: int = 0
    checkouts: int = 0
    refreshes: int = 0
    waits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "created": self.created,
            "checkouts": self.checkouts,
            "refreshes": self.refreshes,
            "waits": self.waits,
        }


class _Replica:
    """One pooled read-only connection plus the content version it holds."""

    __slots__ = ("connection", "data_version")

    def __init__(self, connection: sqlite3.Connection) -> None:
        self.connection = connection
        # -1 is older than any real version, forcing a first refresh.
        self.data_version = -1


class ReadConnectionPool:
    """A bounded pool of read-only snapshot connections for one database.

    Replicas are created lazily up to ``size``; when all are checked out,
    further checkouts block until one is returned.  :meth:`checkout`
    yields a connection that is guaranteed to reflect the master's
    current ``data_version`` and to reject writes.
    """

    def __init__(self, database: "Database", size: int = DEFAULT_POOL_SIZE) -> None:
        if size <= 0:
            raise ValueError("pool size must be positive")
        self._database = database
        self._size = size
        self._idle: list[_Replica] = []
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False
        self.stats = PoolStats()

    @property
    def size(self) -> int:
        return self._size

    @contextmanager
    def checkout(self) -> Iterator[sqlite3.Connection]:
        """Exclusively borrow a fresh read-only replica connection."""
        replica = self._acquire()
        try:
            yield replica.connection
        finally:
            self._release(replica)

    # -- internals ------------------------------------------------------

    def _acquire(self) -> _Replica:
        with self._available:
            while True:
                if self._closed:
                    raise ExecutionError("read connection pool is closed")
                if self._idle:
                    replica = self._idle.pop()
                    break
                if self.stats.created < self._size:
                    # Connection creation is cheap; the (potentially
                    # expensive) content backup happens in _refresh below,
                    # outside the pool lock.
                    connection = sqlite3.connect(":memory:", check_same_thread=False)
                    connection.execute("PRAGMA query_only = ON")
                    replica = _Replica(connection)
                    self.stats.created += 1
                    break
                self.stats.waits += 1
                self._available.wait()
            self.stats.checkouts += 1
        # The replica is exclusively ours from here on — refreshing it
        # needs no pool lock, only the master's lock for a stable copy.
        self._refresh(replica)
        return replica

    def _refresh(self, replica: _Replica) -> None:
        database = self._database
        if replica.data_version == database.data_version:
            return
        with database.lock:
            # Snapshot version and content atomically w.r.t. insert_rows
            # (which bumps data_version under the same lock).  The backup
            # API may write into a query_only destination, so the replica
            # pragma never has to be toggled.
            version = database.data_version
            database.connection.backup(replica.connection)
        replica.data_version = version
        with self._lock:
            self.stats.refreshes += 1

    def _release(self, replica: _Replica) -> None:
        with self._available:
            if self._closed:
                replica.connection.close()
                return
            self._idle.append(replica)
            self._available.notify()

    def close(self) -> None:
        """Close all idle replicas; in-use ones close on release."""
        with self._available:
            self._closed = True
            for replica in self._idle:
                replica.connection.close()
            self._idle.clear()
            self._available.notify_all()


# -- global enable switch ------------------------------------------------

_POOLING_ENABLED = True


def pooling_enabled() -> bool:
    """True while execute_sql routes reads through replica pools."""
    return _POOLING_ENABLED


def set_pooling_enabled(enabled: bool) -> None:
    """Globally route reads through pools (True) or the legacy path."""
    global _POOLING_ENABLED
    _POOLING_ENABLED = bool(enabled)


@contextmanager
def pooling_disabled() -> Iterator[None]:
    """Scoped fallback to the locked shared-connection execution path."""
    previous = _POOLING_ENABLED
    set_pooling_enabled(False)
    try:
        yield
    finally:
        set_pooling_enabled(previous)
