"""NL2SQL360-AAS: automated architecture search over the design space.

A standard genetic algorithm (paper §5.2, Figure 14):

1. **Initialization** — N random individuals (module assignments).
2. **Individual Selection** — a Russian-roulette process: parents are
   sampled with probability proportional to their target metric, and the
   worst performer of each generation is eliminated outright.
3. **Module Swap** — two selected parents exchange whole layers with
   probability ``p_swap`` per layer.
4. **Module Mutation** — each layer re-rolls to a random module with
   probability ``p_mutate``.

Fitness is any :class:`MethodReport` metric (EX by default) on a chosen
dataset split; evaluated individuals are cached by assignment so repeated
genotypes cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluator import Evaluator
from repro.core.design_space import SearchSpace
from repro.datagen.benchmark import Example
from repro.errors import DesignSpaceError
from repro.methods.base import MethodGroup, PipelineMethod
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class AASConfig:
    """Hyper-parameters of the search (paper defaults: N=10, T=20, 0.5/0.2)."""

    population_size: int = 10
    generations: int = 20
    swap_probability: float = 0.5
    mutation_probability: float = 0.2
    metric: str = "ex"
    seed: int = 7


@dataclass
class Individual:
    """One genotype (layer assignment) with its measured fitness."""

    assignment: dict[str, object]
    fitness: float = 0.0

    def key(self) -> tuple:
        return tuple(sorted((k, str(v)) for k, v in self.assignment.items()))


@dataclass
class AASResult:
    """Outcome of a search run."""

    best: Individual
    history: list[list[Individual]] = field(default_factory=list)
    evaluations: int = 0

    @property
    def best_per_generation(self) -> list[float]:
        return [max(ind.fitness for ind in gen) for gen in self.history]


class _FitnessCache:
    def __init__(self) -> None:
        self._cache: dict[tuple, float] = {}

    def get(self, individual: Individual) -> float | None:
        return self._cache.get(individual.key())

    def put(self, individual: Individual, fitness: float) -> None:
        self._cache[individual.key()] = fitness


def _evaluate(
    individual: Individual,
    space: SearchSpace,
    evaluator: Evaluator,
    examples: list[Example],
    metric: str,
    cache: _FitnessCache,
    counter: list[int],
    index: int,
) -> float:
    cached = cache.get(individual)
    if cached is not None:
        return cached
    config = space.to_config(f"aas-{index}", individual.assignment)
    method = PipelineMethod(config, MethodGroup.HYBRID)
    report = evaluator.evaluate_method(method, examples=examples)
    fitness = float(getattr(report, metric))
    cache.put(individual, fitness)
    counter[0] += 1
    return fitness


def _roulette_pick(population: list[Individual], rng) -> Individual:
    total = sum(max(ind.fitness, 1e-6) for ind in population)
    threshold = rng.random() * total
    cumulative = 0.0
    for individual in population:
        cumulative += max(individual.fitness, 1e-6)
        if cumulative >= threshold:
            return individual
    return population[-1]


def run_aas(
    space: SearchSpace,
    evaluator: Evaluator,
    examples: list[Example],
    config: AASConfig | None = None,
) -> AASResult:
    """Run the genetic search and return the best individual found.

    Raises:
        DesignSpaceError: on degenerate configurations.
    """
    config = config or AASConfig()
    if config.population_size < 2:
        raise DesignSpaceError("population size must be at least 2")
    rng = derive_rng(config.seed, "aas")
    cache = _FitnessCache()
    counter = [0]

    # Step 1: initialization.
    population = [
        Individual(assignment=space.random_assignment(rng))
        for __ in range(config.population_size)
    ]
    for i, individual in enumerate(population):
        individual.fitness = _evaluate(
            individual, space, evaluator, examples, config.metric, cache, counter, i
        )

    history = [list(population)]
    for generation in range(config.generations):
        # Russian roulette: eliminate the worst performer outright.
        survivors = sorted(population, key=lambda ind: ind.fitness, reverse=True)
        survivors = survivors[:-1] if len(survivors) > 2 else survivors

        next_population: list[Individual] = []
        while len(next_population) < config.population_size:
            parent_a = _roulette_pick(survivors, rng)
            parent_b = _roulette_pick(survivors, rng)
            child_a = dict(parent_a.assignment)
            child_b = dict(parent_b.assignment)
            # Step 3: module swap.
            for layer in space.layer_names():
                if rng.random() < config.swap_probability:
                    child_a[layer], child_b[layer] = child_b[layer], child_a[layer]
            # Step 4: module mutation.
            for child in (child_a, child_b):
                for layer, choices in space.layers.items():
                    if rng.random() < config.mutation_probability:
                        child[layer] = choices[rng.randrange(len(choices))]
            next_population.append(Individual(assignment=child_a))
            if len(next_population) < config.population_size:
                next_population.append(Individual(assignment=child_b))

        population = next_population
        for i, individual in enumerate(population):
            individual.fitness = _evaluate(
                individual, space, evaluator, examples, config.metric, cache, counter,
                generation * config.population_size + i,
            )
        history.append(list(population))

    best = max(
        (ind for generation in history for ind in generation),
        key=lambda ind: ind.fitness,
    )
    return AASResult(best=best, history=history, evaluations=counter[0])
