"""NL2SQL360-AAS: automated architecture search over the design space.

A standard genetic algorithm (paper §5.2, Figure 14):

1. **Initialization** — N random individuals (module assignments).
2. **Individual Selection** — a Russian-roulette process: parents are
   sampled with probability proportional to their target metric, and the
   worst performer of each generation is eliminated outright.
3. **Module Swap** — two selected parents exchange whole layers with
   probability ``p_swap`` per layer.
4. **Module Mutation** — each layer re-rolls to a random module with
   probability ``p_mutate``.

Fitness is any :class:`MethodReport` metric (EX by default) on a chosen
dataset split; evaluated individuals are cached by assignment so repeated
genotypes cost nothing.  Each generation's unique unevaluated genotypes
are handed to the evaluator as one batch (``evaluate_zoo``), so a
:class:`~repro.core.parallel.ParallelEvaluator` evaluates them
concurrently — and its persistent result cache makes repeated genotypes
free even across process restarts.  Genotypes are named canonically by
their assignment (not their population index), so the same composition
always maps to the same pipeline config and the same cache fingerprint.

Inputs/outputs: a :class:`SearchSpace`, an evaluator, a fitness example
subset, and an :class:`AASConfig` in; an :class:`AASResult` (best
individual, per-generation curve, evaluation count) out.

Thread/process safety: ``run_aas`` is a single-threaded coordinator; it
parallelizes only through the evaluator handed to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluator import Evaluator
from repro.core.design_space import SearchSpace
from repro.datagen.benchmark import Example
from repro.errors import DesignSpaceError
from repro.methods.base import MethodGroup, PipelineMethod
from repro.utils.rng import derive_rng, stable_hash


@dataclass(frozen=True)
class AASConfig:
    """Hyper-parameters of the search (paper defaults: N=10, T=20, 0.5/0.2)."""

    population_size: int = 10
    generations: int = 20
    swap_probability: float = 0.5
    mutation_probability: float = 0.2
    metric: str = "ex"
    seed: int = 7


@dataclass
class Individual:
    """One genotype (layer assignment) with its measured fitness."""

    assignment: dict[str, object]
    fitness: float = 0.0

    def key(self) -> tuple:
        return tuple(sorted((k, str(v)) for k, v in self.assignment.items()))


@dataclass
class AASResult:
    """Outcome of a search run.

    ``evaluations`` counts genotypes whose fitness required actual method
    predictions — genotypes served entirely by an evaluator's persistent
    result cache (see :class:`~repro.core.parallel.ParallelEvaluator`)
    are not counted, so a warm-cache re-run reports fewer evaluations.
    """

    best: Individual
    history: list[list[Individual]] = field(default_factory=list)
    evaluations: int = 0

    @property
    def best_per_generation(self) -> list[float]:
        return [max(ind.fitness for ind in gen) for gen in self.history]


class _FitnessCache:
    def __init__(self) -> None:
        self._cache: dict[tuple, float] = {}

    def get(self, individual: Individual) -> float | None:
        return self._cache.get(individual.key())

    def put(self, individual: Individual, fitness: float) -> None:
        self._cache[individual.key()] = fitness


def genotype_name(assignment: dict[str, object]) -> str:
    """Canonical, order-independent method name for one genotype.

    Using the assignment (not the population index) keeps the pipeline
    config — and therefore the persistent result-cache fingerprint —
    identical whenever the same composition reappears, in any generation
    or any later process.
    """
    key = tuple(sorted((k, str(v)) for k, v in assignment.items()))
    return f"aas-{stable_hash(key):012x}"


def _evaluate_population(
    population: list[Individual],
    space: SearchSpace,
    evaluator: Evaluator,
    examples: list[Example],
    metric: str,
    cache: _FitnessCache,
    counter: list[int],
) -> None:
    """Assign fitness to every individual, batching unevaluated genotypes.

    Unique cache-miss genotypes are evaluated in one ``evaluate_zoo``
    call, which a :class:`~repro.core.parallel.ParallelEvaluator` fans
    out across its worker pool.
    """
    pending: dict[tuple, list[Individual]] = {}
    for individual in population:
        cached = cache.get(individual)
        if cached is not None:
            individual.fitness = cached
        else:
            pending.setdefault(individual.key(), []).append(individual)
    if not pending:
        return
    methods = {
        key: PipelineMethod(
            space.to_config(genotype_name(group[0].assignment), group[0].assignment),
            MethodGroup.HYBRID,
        )
        for key, group in pending.items()
    }
    reports = evaluator.evaluate_zoo(list(methods.values()), examples=examples)
    fresh_counts = getattr(evaluator, "stats", None)
    for key, group in pending.items():
        method = methods[key]
        fitness = float(getattr(reports[method.name], metric))
        cache.put(group[0], fitness)
        for individual in group:
            individual.fitness = fitness
        # Only count genotypes that actually ran predictions; ones served
        # fully from a persistent result cache are free.
        fresh = None
        if fresh_counts is not None:
            fresh = fresh_counts.fresh_by_method.get(method.name)
        if fresh is None or fresh > 0:
            counter[0] += 1


def _roulette_pick(population: list[Individual], rng) -> Individual:
    total = sum(max(ind.fitness, 1e-6) for ind in population)
    threshold = rng.random() * total
    cumulative = 0.0
    for individual in population:
        cumulative += max(individual.fitness, 1e-6)
        if cumulative >= threshold:
            return individual
    return population[-1]


def run_aas(
    space: SearchSpace,
    evaluator: Evaluator,
    examples: list[Example],
    config: AASConfig | None = None,
) -> AASResult:
    """Run the genetic search and return the best individual found.

    Raises:
        DesignSpaceError: on degenerate configurations.
    """
    config = config or AASConfig()
    if config.population_size < 2:
        raise DesignSpaceError("population size must be at least 2")
    rng = derive_rng(config.seed, "aas")
    cache = _FitnessCache()
    counter = [0]

    # Step 1: initialization.
    population = [
        Individual(assignment=space.random_assignment(rng))
        for __ in range(config.population_size)
    ]
    _evaluate_population(
        population, space, evaluator, examples, config.metric, cache, counter
    )

    history = [list(population)]
    for generation in range(config.generations):
        # Russian roulette: eliminate the worst performer outright.
        survivors = sorted(population, key=lambda ind: ind.fitness, reverse=True)
        survivors = survivors[:-1] if len(survivors) > 2 else survivors

        next_population: list[Individual] = []
        while len(next_population) < config.population_size:
            parent_a = _roulette_pick(survivors, rng)
            parent_b = _roulette_pick(survivors, rng)
            child_a = dict(parent_a.assignment)
            child_b = dict(parent_b.assignment)
            # Step 3: module swap.
            for layer in space.layer_names():
                if rng.random() < config.swap_probability:
                    child_a[layer], child_b[layer] = child_b[layer], child_a[layer]
            # Step 4: module mutation.
            for child in (child_a, child_b):
                for layer, choices in space.layers.items():
                    if rng.random() < config.mutation_probability:
                        child[layer] = choices[rng.randrange(len(choices))]
            next_population.append(Individual(assignment=child_a))
            if len(next_population) < config.population_size:
                next_population.append(Individual(assignment=child_b))

        population = next_population
        _evaluate_population(
            population, space, evaluator, examples, config.metric, cache, counter
        )
        history.append(list(population))

    best = max(
        (ind for generation in history for ind in generation),
        key=lambda ind: ind.fitness,
    )
    return AASResult(best=best, history=history, evaluations=counter[0])
