"""The NL2SQL evolutionary tree (paper Figure 1).

Figure 1 surveys two decades of NL2SQL systems across four branches:
rule-based, neural-network-based, PLM-based, and LLM-based.  This module
carries that taxonomy as data — usable for timelines, grouping, and the
Figure-2 era analysis — plus a small text renderer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemEntry:
    """One system in the evolutionary tree."""

    name: str
    year: int
    branch: str          # rule_based | neural_network | plm | llm
    backbone: str = ""
    note: str = ""


BRANCHES = ("rule_based", "neural_network", "plm", "llm")

EVOLUTIONARY_TREE: list[SystemEntry] = [
    # Rule-based era.
    SystemEntry("LUNAR", 1972, "rule_based", note="early NL database interface"),
    SystemEntry("PRECISE", 2003, "rule_based", note="semantically tractable subset"),
    SystemEntry("NaLIR", 2014, "rule_based", note="syntactic parse + handcrafted rules"),
    SystemEntry("SQLizer", 2017, "rule_based", note="type-directed synthesis"),
    # Neural-network era (seq2seq).
    SystemEntry("Seq2SQL", 2017, "neural_network", note="RL over WikiSQL"),
    SystemEntry("SQLNet", 2018, "neural_network", note="sketch-based slot filling"),
    SystemEntry("TypeSQL", 2018, "neural_network", note="type-aware encoding"),
    SystemEntry("IRNet", 2019, "neural_network", note="intermediate representation"),
    # PLM era.
    SystemEntry("RATSQL", 2020, "plm", "BERT", "relation-aware transformer"),
    SystemEntry("BRIDGE v2", 2020, "plm", "BERT", "value anchoring"),
    SystemEntry("SmBoP", 2021, "plm", "GraPPa", "bottom-up decoding"),
    SystemEntry("T5+PICARD", 2021, "plm", "T5", "constrained decoding"),
    SystemEntry("RASAT", 2022, "plm", "T5", "relational structures in seq2seq"),
    SystemEntry("SHiP", 2022, "plm", "T5", "synthetic high-quality data"),
    SystemEntry("Graphix-T5", 2023, "plm", "T5", "graph-aware layers"),
    SystemEntry("RESDSQL", 2023, "plm", "T5", "decoupled linking and parsing"),
    # LLM era.
    SystemEntry("Codex zero-shot", 2022, "llm", "CodeX", "Rajkumar et al. probe"),
    SystemEntry("DIN-SQL", 2023, "llm", "GPT-4", "decomposed in-context learning"),
    SystemEntry("C3", 2023, "llm", "GPT-3.5", "zero-shot + calibration"),
    SystemEntry("DAIL-SQL", 2023, "llm", "GPT-4", "similarity example selection"),
    SystemEntry("MAC-SQL", 2023, "llm", "GPT-4", "multi-agent collaboration"),
    SystemEntry("CodeS", 2024, "llm", "StarCoder", "incremental SQL pre-training"),
    SystemEntry("SuperSQL", 2024, "llm", "GPT-4", "NL2SQL360-AAS searched hybrid"),
]


def systems_in_branch(branch: str) -> list[SystemEntry]:
    """All systems of one branch, oldest first."""
    return sorted(
        (entry for entry in EVOLUTIONARY_TREE if entry.branch == branch),
        key=lambda entry: entry.year,
    )


def era_span(branch: str) -> tuple[int, int]:
    """(first year, last year) a branch is represented in the tree."""
    years = [entry.year for entry in EVOLUTIONARY_TREE if entry.branch == branch]
    return min(years), max(years)


def render_tree() -> str:
    """Render the evolutionary tree as indented text (Figure 1 analogue)."""
    lines = ["NL2SQL evolutionary tree (paper Figure 1)"]
    titles = {
        "rule_based": "Rule-based methods",
        "neural_network": "Neural-network methods",
        "plm": "PLM-based methods",
        "llm": "LLM-based methods",
    }
    for branch in BRANCHES:
        first, last = era_span(branch)
        lines.append(f"+- {titles[branch]} ({first}-{last})")
        for entry in systems_in_branch(branch):
            backbone = f" [{entry.backbone}]" if entry.backbone else ""
            lines.append(f"|  {entry.year}  {entry.name}{backbone} - {entry.note}")
    return "\n".join(lines)
