"""NL2SQL taxonomies: the evolutionary tree and the failure taxonomy.

Figure 1 surveys two decades of NL2SQL systems across four branches:
rule-based, neural-network-based, PLM-based, and LLM-based.  This module
carries that taxonomy as data — usable for timelines, grouping, and the
Figure-2 era analysis — plus a small text renderer.

It also defines the **failure taxonomy** used by the observability layer
(:mod:`repro.obs`): :data:`FAILURE_CATEGORIES` names the ways an
evaluation can fail, each attributed to the pipeline stage that caused
it, and :func:`classify_failure` maps one scored example (EX verdict,
the prediction's corruption tags, the executor's error, truncation
flags) to a single deterministic tag — so sequential and parallel runs
of the same configuration always agree.

Inputs/outputs: pure data plus pure functions over it; no I/O.

Thread/process safety: stateless module — all data is immutable and all
functions are pure, so it is safe from any thread or process.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemEntry:
    """One system in the evolutionary tree."""

    name: str
    year: int
    branch: str          # rule_based | neural_network | plm | llm
    backbone: str = ""
    note: str = ""


BRANCHES = ("rule_based", "neural_network", "plm", "llm")

EVOLUTIONARY_TREE: list[SystemEntry] = [
    # Rule-based era.
    SystemEntry("LUNAR", 1972, "rule_based", note="early NL database interface"),
    SystemEntry("PRECISE", 2003, "rule_based", note="semantically tractable subset"),
    SystemEntry("NaLIR", 2014, "rule_based", note="syntactic parse + handcrafted rules"),
    SystemEntry("SQLizer", 2017, "rule_based", note="type-directed synthesis"),
    # Neural-network era (seq2seq).
    SystemEntry("Seq2SQL", 2017, "neural_network", note="RL over WikiSQL"),
    SystemEntry("SQLNet", 2018, "neural_network", note="sketch-based slot filling"),
    SystemEntry("TypeSQL", 2018, "neural_network", note="type-aware encoding"),
    SystemEntry("IRNet", 2019, "neural_network", note="intermediate representation"),
    # PLM era.
    SystemEntry("RATSQL", 2020, "plm", "BERT", "relation-aware transformer"),
    SystemEntry("BRIDGE v2", 2020, "plm", "BERT", "value anchoring"),
    SystemEntry("SmBoP", 2021, "plm", "GraPPa", "bottom-up decoding"),
    SystemEntry("T5+PICARD", 2021, "plm", "T5", "constrained decoding"),
    SystemEntry("RASAT", 2022, "plm", "T5", "relational structures in seq2seq"),
    SystemEntry("SHiP", 2022, "plm", "T5", "synthetic high-quality data"),
    SystemEntry("Graphix-T5", 2023, "plm", "T5", "graph-aware layers"),
    SystemEntry("RESDSQL", 2023, "plm", "T5", "decoupled linking and parsing"),
    # LLM era.
    SystemEntry("Codex zero-shot", 2022, "llm", "CodeX", "Rajkumar et al. probe"),
    SystemEntry("DIN-SQL", 2023, "llm", "GPT-4", "decomposed in-context learning"),
    SystemEntry("C3", 2023, "llm", "GPT-3.5", "zero-shot + calibration"),
    SystemEntry("DAIL-SQL", 2023, "llm", "GPT-4", "similarity example selection"),
    SystemEntry("MAC-SQL", 2023, "llm", "GPT-4", "multi-agent collaboration"),
    SystemEntry("CodeS", 2024, "llm", "StarCoder", "incremental SQL pre-training"),
    SystemEntry("SuperSQL", 2024, "llm", "GPT-4", "NL2SQL360-AAS searched hybrid"),
]


def systems_in_branch(branch: str) -> list[SystemEntry]:
    """All systems of one branch, oldest first."""
    return sorted(
        (entry for entry in EVOLUTIONARY_TREE if entry.branch == branch),
        key=lambda entry: entry.year,
    )


def era_span(branch: str) -> tuple[int, int]:
    """(first year, last year) a branch is represented in the tree."""
    years = [entry.year for entry in EVOLUTIONARY_TREE if entry.branch == branch]
    return min(years), max(years)


# -- failure taxonomy ----------------------------------------------------


@dataclass(frozen=True)
class FailureCategory:
    """One way an evaluation can fail, attributed to a pipeline stage."""

    tag: str
    stage: str           # understand | generate | execute | score
    description: str


FAILURE_CATEGORIES: tuple[FailureCategory, ...] = (
    FailureCategory(
        "parse_failure", "understand",
        "the model could not parse the question; a fallback SELECT was emitted",
    ),
    FailureCategory(
        "invalid_sql", "execute",
        "the predicted SQL failed to parse or execute",
    ),
    FailureCategory(
        "execution_timeout", "execute",
        "the predicted SQL exceeded the execution time budget",
    ),
    FailureCategory(
        "result_truncated", "execute",
        "a result hit the executor's row cap, so the EX verdict was refused",
    ),
    FailureCategory(
        "schema_error", "generate",
        "a wrong table, column, or join path was used",
    ),
    FailureCategory(
        "value_error", "generate",
        "a wrong literal or value binding was used",
    ),
    FailureCategory(
        "structure_error", "generate",
        "a clause, operator, or subquery is missing or wrong",
    ),
    FailureCategory(
        "unattributed", "score",
        "the SQL executed but returned different rows; no finer attribution"
        " is available (e.g. a record served from the result cache)",
    ),
)

# Corruption-model error tags (repro.llm.corruption.BASE_RATES keys)
# grouped into failure-taxonomy families.
CORRUPTION_FAMILIES: dict[str, str] = {
    "join_error": "schema_error",
    "column_error": "schema_error",
    "value_error": "value_error",
    "drop_subquery": "structure_error",
    "op_error": "structure_error",
    "agg_error": "structure_error",
    "connector_error": "structure_error",
    "order_error": "structure_error",
    "having_error": "structure_error",
    "distinct_error": "structure_error",
}


def failure_category(tag: str) -> FailureCategory:
    """Look up one failure category by tag."""
    for category in FAILURE_CATEGORIES:
        if category.tag == tag:
            return category
    raise KeyError(f"unknown failure tag {tag!r}")


def classify_failure(
    *,
    ex: bool,
    prediction_errors: tuple[str, ...] = (),
    execution_error: str | None = None,
    truncated: bool = False,
) -> str | None:
    """Deterministic failure tag for one scored example (None = correct).

    Priority: understanding failures, then hard execution failures, then
    truncation refusals, then the first corruption tag's family (tags are
    recorded in deterministic application order), then ``unattributed``.
    """
    if ex:
        return None
    if "parse_failure" in prediction_errors:
        return "parse_failure"
    if execution_error is not None:
        if execution_error.startswith("timeout"):
            return "execution_timeout"
        return "invalid_sql"
    if truncated:
        return "result_truncated"
    for tag in prediction_errors:
        family = CORRUPTION_FAMILIES.get(tag)
        if family is not None:
            return family
    return "unattributed"


def render_tree() -> str:
    """Render the evolutionary tree as indented text (Figure 1 analogue)."""
    lines = ["NL2SQL evolutionary tree (paper Figure 1)"]
    titles = {
        "rule_based": "Rule-based methods",
        "neural_network": "Neural-network methods",
        "plm": "PLM-based methods",
        "llm": "LLM-based methods",
    }
    for branch in BRANCHES:
        first, last = era_span(branch)
        lines.append(f"+- {titles[branch]} ({first}-{last})")
        for entry in systems_in_branch(branch):
            backbone = f" [{entry.backbone}]" if entry.backbone else ""
            lines.append(f"|  {entry.year}  {entry.name}{backbone} - {entry.note}")
    return "\n".join(lines)
