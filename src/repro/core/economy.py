"""LLM economy accounting — the paper's Table 5 (Exp-6).

For each prompt-based method: average tokens per query, average dollar
cost per query, EX, and the EX / average-cost cost-effectiveness ratio.

Inputs/outputs: :class:`MethodReport` objects in; :class:`EconomyRow`
tables out.

Thread/process safety: stateless pure functions — safe from any thread
or process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import MethodReport


@dataclass(frozen=True)
class EconomyRow:
    """One Table 5 row for one method on one dataset."""

    method: str
    backbone: str
    avg_tokens: float
    avg_cost: float
    ex: float

    @property
    def ex_per_cost(self) -> float:
        if self.avg_cost <= 0:
            return float("inf")
        return self.ex / self.avg_cost


def economy_table(
    reports: dict[str, MethodReport],
    backbones: dict[str, str] | None = None,
) -> list[EconomyRow]:
    """Build Table 5 rows from method reports (sorted by method name)."""
    rows = []
    for name in sorted(reports):
        report = reports[name]
        rows.append(
            EconomyRow(
                method=name,
                backbone=(backbones or {}).get(name, ""),
                avg_tokens=round(report.avg_tokens, 1),
                avg_cost=round(report.avg_cost, 6),
                ex=round(report.ex, 2),
            )
        )
    return rows


def most_cost_effective(rows: list[EconomyRow]) -> EconomyRow:
    """The row with the best EX / cost ratio (paper Finding 9)."""
    if not rows:
        raise ValueError("no economy rows")
    return max(rows, key=lambda row: row.ex_per_cost)
