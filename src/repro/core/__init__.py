"""NL2SQL360 core: dataset filter, metrics, evaluator, logs, reports, AAS.

Inputs/outputs: re-exports only; see each submodule's docstring.

Thread/process safety: per re-exported symbol — evaluators and log
stores are single-owner objects, records and reports are safe to share
once built (see the submodule docstrings for specifics).
"""

from repro.core.filter import DatasetFilter
from repro.core.metrics import EvaluationRecord, MethodReport
from repro.core.evaluator import Evaluator
from repro.core.parallel import EvalStats, MethodSpec, ParallelEvaluator, result_fingerprint
from repro.core.logs import ExperimentLogStore
from repro.core.qvt import qvt_score
from repro.core.economy import EconomyRow, economy_table
from repro.core.report import format_leaderboard, format_table
from repro.core.design_space import SearchSpace, random_config
from repro.core.aas import AASConfig, AASResult, run_aas
from repro.core.compare import Comparison, compare_methods
from repro.core.dashboard import render_dashboard
from repro.core.findings import FindingResult, check_all

__all__ = [
    "DatasetFilter",
    "EvaluationRecord",
    "MethodReport",
    "Evaluator",
    "ParallelEvaluator",
    "MethodSpec",
    "EvalStats",
    "result_fingerprint",
    "ExperimentLogStore",
    "qvt_score",
    "EconomyRow",
    "economy_table",
    "format_leaderboard",
    "format_table",
    "SearchSpace",
    "random_config",
    "AASConfig",
    "AASResult",
    "run_aas",
    "Comparison",
    "compare_methods",
    "render_dashboard",
    "FindingResult",
    "check_all",
]
