"""Evaluation records and metric aggregation.

An :class:`EvaluationRecord` captures one (method, example) outcome with
all per-example measurements; :class:`MethodReport` aggregates records
into the paper's metrics: Execution Accuracy (EX), Exact Match (EM),
Valid Efficiency Score (VES), token/cost economics, and latency.

Inputs/outputs: per-example measurements in; :class:`EvaluationRecord`
rows and :class:`MethodReport` aggregates out.

Thread/process safety: records are frozen and reports are plain
containers — build a report single-threaded, then share it freely;
records pickle cleanly across process boundaries.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.sqlkit.hardness import BirdDifficulty, Hardness


@dataclass(frozen=True)
class EvaluationRecord:
    """One method's outcome on one example."""

    method: str
    example_id: str
    db_id: str
    domain: str
    question: str
    gold_sql: str
    predicted_sql: str
    hardness: Hardness
    bird_difficulty: BirdDifficulty
    variant_group: str
    variant_style: str
    ex: bool
    em: bool
    gold_seconds: float = 0.0
    predicted_seconds: float = 0.0
    input_tokens: int = 0
    output_tokens: int = 0
    cost_usd: float = 0.0
    latency_s: float = 0.0
    has_join: bool = False
    has_subquery: bool = False
    has_logical_connector: bool = False
    has_order_by: bool = False
    # Executor truncation flags: when set, the corresponding execution hit
    # the row cap and its EX verdict was forced to False by results_match.
    gold_truncated: bool = False
    predicted_truncated: bool = False

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @property
    def ves_weight(self) -> float:
        """BIRD's per-example efficiency weight: sqrt(T_gold/T_pred) if correct."""
        if not self.ex:
            return 0.0
        gold = max(self.gold_seconds, 1e-9)
        predicted = max(self.predicted_seconds, 1e-9)
        return math.sqrt(gold / predicted)


@dataclass
class MethodReport:
    """Aggregated metrics for one method over a set of records."""

    method: str
    records: list[EvaluationRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    # -- subset plumbing --------------------------------------------------

    def subset(self, predicate: Callable[[EvaluationRecord], bool]) -> "MethodReport":
        return MethodReport(
            method=self.method,
            records=[r for r in self.records if predicate(r)],
        )

    def by_hardness(self, level: str | Hardness) -> "MethodReport":
        wanted = Hardness(level)
        return self.subset(lambda r: r.hardness == wanted)

    def by_bird_difficulty(self, level: str | BirdDifficulty) -> "MethodReport":
        wanted = BirdDifficulty(level)
        return self.subset(lambda r: r.bird_difficulty == wanted)

    def by_domain(self, domain: str) -> "MethodReport":
        return self.subset(lambda r: r.domain.lower() == domain.lower())

    def by_example_ids(self, ids: Iterable[str]) -> "MethodReport":
        wanted = set(ids)
        return self.subset(lambda r: r.example_id in wanted)

    # -- metrics ------------------------------------------------------------

    def _mean(self, values: list[float]) -> float:
        if not values:
            return 0.0
        return sum(values) / len(values)

    @property
    def ex(self) -> float:
        """Execution Accuracy in percent."""
        return 100.0 * self._mean([1.0 if r.ex else 0.0 for r in self.records])

    @property
    def em(self) -> float:
        """Exact Match Accuracy in percent."""
        return 100.0 * self._mean([1.0 if r.em else 0.0 for r in self.records])

    @property
    def ves(self) -> float:
        """Valid Efficiency Score (x100, as reported by BIRD)."""
        return 100.0 * self._mean([r.ves_weight for r in self.records])

    @property
    def avg_tokens(self) -> float:
        return self._mean([float(r.total_tokens) for r in self.records])

    @property
    def avg_cost(self) -> float:
        return self._mean([r.cost_usd for r in self.records])

    @property
    def avg_latency(self) -> float:
        return self._mean([r.latency_s for r in self.records])

    @property
    def ex_per_dollar(self) -> float:
        """The paper's EX / Avg-Cost cost-effectiveness ratio."""
        cost = self.avg_cost
        if cost <= 0:
            return float("inf")
        return self.ex / cost

    def summary(self) -> dict[str, float]:
        """All headline metrics in one dict (used by logs and reports)."""
        return {
            "n": float(len(self.records)),
            "ex": round(self.ex, 2),
            "em": round(self.em, 2),
            "ves": round(self.ves, 2),
            "avg_tokens": round(self.avg_tokens, 1),
            "avg_cost": round(self.avg_cost, 6),
            "avg_latency": round(self.avg_latency, 3),
        }
