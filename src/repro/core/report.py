"""Report formatting: leaderboards, tables, and the Figure-2 timeline.

The Evaluator's output renders into aligned text tables (the testbed's
"easily interpretable formats like tables or leaderboards").  The module
also carries the historical Spider-leaderboard records behind the paper's
Figure 2 (PLM- vs LLM-based model evolution over time).

Inputs/outputs: method reports and rows in; aligned text tables and
leaderboards out.

Thread/process safety: stateless pure formatting over constant data —
safe from any thread or process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import MethodReport


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_leaderboard(
    reports: dict[str, MethodReport],
    metric: str = "ex",
    title: str = "Leaderboard",
) -> str:
    """Render a leaderboard sorted by ``metric`` (descending)."""
    scored = sorted(
        ((getattr(report, metric), name) for name, report in reports.items()),
        reverse=True,
    )
    rows = [
        [rank + 1, name, f"{score:.2f}"]
        for rank, (score, name) in enumerate(scored)
    ]
    return format_table(["Rank", "Method", metric.upper()], rows, title=title)


@dataclass(frozen=True)
class LeaderboardEntry:
    """One historical Spider-leaderboard submission (Figure 2)."""

    model: str
    date: str          # YYYY-MM
    ex: float
    kind: str          # "plm" | "llm"


# Historical Spider test-set EX submissions, as plotted in Figure 2.
SPIDER_LEADERBOARD_TIMELINE: list[LeaderboardEntry] = [
    LeaderboardEntry("BRIDGE v2 + BERT", "2020-12", 68.3, "plm"),
    LeaderboardEntry("SmBoP + GraPPa", "2021-05", 71.1, "plm"),
    LeaderboardEntry("RATSQL + GAP + NatSQL", "2021-09", 73.3, "plm"),
    LeaderboardEntry("T5-3B + PICARD", "2021-10", 75.1, "plm"),
    LeaderboardEntry("RASAT + PICARD", "2022-05", 75.5, "plm"),
    LeaderboardEntry("SHiP + PICARD", "2022-08", 76.6, "plm"),
    LeaderboardEntry("N-best Rerankers + PICARD", "2022-10", 77.9, "plm"),
    LeaderboardEntry("Graphix-3B + PICARD", "2023-01", 77.6, "plm"),
    LeaderboardEntry("RESDSQL-3B + NatSQL", "2023-02", 79.9, "plm"),
    LeaderboardEntry("DIN-SQL + CodeX", "2023-02", 78.2, "llm"),
    LeaderboardEntry("C3 + ChatGPT", "2023-06", 82.3, "llm"),
    LeaderboardEntry("DIN-SQL + GPT-4", "2023-04", 85.3, "llm"),
    LeaderboardEntry("DAIL-SQL + GPT-4", "2023-08", 86.2, "llm"),
    LeaderboardEntry("DAIL-SQL + GPT-4 + SC", "2023-08", 86.6, "llm"),
    LeaderboardEntry("MiniSeek (anonymous)", "2023-11", 91.2, "llm"),
]


def leaderboard_timeline(kind: str | None = None) -> list[LeaderboardEntry]:
    """Figure-2 data, optionally filtered to one model family."""
    if kind is None:
        return list(SPIDER_LEADERBOARD_TIMELINE)
    return [entry for entry in SPIDER_LEADERBOARD_TIMELINE if entry.kind == kind]


def timeline_series(kind: str) -> list[tuple[str, float]]:
    """(date, best-so-far EX) series for one family — Figure 2's envelope."""
    entries = sorted(leaderboard_timeline(kind), key=lambda e: e.date)
    series: list[tuple[str, float]] = []
    best = 0.0
    for entry in entries:
        best = max(best, entry.ex)
        series.append((entry.date, best))
    return series
