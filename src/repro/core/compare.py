"""Statistical comparison of two methods' EX outcomes.

Leaderboard gaps of a point or two are often noise; this module gives the
testbed proper paired tests over shared examples:

* :func:`mcnemar_test` — the exact binomial McNemar test on the
  discordant pairs (method A right / B wrong vs A wrong / B right);
* :func:`bootstrap_diff_ci` — a paired bootstrap confidence interval for
  the EX difference;
* :func:`compare_methods` — both at once, with a verdict.

Inputs/outputs: two :class:`MethodReport` record streams over the same
examples in; a :class:`Comparison` (test statistics + verdict) out.

Thread/process safety: stateless pure functions — safe from any thread
or process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.metrics import MethodReport
from repro.errors import EvaluationError
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class Comparison:
    """Outcome of a paired comparison between two methods."""

    method_a: str
    method_b: str
    n: int
    ex_a: float
    ex_b: float
    a_only: int              # examples only A solves
    b_only: int              # examples only B solves
    p_value: float           # exact McNemar
    diff_ci_low: float       # bootstrap 95% CI for (EX_a - EX_b)
    diff_ci_high: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05

    def verdict(self) -> str:
        if not self.significant:
            return (
                f"no significant difference between {self.method_a} and "
                f"{self.method_b} (p={self.p_value:.3f})"
            )
        winner = self.method_a if self.ex_a > self.ex_b else self.method_b
        return f"{winner} is significantly better (p={self.p_value:.3f})"


def _paired_outcomes(
    report_a: MethodReport, report_b: MethodReport
) -> list[tuple[bool, bool]]:
    outcomes_b = {record.example_id: record.ex for record in report_b.records}
    pairs = [
        (record.ex, outcomes_b[record.example_id])
        for record in report_a.records
        if record.example_id in outcomes_b
    ]
    if not pairs:
        raise EvaluationError("the two reports share no examples")
    return pairs


def mcnemar_test(report_a: MethodReport, report_b: MethodReport) -> tuple[int, int, float]:
    """Exact McNemar test; returns (a_only, b_only, two-sided p-value)."""
    pairs = _paired_outcomes(report_a, report_b)
    a_only = sum(1 for a, b in pairs if a and not b)
    b_only = sum(1 for a, b in pairs if b and not a)
    n = a_only + b_only
    if n == 0:
        return a_only, b_only, 1.0
    k = min(a_only, b_only)
    # Two-sided exact binomial tail under p=1/2.
    tail = sum(math.comb(n, i) for i in range(0, k + 1)) / 2**n
    p_value = min(1.0, 2.0 * tail)
    return a_only, b_only, p_value


def bootstrap_diff_ci(
    report_a: MethodReport,
    report_b: MethodReport,
    iterations: int = 2000,
    seed: int = 13,
) -> tuple[float, float]:
    """Paired bootstrap 95% CI for EX(a) - EX(b), in percentage points."""
    pairs = _paired_outcomes(report_a, report_b)
    rng = derive_rng(seed, "bootstrap", report_a.method, report_b.method)
    n = len(pairs)
    diffs = []
    for __ in range(iterations):
        total = 0
        for __ in range(n):
            a, b = pairs[rng.randrange(n)]
            total += int(a) - int(b)
        diffs.append(100.0 * total / n)
    diffs.sort()
    low = diffs[int(0.025 * iterations)]
    high = diffs[min(int(0.975 * iterations), iterations - 1)]
    return low, high


def compare_methods(
    report_a: MethodReport,
    report_b: MethodReport,
    iterations: int = 2000,
) -> Comparison:
    """Full paired comparison (McNemar + bootstrap CI)."""
    pairs = _paired_outcomes(report_a, report_b)
    a_only, b_only, p_value = mcnemar_test(report_a, report_b)
    ci_low, ci_high = bootstrap_diff_ci(report_a, report_b, iterations=iterations)
    ex_a = 100.0 * sum(1 for a, __ in pairs if a) / len(pairs)
    ex_b = 100.0 * sum(1 for __, b in pairs if b) / len(pairs)
    return Comparison(
        method_a=report_a.method,
        method_b=report_b.method,
        n=len(pairs),
        ex_a=round(ex_a, 2),
        ex_b=round(ex_b, 2),
        a_only=a_only,
        b_only=b_only,
        p_value=p_value,
        diff_ci_low=round(ci_low, 2),
        diff_ci_high=round(ci_high, 2),
    )
