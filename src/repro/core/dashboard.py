"""Text dashboard: the testbed's interactive-analysis view, in plain text.

``render_dashboard`` composes, for a set of evaluated methods, the views
the paper's analysis module exposes: the leaderboard, per-hardness
breakdown, per-characteristic breakdown, per-domain extremes, and the
economy block — one call, one printable report.

Inputs/outputs: evaluated :class:`MethodReport` objects in; one
printable text report out.

Thread/process safety: stateless pure formatting — safe from any thread
or process.
"""

from __future__ import annotations

from repro.core.metrics import MethodReport
from repro.core.qvt import qvt_score
from repro.core.report import format_leaderboard, format_table

_CHARACTERISTICS = {
    "subquery": lambda r: r.has_subquery,
    "join": lambda r: r.has_join,
    "connector": lambda r: r.has_logical_connector,
    "order by": lambda r: r.has_order_by,
}


def _hardness_block(reports: dict[str, MethodReport]) -> str:
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            *(f"{report.by_hardness(level).ex:.1f}"
              for level in ("easy", "medium", "hard", "extra")),
            f"{report.ex:.1f}",
        ])
    return format_table(
        ["Method", "Easy", "Medium", "Hard", "Extra", "All"],
        rows,
        title="EX by SQL hardness",
    )


def _characteristics_block(reports: dict[str, MethodReport]) -> str:
    rows = []
    for name, report in reports.items():
        row = [name]
        for predicate in _CHARACTERISTICS.values():
            subset = report.subset(predicate)
            row.append(f"{subset.ex:.1f}" if len(subset) else "n/a")
        rows.append(row)
    return format_table(
        ["Method", *(_CHARACTERISTICS.keys())],
        rows,
        title="EX on characteristic subsets (with-feature only)",
    )


def _domain_block(reports: dict[str, MethodReport]) -> str:
    rows = []
    for name, report in reports.items():
        domains = sorted({r.domain for r in report.records})
        scored = [(report.by_domain(d).ex, d) for d in domains]
        if not scored:
            continue
        best_ex, best_domain = max(scored)
        worst_ex, worst_domain = min(scored)
        rows.append([
            name,
            f"{best_domain} ({best_ex:.0f})",
            f"{worst_domain} ({worst_ex:.0f})",
        ])
    return format_table(
        ["Method", "Best domain", "Worst domain"],
        rows,
        title="Domain extremes",
    )


def _economy_block(reports: dict[str, MethodReport]) -> str:
    rows = [
        [name, f"{report.avg_tokens:.0f}", f"{report.avg_cost:.4f}",
         f"{report.avg_latency:.2f}", f"{qvt_score(report):.1f}"]
        for name, report in reports.items()
    ]
    return format_table(
        ["Method", "Tok/q", "$/q", "Latency (s)", "QVT"],
        rows,
        title="Economy and robustness",
    )


def render_dashboard(reports: dict[str, MethodReport], title: str = "NL2SQL360") -> str:
    """Render the full multi-view dashboard as one printable string."""
    if not reports:
        raise ValueError("dashboard requires at least one evaluated method")
    sections = [
        f"==== {title} dashboard ({len(reports)} methods) ====",
        format_leaderboard(reports, metric="ex", title="Leaderboard (EX)"),
        _hardness_block(reports),
        _characteristics_block(reports),
        _domain_block(reports),
        _economy_block(reports),
    ]
    return "\n\n".join(sections)
