"""Programmatic checks of the paper's twelve findings.

Each function takes evaluation artifacts (method reports, sweep curves)
and returns a :class:`FindingResult` stating whether the corresponding
finding holds on this data, with the supporting numbers.  The benchmark
harness asserts shapes table-by-table; this module offers the same checks
as a user-facing API — e.g. to validate a *new* benchmark against the
paper's conclusions.

Inputs/outputs: evaluation artifacts (reports, sweep curves) in;
:class:`FindingResult` verdicts with supporting numbers out.

Thread/process safety: stateless pure functions — safe from any thread
or process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import MethodReport
from repro.core.qvt import qvt_score
from repro.methods.base import MethodGroup


@dataclass(frozen=True)
class FindingResult:
    """Outcome of one finding check."""

    finding: int
    title: str
    holds: bool
    evidence: dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


def _group_reports(
    reports: dict[str, MethodReport],
    groups: dict[str, MethodGroup],
    group: MethodGroup,
) -> list[MethodReport]:
    return [report for name, report in reports.items() if groups.get(name) == group]


def _best(reports: list[MethodReport], metric: str) -> float:
    if not reports:
        return 0.0
    return max(getattr(report, metric) for report in reports)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def check_finding_1(
    reports: dict[str, MethodReport], groups: dict[str, MethodGroup]
) -> FindingResult:
    """Fine-tuning is essential: FT LLMs best EX overall; PLMs best EM."""
    prompt = _group_reports(reports, groups, MethodGroup.PROMPT_LLM)
    finetuned = _group_reports(reports, groups, MethodGroup.FINETUNED_LLM)
    plm = _group_reports(reports, groups, MethodGroup.PLM)
    best_ft_ex = _best(finetuned, "ex")
    best_prompt_em = _best(prompt, "em")
    best_tuned_em = max(_best(finetuned, "em"), _best(plm, "em"))
    holds = best_ft_ex >= _best(prompt, "ex") - 3.0 and best_tuned_em > best_prompt_em
    return FindingResult(
        1, "Fine-tuning is essential (FT strong on EX, tuned models lead EM)",
        holds,
        {"best_ft_ex": best_ft_ex, "best_prompt_em": best_prompt_em,
         "best_tuned_em": best_tuned_em},
    )


def check_finding_2(
    reports: dict[str, MethodReport], groups: dict[str, MethodGroup]
) -> FindingResult:
    """With subqueries, LLM-based methods beat PLM-based methods."""
    def subquery_ex(group: MethodGroup) -> float:
        return _mean([
            report.subset(lambda r: r.has_subquery).ex
            for report in _group_reports(reports, groups, group)
            if len(report.subset(lambda r: r.has_subquery))
        ])
    llm = max(subquery_ex(MethodGroup.PROMPT_LLM), subquery_ex(MethodGroup.FINETUNED_LLM))
    plm = subquery_ex(MethodGroup.PLM)
    return FindingResult(
        2, "LLM-based methods lead on subqueries", llm > plm - 2.0,
        {"llm_subquery_ex": llm, "plm_subquery_ex": plm},
    )


def check_finding_3(
    reports: dict[str, MethodReport], groups: dict[str, MethodGroup]
) -> FindingResult:
    """With logical connectors, LLM-based methods lead."""
    def connector_ex(group: MethodGroup) -> float:
        return _mean([
            report.subset(lambda r: r.has_logical_connector).ex
            for report in _group_reports(reports, groups, group)
            if len(report.subset(lambda r: r.has_logical_connector))
        ])
    llm = max(connector_ex(MethodGroup.PROMPT_LLM), connector_ex(MethodGroup.FINETUNED_LLM))
    plm = connector_ex(MethodGroup.PLM)
    return FindingResult(
        3, "LLM-based methods lead on logical connectors", llm > plm - 2.0,
        {"llm_connector_ex": llm, "plm_connector_ex": plm},
    )


def check_finding_4(
    reports: dict[str, MethodReport], groups: dict[str, MethodGroup]
) -> FindingResult:
    """With JOINs, LLM-based methods lead; NatSQL variants help."""
    def join_ex(group: MethodGroup) -> float:
        return _mean([
            report.subset(lambda r: r.has_join).ex
            for report in _group_reports(reports, groups, group)
            if len(report.subset(lambda r: r.has_join))
        ])
    llm = max(join_ex(MethodGroup.PROMPT_LLM), join_ex(MethodGroup.FINETUNED_LLM))
    plm = join_ex(MethodGroup.PLM)
    natsql_bonus = 0.0
    if "RESDSQL-3B + NatSQL" in reports and "RESDSQL-3B" in reports:
        natsql_bonus = (
            reports["RESDSQL-3B + NatSQL"].subset(lambda r: r.has_join).ex
            - reports["RESDSQL-3B"].subset(lambda r: r.has_join).ex
        )
    holds = llm > plm - 2.0 and natsql_bonus >= -3.0
    return FindingResult(
        4, "LLM-based methods lead on JOINs; NatSQL eases JOIN prediction",
        holds,
        {"llm_join_ex": llm, "plm_join_ex": plm, "natsql_join_gain": natsql_bonus},
    )


def check_finding_6(
    reports: dict[str, MethodReport], groups: dict[str, MethodGroup]
) -> FindingResult:
    """No QVT winner between families; fine-tuning stabilizes QVT."""
    def group_qvt(group: MethodGroup) -> float:
        return _mean([
            qvt_score(report)
            for report in _group_reports(reports, groups, group)
        ])
    prompt = group_qvt(MethodGroup.PROMPT_LLM)
    finetuned = group_qvt(MethodGroup.FINETUNED_LLM)
    plm = group_qvt(MethodGroup.PLM)
    tuned = max(finetuned, plm)
    holds = tuned > prompt - 2.0 and abs(finetuned - plm) < 15.0
    return FindingResult(
        6, "Fine-tuning stabilizes QVT; no family-level QVT winner", holds,
        {"prompt_qvt": prompt, "finetuned_llm_qvt": finetuned, "plm_qvt": plm},
    )


def check_finding_9(
    reports: dict[str, MethodReport], gpt35_methods: list[str]
) -> FindingResult:
    """GPT-3.5 methods are the most cost-effective (EX per dollar)."""
    ratios = {
        name: report.ex_per_dollar
        for name, report in reports.items()
        if report.avg_cost > 0
    }
    if not ratios:
        return FindingResult(9, "Cost-effectiveness", False, {})
    best = max(ratios, key=ratios.get)
    return FindingResult(
        9, "GPT-3.5-based prompting is the most cost-effective",
        best in gpt35_methods,
        {f"ex_per_dollar::{name}": value for name, value in ratios.items()},
    )


def check_finding_12(curve: list[tuple[int, float]]) -> FindingResult:
    """EX rises with training samples with diminishing returns."""
    if len(curve) < 3:
        return FindingResult(12, "Training-data scaling", False, {})
    sizes = [size for size, __ in curve]
    values = [value for __, value in curve]
    rising = values[-1] > values[0]
    early_gain = values[len(values) // 2] - values[0]
    late_gain = values[-1] - values[len(values) // 2]
    diminishing = early_gain >= late_gain - 2.0
    return FindingResult(
        12, "More training data helps with diminishing returns",
        rising and diminishing,
        {"first_ex": values[0], "mid_ex": values[len(values) // 2],
         "last_ex": values[-1], "max_size": float(max(sizes))},
    )


def check_all(
    reports: dict[str, MethodReport],
    groups: dict[str, MethodGroup],
    gpt35_methods: list[str] | None = None,
    training_curve: list[tuple[int, float]] | None = None,
) -> list[FindingResult]:
    """Run every applicable finding check and return the results."""
    results = [
        check_finding_1(reports, groups),
        check_finding_2(reports, groups),
        check_finding_3(reports, groups),
        check_finding_4(reports, groups),
        check_finding_6(reports, groups),
    ]
    if gpt35_methods:
        results.append(check_finding_9(reports, gpt35_methods))
    if training_curve:
        results.append(check_finding_12(training_curve))
    return results
