"""Dataset Filter: NL2SQL360's scenario-based subset selection (paper §3).

The four built-in scenarios:

1. **SQL Complexity** — Spider hardness levels (easy/medium/hard/extra)
   or BIRD difficulty (simple/moderate/challenging).
2. **SQL Characteristics** — presence/absence of subqueries, logical
   connectors, JOINs, ORDER BY (and any custom feature predicate).
3. **Data Domains** — the 33-domain classification.
4. **Query Variance** — groups of NL variants sharing one gold SQL.

Filters compose fluently and lazily::

    subset = (DatasetFilter(examples)
              .with_join()
              .hardness("hard", "extra")
              .domain("movies"))

Inputs/outputs: an example list in; lazily-composed filtered example
lists out (the source list is never mutated).

Thread/process safety: filters are immutable once built and evaluation
is read-only, so sharing across threads is safe.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.datagen.benchmark import Example
from repro.sqlkit.features import SQLFeatures, extract_features
from repro.sqlkit.hardness import BirdDifficulty, Hardness


class DatasetFilter:
    """A lazily-composed filter over benchmark examples."""

    def __init__(self, examples: Iterable[Example]) -> None:
        self._examples = list(examples)
        self._feature_cache: dict[str, SQLFeatures] = {}

    # -- core -------------------------------------------------------------

    def examples(self) -> list[Example]:
        """Materialize the current subset."""
        return list(self._examples)

    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self):
        return iter(self._examples)

    def features_of(self, example: Example) -> SQLFeatures:
        """Gold-SQL features (cached per gold SQL)."""
        if example.gold_sql not in self._feature_cache:
            self._feature_cache[example.gold_sql] = extract_features(example.gold_sql)
        return self._feature_cache[example.gold_sql]

    def where(self, predicate: Callable[[Example], bool]) -> "DatasetFilter":
        """Custom predicate filter."""
        child = DatasetFilter(e for e in self._examples if predicate(e))
        child._feature_cache = self._feature_cache
        return child

    def where_features(
        self, predicate: Callable[[SQLFeatures], bool]
    ) -> "DatasetFilter":
        """Custom predicate over gold-SQL features."""
        return self.where(lambda e: predicate(self.features_of(e)))

    # -- Scenario 1: complexity ----------------------------------------------

    def hardness(self, *levels: str | Hardness) -> "DatasetFilter":
        wanted = {Hardness(level) for level in levels}
        return self.where(lambda e: e.hardness in wanted)

    def bird_difficulty(self, *levels: str | BirdDifficulty) -> "DatasetFilter":
        wanted = {BirdDifficulty(level) for level in levels}
        return self.where(lambda e: e.bird_difficulty in wanted)

    # -- Scenario 2: SQL characteristics ---------------------------------------

    def with_subquery(self) -> "DatasetFilter":
        return self.where_features(lambda f: f.has_subquery)

    def without_subquery(self) -> "DatasetFilter":
        return self.where_features(lambda f: not f.has_subquery)

    def with_join(self) -> "DatasetFilter":
        return self.where_features(lambda f: f.has_join)

    def without_join(self) -> "DatasetFilter":
        return self.where_features(lambda f: not f.has_join)

    def with_logical_connector(self) -> "DatasetFilter":
        return self.where_features(lambda f: f.has_logical_connector)

    def without_logical_connector(self) -> "DatasetFilter":
        return self.where_features(lambda f: not f.has_logical_connector)

    def with_order_by(self) -> "DatasetFilter":
        return self.where_features(lambda f: f.has_order_by)

    def without_order_by(self) -> "DatasetFilter":
        return self.where_features(lambda f: not f.has_order_by)

    def with_keyword(self, keyword: str) -> "DatasetFilter":
        """Filter by any SQL keyword the feature extractor records."""
        lowered = keyword.lower()
        return self.where_features(lambda f: lowered in f.keywords)

    def characteristic(self, name: str, present: bool = True) -> "DatasetFilter":
        """Named characteristic filter (the paper's four axes)."""
        table = {
            "subquery": (self.with_subquery, self.without_subquery),
            "join": (self.with_join, self.without_join),
            "logical_connector": (
                self.with_logical_connector, self.without_logical_connector
            ),
            "order_by": (self.with_order_by, self.without_order_by),
        }
        with_fn, without_fn = table[name]
        return with_fn() if present else without_fn()

    # -- Scenario 3: domains --------------------------------------------------

    def domain(self, *domains: str) -> "DatasetFilter":
        wanted = {domain.lower() for domain in domains}
        return self.where(lambda e: e.domain.lower() in wanted)

    def domains_present(self) -> list[str]:
        return sorted({e.domain for e in self._examples})

    # -- Scenario 4: query variance --------------------------------------------

    def variant_groups(self, min_size: int = 2) -> dict[str, list[Example]]:
        """Groups of NL variants sharing a gold SQL, of at least ``min_size``."""
        groups: dict[str, list[Example]] = {}
        for example in self._examples:
            groups.setdefault(example.variant_group, []).append(example)
        return {k: v for k, v in groups.items() if len(v) >= min_size}

    def canonical_only(self) -> "DatasetFilter":
        """Keep one canonical phrasing per gold SQL (drop variants)."""
        return self.where(lambda e: e.variant_style == "canonical")
