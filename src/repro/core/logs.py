"""SQLite-backed experiment log store (the testbed's "Logs" component).

Every evaluation record is persisted to a normalized schema so that the
analysis module (and end users) can slice past runs with plain SQL —
fitting, for a paper about SQL.

The store also hosts the **cross-run result cache** used by
:class:`~repro.core.parallel.ParallelEvaluator`: finished records are
keyed by a stable fingerprint of (method config, dataset identity) plus
the example id, so re-running the same method on the same dataset — in
this process or a later one — skips prediction and execution entirely.

Observability runs piggyback on the same run ids: ``store_trace`` /
``load_trace`` persist the flattened example+stage span stream of
:mod:`repro.obs.trace`, and ``store_metrics`` / ``load_metrics`` persist
a run's :class:`~repro.obs.registry.MetricsRegistry`, so ``repro
report-run`` can rebuild a full report from the database alone.

Inputs/outputs: evaluation records, spans, and registries in; the same
objects (plus arbitrary read-only SQL result rows) back out.

Thread/process safety: one store wraps one ``sqlite3`` connection and
must be used from its owning thread/process only.  Workers never touch
the store — the coordinating evaluator persists everything exactly once.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from repro.core.metrics import EvaluationRecord, MethodReport
from repro.obs.registry import HistogramSummary, MetricsRegistry
from repro.obs.trace import ExampleSpan, StageSpan
from repro.sqlkit.hardness import BirdDifficulty, Hardness

_RECORD_COLUMNS = (
    "example_id", "db_id", "domain", "question", "gold_sql", "predicted_sql",
    "hardness", "bird_difficulty", "variant_group", "variant_style", "ex",
    "em", "gold_seconds", "predicted_seconds", "input_tokens",
    "output_tokens", "cost_usd", "latency_s", "has_join", "has_subquery",
    "has_logical_connector", "has_order_by", "gold_truncated",
    "predicted_truncated",
)

_RECORD_COLUMN_SQL = """
    example_id TEXT NOT NULL,
    db_id TEXT NOT NULL,
    domain TEXT NOT NULL,
    question TEXT NOT NULL,
    gold_sql TEXT NOT NULL,
    predicted_sql TEXT NOT NULL,
    hardness TEXT NOT NULL,
    bird_difficulty TEXT NOT NULL,
    variant_group TEXT NOT NULL,
    variant_style TEXT NOT NULL,
    ex INTEGER NOT NULL,
    em INTEGER NOT NULL,
    gold_seconds REAL NOT NULL,
    predicted_seconds REAL NOT NULL,
    input_tokens INTEGER NOT NULL,
    output_tokens INTEGER NOT NULL,
    cost_usd REAL NOT NULL,
    latency_s REAL NOT NULL,
    has_join INTEGER NOT NULL,
    has_subquery INTEGER NOT NULL,
    has_logical_connector INTEGER NOT NULL,
    has_order_by INTEGER NOT NULL,
    gold_truncated INTEGER NOT NULL DEFAULT 0,
    predicted_truncated INTEGER NOT NULL DEFAULT 0
"""

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    dataset TEXT NOT NULL,
    method TEXT NOT NULL,
    created_at TEXT DEFAULT CURRENT_TIMESTAMP
);
CREATE TABLE IF NOT EXISTS records (
    record_id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    {_RECORD_COLUMN_SQL}
);
CREATE INDEX IF NOT EXISTS idx_records_run ON records(run_id);
CREATE TABLE IF NOT EXISTS result_cache (
    fingerprint TEXT NOT NULL,
    method TEXT NOT NULL,
    {_RECORD_COLUMN_SQL},
    PRIMARY KEY (fingerprint, example_id)
);
CREATE TABLE IF NOT EXISTS trace_spans (
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    position INTEGER NOT NULL,
    method TEXT NOT NULL,
    example_id TEXT NOT NULL,
    stage TEXT NOT NULL DEFAULT '',
    seconds REAL NOT NULL,
    cache_hit INTEGER NOT NULL,
    memo_hits INTEGER NOT NULL DEFAULT 0,
    llm_calls INTEGER NOT NULL,
    input_tokens INTEGER NOT NULL,
    output_tokens INTEGER NOT NULL,
    cost_usd REAL NOT NULL,
    failure TEXT,
    repair_attempts INTEGER NOT NULL DEFAULT 0,
    repair_recovered INTEGER NOT NULL DEFAULT 0,
    repair_pattern_hits INTEGER NOT NULL DEFAULT 0,
    prefix_hits INTEGER NOT NULL DEFAULT 0,
    prefix_misses INTEGER NOT NULL DEFAULT 0,
    llm_batched_calls INTEGER NOT NULL DEFAULT 0,
    llm_batch_draws INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (run_id, position)
);
CREATE TABLE IF NOT EXISTS run_metrics (
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    labels TEXT NOT NULL,
    count REAL NOT NULL,
    total REAL NOT NULL,
    minimum REAL NOT NULL,
    maximum REAL NOT NULL,
    PRIMARY KEY (run_id, kind, name, labels)
);
"""


def _record_row(record: EvaluationRecord) -> tuple:
    """One record as a tuple in ``_RECORD_COLUMNS`` order."""
    return (
        record.example_id, record.db_id, record.domain, record.question,
        record.gold_sql, record.predicted_sql, record.hardness.value,
        record.bird_difficulty.value, record.variant_group,
        record.variant_style, int(record.ex), int(record.em),
        record.gold_seconds, record.predicted_seconds, record.input_tokens,
        record.output_tokens, record.cost_usd, record.latency_s,
        int(record.has_join), int(record.has_subquery),
        int(record.has_logical_connector), int(record.has_order_by),
        int(record.gold_truncated), int(record.predicted_truncated),
    )


def _row_to_record(method: str, row: tuple) -> EvaluationRecord:
    """Inverse of :func:`_record_row`."""
    return EvaluationRecord(
        method=method,
        example_id=row[0], db_id=row[1], domain=row[2], question=row[3],
        gold_sql=row[4], predicted_sql=row[5],
        hardness=Hardness(row[6]), bird_difficulty=BirdDifficulty(row[7]),
        variant_group=row[8], variant_style=row[9],
        ex=bool(row[10]), em=bool(row[11]),
        gold_seconds=row[12], predicted_seconds=row[13],
        input_tokens=row[14], output_tokens=row[15],
        cost_usd=row[16], latency_s=row[17],
        has_join=bool(row[18]), has_subquery=bool(row[19]),
        has_logical_connector=bool(row[20]), has_order_by=bool(row[21]),
        gold_truncated=bool(row[22]), predicted_truncated=bool(row[23]),
    )


class ExperimentLogStore:
    """Persists and reloads evaluation records."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.connection = sqlite3.connect(str(path))
        self.connection.executescript(_SCHEMA)
        self._migrate()
        self.connection.commit()

    def _migrate(self) -> None:
        """Add columns introduced after a store file was first created."""
        for table in ("records", "result_cache"):
            existing = {
                row[1]
                for row in self.connection.execute(f"PRAGMA table_info({table})")
            }
            for column in ("gold_truncated", "predicted_truncated"):
                if column not in existing:
                    self.connection.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column}"
                        " INTEGER NOT NULL DEFAULT 0"
                    )
        trace_columns = {
            row[1]
            for row in self.connection.execute("PRAGMA table_info(trace_spans)")
        }
        if "memo_hits" not in trace_columns:
            self.connection.execute(
                "ALTER TABLE trace_spans ADD COLUMN memo_hits"
                " INTEGER NOT NULL DEFAULT 0"
            )
        for column in (
            "repair_attempts", "repair_recovered", "repair_pattern_hits",
            "prefix_hits", "prefix_misses",
            "llm_batched_calls", "llm_batch_draws",
        ):
            if column not in trace_columns:
                self.connection.execute(
                    f"ALTER TABLE trace_spans ADD COLUMN {column}"
                    " INTEGER NOT NULL DEFAULT 0"
                )

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "ExperimentLogStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ------------------------------------------------------------

    def store_records(self, dataset: str, records: list[EvaluationRecord]) -> int:
        """Store one run's records; returns the run id."""
        if not records:
            raise ValueError("cannot store an empty record list")
        method = records[0].method
        cursor = self.connection.execute(
            "INSERT INTO runs (dataset, method) VALUES (?, ?)", (dataset, method)
        )
        run_id = cursor.lastrowid
        placeholders = ", ".join("?" for __ in _RECORD_COLUMNS)
        self.connection.executemany(
            f"INSERT INTO records (run_id, {', '.join(_RECORD_COLUMNS)})"
            f" VALUES (?, {placeholders})",
            [(run_id, *_record_row(r)) for r in records],
        )
        self.connection.commit()
        return int(run_id)

    # -- reading ---------------------------------------------------------------

    def runs(self) -> list[tuple[int, str, str]]:
        """All runs as (run_id, dataset, method)."""
        cursor = self.connection.execute(
            "SELECT run_id, dataset, method FROM runs ORDER BY run_id"
        )
        return [(int(r[0]), r[1], r[2]) for r in cursor.fetchall()]

    def load_report(self, run_id: int) -> MethodReport:
        """Reload a run's records into a :class:`MethodReport`."""
        method_row = self.connection.execute(
            "SELECT method FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if method_row is None:
            raise KeyError(f"no run with id {run_id}")
        cursor = self.connection.execute(
            f"SELECT {', '.join(_RECORD_COLUMNS)} FROM records"
            " WHERE run_id = ? ORDER BY record_id",
            (run_id,),
        )
        records = [_row_to_record(method_row[0], row) for row in cursor.fetchall()]
        return MethodReport(method=method_row[0], records=records)

    def query(self, sql: str, params: tuple = ()) -> list[tuple]:
        """Run arbitrary read-only SQL over the log schema."""
        return self.connection.execute(sql, params).fetchall()

    # -- cross-run result cache ---------------------------------------------

    def store_cached_records(
        self, fingerprint: str, records: list[EvaluationRecord]
    ) -> int:
        """Upsert finished records under ``fingerprint``; returns the count."""
        if not records:
            return 0
        placeholders = ", ".join("?" for __ in _RECORD_COLUMNS)
        self.connection.executemany(
            "INSERT OR REPLACE INTO result_cache"
            f" (fingerprint, method, {', '.join(_RECORD_COLUMNS)})"
            f" VALUES (?, ?, {placeholders})",
            [(fingerprint, r.method, *_record_row(r)) for r in records],
        )
        self.connection.commit()
        return len(records)

    def cached_records(self, fingerprint: str) -> dict[str, EvaluationRecord]:
        """All cached records for ``fingerprint``, keyed by example id."""
        cursor = self.connection.execute(
            f"SELECT method, {', '.join(_RECORD_COLUMNS)} FROM result_cache"
            " WHERE fingerprint = ?",
            (fingerprint,),
        )
        records = [_row_to_record(row[0], row[1:]) for row in cursor.fetchall()]
        return {record.example_id: record for record in records}

    def result_cache_size(self) -> int:
        """Number of cached (fingerprint, example) entries."""
        row = self.connection.execute("SELECT COUNT(*) FROM result_cache").fetchone()
        return int(row[0])

    def clear_result_cache(self, fingerprint: str | None = None) -> int:
        """Drop cached results (all of them, or one fingerprint's)."""
        if fingerprint is None:
            cursor = self.connection.execute("DELETE FROM result_cache")
        else:
            cursor = self.connection.execute(
                "DELETE FROM result_cache WHERE fingerprint = ?", (fingerprint,)
            )
        self.connection.commit()
        return int(cursor.rowcount)

    # -- observability: spans and metrics ------------------------------------

    def store_trace(self, run_id: int, spans: list[ExampleSpan]) -> int:
        """Persist a run's span stream (flattened); returns the row count.

        Each example span becomes one row with ``stage = ''`` followed by
        one row per stage span; ``position`` preserves the stream order.
        """
        rows = []
        position = 0
        for span in spans:
            rows.append((
                run_id, position, span.method, span.example_id, "",
                span.seconds, int(span.cache_hit), 0, 0,
                span.input_tokens, span.output_tokens, span.cost_usd,
                span.failure, 0, 0, 0, 0, 0, 0, 0,
            ))
            position += 1
            for stage in span.stages:
                rows.append((
                    run_id, position, span.method, span.example_id,
                    stage.stage, stage.seconds, int(stage.cache_hit),
                    stage.memo_hits, stage.llm_calls, 0,
                    stage.output_tokens, 0.0, None,
                    stage.repair_attempts, stage.repair_recovered,
                    stage.repair_pattern_hits,
                    stage.prefix_hits, stage.prefix_misses,
                    stage.llm_batched_calls, stage.llm_batch_draws,
                ))
                position += 1
        if rows:
            self.connection.executemany(
                "INSERT OR REPLACE INTO trace_spans (run_id, position,"
                " method, example_id, stage, seconds, cache_hit, memo_hits,"
                " llm_calls, input_tokens, output_tokens, cost_usd, failure,"
                " repair_attempts, repair_recovered, repair_pattern_hits,"
                " prefix_hits, prefix_misses, llm_batched_calls,"
                " llm_batch_draws)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                " ?, ?, ?, ?)",
                rows,
            )
            self.connection.commit()
        return len(rows)

    def load_trace(self, run_id: int) -> list[ExampleSpan]:
        """Rebuild a run's :class:`ExampleSpan` stream (inverse of store)."""
        cursor = self.connection.execute(
            "SELECT method, example_id, stage, seconds, cache_hit, llm_calls,"
            " input_tokens, output_tokens, cost_usd, failure, memo_hits,"
            " repair_attempts, repair_recovered, repair_pattern_hits,"
            " prefix_hits, prefix_misses, llm_batched_calls, llm_batch_draws"
            " FROM trace_spans WHERE run_id = ? ORDER BY position",
            (run_id,),
        )
        spans: list[ExampleSpan] = []
        for row in cursor.fetchall():
            if row[2] == "":
                spans.append(ExampleSpan(
                    method=row[0], example_id=row[1], seconds=row[3],
                    cache_hit=bool(row[4]), input_tokens=int(row[6]),
                    output_tokens=int(row[7]), cost_usd=row[8],
                    failure=row[9],
                ))
            else:
                spans[-1].stages.append(StageSpan(
                    stage=row[2], seconds=row[3], cache_hit=bool(row[4]),
                    llm_calls=int(row[5]), output_tokens=int(row[7]),
                    memo_hits=int(row[10]), repair_attempts=int(row[11]),
                    repair_recovered=int(row[12]),
                    repair_pattern_hits=int(row[13]),
                    prefix_hits=int(row[14]), prefix_misses=int(row[15]),
                    llm_batched_calls=int(row[16]),
                    llm_batch_draws=int(row[17]),
                ))
        return spans

    def store_metrics(self, run_id: int, registry: MetricsRegistry) -> int:
        """Persist a run's metrics registry; returns the row count."""
        rows = [
            (run_id, "counter", name, json.dumps(labels, sort_keys=True),
             value, value, 0.0, 0.0)
            for name, labels, value in registry.counters()
        ] + [
            (run_id, "histogram", name, json.dumps(labels, sort_keys=True),
             summary.count, summary.total, summary.minimum, summary.maximum)
            for name, labels, summary in registry.histograms()
        ]
        if rows:
            self.connection.executemany(
                "INSERT OR REPLACE INTO run_metrics (run_id, kind, name,"
                " labels, count, total, minimum, maximum)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            self.connection.commit()
        return len(rows)

    def load_metrics(self, run_id: int) -> MetricsRegistry:
        """Rebuild a run's :class:`MetricsRegistry` (inverse of store)."""
        registry = MetricsRegistry()
        cursor = self.connection.execute(
            "SELECT kind, name, labels, count, total, minimum, maximum"
            " FROM run_metrics WHERE run_id = ?",
            (run_id,),
        )
        for kind, name, labels_json, count, total, minimum, maximum in cursor:
            labels = json.loads(labels_json)
            key = (name, tuple(sorted(labels.items())))
            if kind == "counter":
                registry._counters[key] = count
            else:
                registry._histograms[key] = HistogramSummary(
                    count=int(count), total=total,
                    minimum=minimum, maximum=maximum,
                )
        return registry
