"""SQLite-backed experiment log store (the testbed's "Logs" component).

Every evaluation record is persisted to a normalized schema so that the
analysis module (and end users) can slice past runs with plain SQL —
fitting, for a paper about SQL.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

from repro.core.metrics import EvaluationRecord, MethodReport
from repro.sqlkit.hardness import BirdDifficulty, Hardness

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    dataset TEXT NOT NULL,
    method TEXT NOT NULL,
    created_at TEXT DEFAULT CURRENT_TIMESTAMP
);
CREATE TABLE IF NOT EXISTS records (
    record_id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    example_id TEXT NOT NULL,
    db_id TEXT NOT NULL,
    domain TEXT NOT NULL,
    question TEXT NOT NULL,
    gold_sql TEXT NOT NULL,
    predicted_sql TEXT NOT NULL,
    hardness TEXT NOT NULL,
    bird_difficulty TEXT NOT NULL,
    variant_group TEXT NOT NULL,
    variant_style TEXT NOT NULL,
    ex INTEGER NOT NULL,
    em INTEGER NOT NULL,
    gold_seconds REAL NOT NULL,
    predicted_seconds REAL NOT NULL,
    input_tokens INTEGER NOT NULL,
    output_tokens INTEGER NOT NULL,
    cost_usd REAL NOT NULL,
    latency_s REAL NOT NULL,
    has_join INTEGER NOT NULL,
    has_subquery INTEGER NOT NULL,
    has_logical_connector INTEGER NOT NULL,
    has_order_by INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_run ON records(run_id);
"""


class ExperimentLogStore:
    """Persists and reloads evaluation records."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.connection = sqlite3.connect(str(path))
        self.connection.executescript(_SCHEMA)
        self.connection.commit()

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "ExperimentLogStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ------------------------------------------------------------

    def store_records(self, dataset: str, records: list[EvaluationRecord]) -> int:
        """Store one run's records; returns the run id."""
        if not records:
            raise ValueError("cannot store an empty record list")
        method = records[0].method
        cursor = self.connection.execute(
            "INSERT INTO runs (dataset, method) VALUES (?, ?)", (dataset, method)
        )
        run_id = cursor.lastrowid
        rows = [
            (
                run_id, r.example_id, r.db_id, r.domain, r.question, r.gold_sql,
                r.predicted_sql, r.hardness.value, r.bird_difficulty.value,
                r.variant_group, r.variant_style, int(r.ex), int(r.em),
                r.gold_seconds, r.predicted_seconds, r.input_tokens,
                r.output_tokens, r.cost_usd, r.latency_s, int(r.has_join),
                int(r.has_subquery), int(r.has_logical_connector),
                int(r.has_order_by),
            )
            for r in records
        ]
        self.connection.executemany(
            "INSERT INTO records (run_id, example_id, db_id, domain, question,"
            " gold_sql, predicted_sql, hardness, bird_difficulty, variant_group,"
            " variant_style, ex, em, gold_seconds, predicted_seconds,"
            " input_tokens, output_tokens, cost_usd, latency_s, has_join,"
            " has_subquery, has_logical_connector, has_order_by)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self.connection.commit()
        return int(run_id)

    # -- reading ---------------------------------------------------------------

    def runs(self) -> list[tuple[int, str, str]]:
        """All runs as (run_id, dataset, method)."""
        cursor = self.connection.execute(
            "SELECT run_id, dataset, method FROM runs ORDER BY run_id"
        )
        return [(int(r[0]), r[1], r[2]) for r in cursor.fetchall()]

    def load_report(self, run_id: int) -> MethodReport:
        """Reload a run's records into a :class:`MethodReport`."""
        method_row = self.connection.execute(
            "SELECT method FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if method_row is None:
            raise KeyError(f"no run with id {run_id}")
        cursor = self.connection.execute(
            "SELECT example_id, db_id, domain, question, gold_sql, predicted_sql,"
            " hardness, bird_difficulty, variant_group, variant_style, ex, em,"
            " gold_seconds, predicted_seconds, input_tokens, output_tokens,"
            " cost_usd, latency_s, has_join, has_subquery,"
            " has_logical_connector, has_order_by"
            " FROM records WHERE run_id = ? ORDER BY record_id",
            (run_id,),
        )
        records = [
            EvaluationRecord(
                method=method_row[0],
                example_id=row[0], db_id=row[1], domain=row[2], question=row[3],
                gold_sql=row[4], predicted_sql=row[5],
                hardness=Hardness(row[6]), bird_difficulty=BirdDifficulty(row[7]),
                variant_group=row[8], variant_style=row[9],
                ex=bool(row[10]), em=bool(row[11]),
                gold_seconds=row[12], predicted_seconds=row[13],
                input_tokens=row[14], output_tokens=row[15],
                cost_usd=row[16], latency_s=row[17],
                has_join=bool(row[18]), has_subquery=bool(row[19]),
                has_logical_connector=bool(row[20]), has_order_by=bool(row[21]),
            )
            for row in cursor.fetchall()
        ]
        return MethodReport(method=method_row[0], records=records)

    def query(self, sql: str, params: tuple = ()) -> list[tuple]:
        """Run arbitrary read-only SQL over the log schema."""
        return self.connection.execute(sql, params).fetchall()
