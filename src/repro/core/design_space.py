"""The NL2SQL design space and random individual sampling (paper Fig. 13/14).

The :class:`SearchSpace` mirrors the paper's case-study setup (§5.3): the
backbone is fixed (GPT-3.5 during search, to save cost), decoding is
fixed to greedy (API models expose no decoder control), prompting uses
DAIL-SQL's similarity few-shot module when enabled, and the searchable
layers are pre-processing (schema linking, DB contents), the generation
strategy (multi-step, intermediate representation), and post-processing.

Inputs/outputs: a :class:`SearchSpace` plus a caller-owned
``random.Random`` in; :class:`PipelineConfig` individuals out.

Thread/process safety: stateless apart from the RNG the caller passes —
give each thread its own ``Random`` and the module is safe anywhere.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.modules.base import PipelineConfig

# Layer name -> candidate module values, matching Figure 13.
DEFAULT_LAYERS: dict[str, tuple] = {
    "schema_linking": (None, "resdsql", "c3"),
    "db_content": (None, "bridge", "codes"),
    "prompting": ("zero_shot", "similarity_fewshot"),
    "multi_step": (None, "decompose"),
    "intermediate": (None, "natsql"),
    "post_processing": (None, "self_correction", "self_consistency"),
}

# Candidate modules of the opt-in self-repair gene (docs/PIPELINE.md).
REPAIR_LAYER: tuple = (None, "rules", "pattern_lm")


def layers_with_repair(base: dict[str, tuple] | None = None) -> dict[str, tuple]:
    """``DEFAULT_LAYERS`` (or ``base``) plus the self-repair gene.

    The repair layer is opt-in rather than part of ``DEFAULT_LAYERS``:
    adding a layer changes how many random draws ``random_assignment``
    consumes per individual, which would silently perturb the trajectory
    of every seeded search run that predates the gene.
    """
    layers = dict(DEFAULT_LAYERS if base is None else base)
    layers["repair"] = REPAIR_LAYER
    return layers


@dataclass(frozen=True)
class SearchSpace:
    """A configurable design space for NL2SQL360-AAS."""

    backbone: str = "gpt-3.5-turbo"
    layers: dict[str, tuple] = field(default_factory=lambda: dict(DEFAULT_LAYERS))
    few_shot_k: int = 5
    decoding: str = "greedy"

    def layer_names(self) -> list[str]:
        return list(self.layers)

    def to_config(self, name: str, assignment: dict[str, object]) -> PipelineConfig:
        """Materialize a layer assignment into a runnable pipeline config."""
        prompting = str(assignment.get("prompting", "zero_shot"))
        return PipelineConfig(
            name=name,
            backbone=self.backbone,
            schema_linking=assignment.get("schema_linking"),  # type: ignore[arg-type]
            db_content=assignment.get("db_content"),  # type: ignore[arg-type]
            prompting=prompting,
            few_shot_k=self.few_shot_k if prompting != "zero_shot" else 0,
            multi_step=assignment.get("multi_step"),  # type: ignore[arg-type]
            intermediate=assignment.get("intermediate"),  # type: ignore[arg-type]
            decoding=self.decoding,
            post_processing=assignment.get("post_processing"),  # type: ignore[arg-type]
            repair=assignment.get("repair"),  # type: ignore[arg-type]
        )

    def random_assignment(self, rng: random.Random) -> dict[str, object]:
        """Uniformly sample one module per layer."""
        return {
            layer: choices[rng.randrange(len(choices))]
            for layer, choices in self.layers.items()
        }


def random_config(space: SearchSpace, rng: random.Random, name: str) -> PipelineConfig:
    """Sample one random individual from ``space``."""
    return space.to_config(name, space.random_assignment(rng))
