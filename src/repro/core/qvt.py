"""Query Variance Testing (QVT) — the paper's Equation (1).

Given a model's per-example EX outcomes, QVT averages, over all gold SQL
queries with multiple NL phrasings, the fraction of phrasings the model
answers correctly — *conditioned on the model answering at least one
phrasing correctly* (the paper builds each model's QVT test set from the
pairs where it solves at least one variant).

Inputs/outputs: a :class:`MethodReport` (or its records) in; the QVT
score out.

Thread/process safety: stateless pure functions — safe from any thread
or process.
"""

from __future__ import annotations

from repro.core.metrics import EvaluationRecord, MethodReport


def qvt_score(
    report: MethodReport,
    min_variants: int = 2,
    require_one_correct: bool = True,
) -> float:
    """QVT in percent per Equation (1) of the paper.

    Args:
        report: A method's evaluation records (dev split with variants).
        min_variants: Only variant groups with at least this many NL
            phrasings count (the paper uses SQLs with >= 2 variants).
        require_one_correct: Apply the paper's inclusion rule (the group
            enters the test set only if at least one phrasing is solved).
    """
    groups: dict[str, list[EvaluationRecord]] = {}
    for record in report.records:
        groups.setdefault(record.variant_group, []).append(record)
    fractions: list[float] = []
    for records in groups.values():
        if len(records) < min_variants:
            continue
        correct = sum(1 for r in records if r.ex)
        if require_one_correct and correct == 0:
            continue
        fractions.append(correct / len(records))
    if not fractions:
        return 0.0
    return 100.0 * sum(fractions) / len(fractions)
