"""Parallel evaluation engine: worker pools, gold precompute, result cache.

Every artifact in the reproduction — the 20-method zoo tables, the
multi-angle figures, the NL2SQL360-AAS genetic search — funnels through
``Evaluator``'s per-example loop.  :class:`ParallelEvaluator` keeps that
loop's semantics (same :class:`EvaluationRecord` stream, in example
order) while removing the wall-clock bottlenecks:

1. **Worker pools.**  Examples are sharded in contiguous chunks across a
   :class:`~concurrent.futures.ProcessPoolExecutor`.  ``sqlite3``
   connections are not picklable, so each worker's initializer rebuilds
   the dataset deterministically from its :class:`BenchmarkConfig` (the
   build is seeded, so workers own byte-identical databases).  Small
   runs, or datasets without a build recipe, fall back to a thread pool
   over the live dataset (``Database`` connections are lock-guarded).
2. **Gold-execution precompute.**  Each distinct (db_id, gold_sql) pair
   is executed exactly once per dataset — in the coordinating process —
   and the timed result is shared with every method and every worker,
   instead of being re-executed per evaluator instance.
3. **Cross-run result cache.**  Finished records are persisted in the
   :class:`~repro.core.logs.ExperimentLogStore` under a stable
   fingerprint of (method config + seed, dataset identity, timing
   settings), so repeated evaluations — re-runs of the benchmark suite,
   repeated genotypes across AAS generations, even across process
   restarts — skip prediction and execution entirely.

Determinism: prediction randomness flows through keyed RNG streams
(:func:`repro.utils.rng.derive_rng`), which are independent of call
order, so sharding does not change results.  With ``measure_timing``
off, parallel output is bit-identical to the sequential evaluator's.
The hot-path memo layers (few-shot index, intent memo, PICARD verdict
memo, candidate-execution LRU — see ``repro.utils.cache``) are adopted
transparently: thread workers share the coordinator's process-level
memos, process workers rebuild them lazily via each method's
``prepare`` (the few-shot index registry is keyed by corpus content),
and every layer returns bit-identical values to the uncached path, so
sharding with caches on still reproduces the sequential record stream.

Observability: when the coordinator's ambient tracer is enabled, thread
workers trace through the shared (thread-safe) tracer directly, process
workers install their own tracer and ship finished spans back with each
record batch, and examples served by the result cache get synthetic
``cache_hit`` spans — so a parallel run drains the same deterministic
span stream as a sequential one (modulo timings).

Inputs/outputs: same as :class:`~repro.core.evaluator.Evaluator` —
datasets and methods in, :class:`MethodReport` streams out, plus
``stats`` counters and drained ``trace_spans``.

Thread/process safety: the coordinator object itself is single-threaded;
it owns the pools.  Worker-side state lives in the per-process
``_WORKER`` dict and never crosses back except as picklable records and
spans.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.evaluator import Evaluator, GoldCache, gold_key
from repro.core.logs import ExperimentLogStore
from repro.core.metrics import EvaluationRecord, MethodReport
from repro.core.taxonomy import classify_failure
from repro.datagen.benchmark import BenchmarkConfig, Dataset, Example, build_benchmark
from repro.methods.base import MethodGroup, NL2SQLMethod, PipelineMethod
from repro.modules.base import PipelineConfig
from repro.obs.registry import (
    MetricsRegistry,
    ingest_lru_deltas,
    ingest_pool_deltas,
    ingest_record,
    ingest_span,
)
from repro.dbengine.pool import pooling_enabled, set_pooling_enabled
from repro.llm.engine import batching_enabled, set_batching_enabled
from repro.utils.cache import caches_enabled, lru_cache_stats, set_caches_enabled
from repro.obs.trace import ExampleSpan, Tracer, get_tracer, set_tracer
from repro.sqlkit.features import SQLFeatures
from repro.utils.rng import stable_hash

# Below this many pending examples a process pool is not worth its
# worker-initialization cost (each worker rebuilds the dataset); use the
# thread fallback instead.
_PROCESS_MIN_WORK = 32


@dataclass(frozen=True)
class MethodSpec:
    """Picklable recipe that rebuilds a :class:`PipelineMethod` in a worker."""

    config: PipelineConfig
    group: MethodGroup
    seed: int

    @classmethod
    def from_method(cls, method: NL2SQLMethod) -> "MethodSpec | None":
        # Only exact PipelineMethods are safely reconstructible: subclasses
        # and hand-written methods may carry state a worker cannot rebuild.
        if type(method) is not PipelineMethod:
            return None
        return cls(config=method.config, group=method.group, seed=method.seed)

    def key(self) -> str:
        return f"{stable_hash(repr(self.config), self.group.value, self.seed):016x}"


@dataclass
class EvalStats:
    """Counters the engine accumulates across evaluate calls."""

    predictions: int = 0        # examples that ran a method's predict()
    cache_hits: int = 0         # examples served by the cross-run cache
    gold_executions: int = 0    # distinct gold queries executed (precompute)
    parallel_tasks: int = 0     # chunks dispatched to a pool
    fresh_by_method: dict[str, int] = field(default_factory=dict)


def result_fingerprint(
    method: NL2SQLMethod,
    dataset: Dataset,
    measure_timing: bool,
    timing_repeats: int,
) -> str:
    """Stable cache fingerprint for (method config, dataset, timing knobs).

    Timing settings are part of the key because they change record
    contents (``gold_seconds`` / ``predicted_seconds``).
    """
    config = getattr(method, "config", None)
    config_id = repr(config) if config is not None else f"adhoc:{method.name}"
    seed = getattr(method, "seed", 0)
    return (
        f"{stable_hash(config_id, seed, dataset.fingerprint(), measure_timing, timing_repeats):016x}"
    )


# -- worker side -------------------------------------------------------------

# Per-process state, populated by the pool initializer: the rebuilt
# dataset, an evaluator over it, an example index, and prepared methods
# keyed by MethodSpec.key() so repeated chunks skip re-preparation.
_WORKER: dict = {}


def _worker_init(
    benchmark_config: BenchmarkConfig,
    measure_timing: bool,
    timing_repeats: int,
    trace_enabled: bool = False,
    switches: dict | None = None,
) -> None:
    if switches is not None:
        # Explicit switch propagation: a spawn-context worker resets
        # these process globals to their defaults, so the coordinator's
        # choices must be re-applied (fork inherits them, harmlessly
        # re-applied).
        set_caches_enabled(bool(switches.get("caches", True)))
        set_pooling_enabled(bool(switches.get("pooling", True)))
        set_batching_enabled(bool(switches.get("batching", True)))
    dataset = build_benchmark(benchmark_config)
    _WORKER["dataset"] = dataset
    _WORKER["evaluator"] = Evaluator(
        dataset, measure_timing=measure_timing, timing_repeats=timing_repeats
    )
    _WORKER["examples"] = {e.example_id: e for e in dataset.examples}
    _WORKER["methods"] = {}
    if trace_enabled:
        # Workers trace into their own ambient tracer; finished spans are
        # shipped back (pickled dataclasses) with each chunk's records.
        set_tracer(Tracer())


def _worker_evaluate(
    spec: MethodSpec,
    example_ids: list[str],
    gold_updates: GoldCache,
) -> tuple[list[EvaluationRecord], list[ExampleSpan]]:
    evaluator: Evaluator = _WORKER["evaluator"]
    # Coordinator-precomputed gold results: the worker never re-executes
    # gold SQL, so each distinct gold query runs exactly once per dataset.
    evaluator._gold_cache.update(gold_updates)
    methods: dict[str, PipelineMethod] = _WORKER["methods"]
    key = spec.key()
    if key not in methods:
        method = PipelineMethod(spec.config, spec.group, seed=spec.seed)
        method.prepare(_WORKER["dataset"])
        methods[key] = method
    method = methods[key]
    examples = [_WORKER["examples"][eid] for eid in example_ids]
    records = [evaluator.evaluate_example(method, example) for example in examples]
    return records, get_tracer().drain()


# -- coordinator side --------------------------------------------------------


class ParallelEvaluator:
    """Drop-in parallel replacement for :class:`Evaluator`.

    API-compatible with ``Evaluator.evaluate_method`` / ``evaluate_zoo``;
    results are identical to the sequential path (bit-identical when
    ``measure_timing`` is off — wall-clock timings are inherently
    run-dependent either way).

    Parameters beyond ``Evaluator``'s:

    * ``jobs`` — worker count (default: CPU count).  ``jobs <= 1`` keeps
      everything in-process but still gets the gold precompute and the
      result cache.
    * ``benchmark_config`` — build recipe for worker-side dataset
      rebuilds; defaults to ``dataset.config`` (set by
      :func:`build_benchmark`).
    * ``use_result_cache`` — persist/reuse finished records in the
      ``log_store`` (requires one).
    * ``executor`` — ``"auto"`` (process pool for large runs, threads for
      small ones), ``"process"``, or ``"thread"``.
    """

    def __init__(
        self,
        dataset: Dataset,
        log_store: ExperimentLogStore | None = None,
        timing_repeats: int = 1,
        measure_timing: bool = True,
        jobs: int | None = None,
        benchmark_config: BenchmarkConfig | None = None,
        use_result_cache: bool = True,
        executor: str = "auto",
        min_process_work: int = _PROCESS_MIN_WORK,
        chunk_size: int | None = None,
    ) -> None:
        if executor not in ("auto", "process", "thread"):
            raise ValueError(f"unknown executor kind {executor!r}")
        self.dataset = dataset
        self.log_store = log_store
        self.timing_repeats = timing_repeats
        self.measure_timing = measure_timing
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.benchmark_config = (
            benchmark_config
            if benchmark_config is not None
            else getattr(dataset, "config", None)
        )
        self.use_result_cache = use_result_cache and log_store is not None
        self.executor = executor
        self.min_process_work = min_process_work
        self.chunk_size = chunk_size
        self.stats = EvalStats()
        self.last_run_fresh = 0
        # Spans drained from the ambient tracer (workers included), one
        # batch per evaluate_method call; empty while tracing is disabled.
        self.trace_spans: list[ExampleSpan] = []
        self._feature_cache: dict[str, SQLFeatures] = {}
        self._gold_cache: GoldCache = {}
        # The local evaluator shares both caches with this engine; it owns
        # the gold precompute and the small-run / non-picklable fallback.
        # It never logs: the engine stores records itself, exactly once.
        self._local = Evaluator(
            dataset,
            log_store=None,
            timing_repeats=timing_repeats,
            measure_timing=measure_timing,
            gold_cache=self._gold_cache,
            feature_cache=self._feature_cache,
        )
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                # Tracing state is captured at pool creation: toggle the
                # ambient tracer before the first parallel evaluate call.
                initargs=(
                    self.benchmark_config,
                    self.measure_timing,
                    self.timing_repeats,
                    get_tracer().enabled,
                    {
                        "caches": caches_enabled(),
                        "pooling": pooling_enabled(),
                        "batching": batching_enabled(),
                    },
                ),
            )
        return self._pool

    # -- planning -------------------------------------------------------

    def _pick_executor(self, spec: MethodSpec | None, pending: int, prepare: bool) -> str:
        """Choose local / thread / process for this batch of work."""
        if self.jobs <= 1 or pending <= 1:
            return "local"
        process_ok = (
            spec is not None and self.benchmark_config is not None and prepare
        )
        if self.executor == "process":
            return "process" if process_ok else "thread"
        if self.executor == "thread":
            return "thread"
        if process_ok and pending >= self.min_process_work:
            return "process"
        return "thread"

    def _chunks(self, examples: list[Example]) -> list[list[Example]]:
        size = self.chunk_size
        if size is None:
            # Aim for a few chunks per worker so stragglers rebalance.
            size = max(1, -(-len(examples) // (self.jobs * 4)))
        return [examples[i : i + size] for i in range(0, len(examples), size)]

    # -- evaluation -----------------------------------------------------

    def _evaluate_process(
        self, spec: MethodSpec, pending: list[Example]
    ) -> list[EvaluationRecord]:
        pool = self._process_pool()
        futures: list[Future] = []
        for chunk in self._chunks(pending):
            # Ship the chunk's precomputed gold results along with the
            # task: any worker can serve any chunk without re-execution.
            # Gold keys carry the coordinator's data_version, which the
            # worker's freshly-built dataset reproduces deterministically.
            gold_updates = {}
            for e in chunk:
                database = self.dataset.database(e.db_id)
                key = gold_key(e, database.data_version, database.backend_name)
                gold_updates[key] = self._gold_cache[key]
            ids = [e.example_id for e in chunk]
            futures.append(pool.submit(_worker_evaluate, spec, ids, gold_updates))
            self.stats.parallel_tasks += 1
        trace = get_tracer()
        records: list[EvaluationRecord] = []
        for future in futures:
            chunk_records, chunk_spans = future.result()
            records.extend(chunk_records)
            trace.add_spans(chunk_spans)
        return records

    def _evaluate_threads(
        self, method: NL2SQLMethod, pending: list[Example]
    ) -> list[EvaluationRecord]:
        def run_chunk(chunk: list[Example]) -> list[EvaluationRecord]:
            return [self._local.evaluate_example(method, e) for e in chunk]

        chunks = self._chunks(pending)
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            self.stats.parallel_tasks += len(chunks)
            return [record for future in futures for record in future.result()]

    def evaluate_example(self, method: NL2SQLMethod, example: Example) -> EvaluationRecord:
        """Score one example in-process (same semantics as ``Evaluator``)."""
        return self._local.evaluate_example(method, example)

    def evaluate_method(
        self,
        method: NL2SQLMethod,
        examples: list[Example] | None = None,
        split: str = "dev",
        prepare: bool = True,
    ) -> MethodReport:
        """Evaluate ``method`` on ``examples`` (default: the dev split)."""
        examples = list(examples) if examples is not None else self.dataset.split(split)
        # Snapshot the process-cumulative LRU and read-path counters so
        # the collected metrics carry only this run's deltas (coordinator
        # process only; worker-process memos stay worker-local).
        lru_before = lru_cache_stats()
        pool_before = self._local.pool_totals()
        cached: dict[str, EvaluationRecord] = {}
        fingerprint: str | None = None
        if self.use_result_cache and MethodSpec.from_method(method) is not None:
            fingerprint = result_fingerprint(
                method, self.dataset, self.measure_timing, self.timing_repeats
            )
            cached = self.log_store.cached_records(fingerprint)

        pending = [e for e in examples if e.example_id not in cached]
        self.stats.cache_hits += len(examples) - len(pending)
        self.last_run_fresh = len(pending)
        self.stats.fresh_by_method[method.name] = len(pending)

        fresh: dict[str, EvaluationRecord] = {}
        fresh_gold = 0
        if pending:
            fresh_gold = self._local.precompute_gold(pending)
            self.stats.gold_executions += fresh_gold
            spec = MethodSpec.from_method(method)
            mode = self._pick_executor(spec, len(pending), prepare)
            if mode == "process":
                records = self._evaluate_process(spec, pending)
            else:
                if prepare:
                    method.prepare(self.dataset)
                if mode == "thread":
                    records = self._evaluate_threads(method, pending)
                else:
                    records = [
                        self._local.evaluate_example(method, e) for e in pending
                    ]
            self.stats.predictions += len(pending)
            fresh = {record.example_id: record for record in records}

        report = MethodReport(method=method.name)
        report.records = [
            cached[e.example_id] if e.example_id in cached else fresh[e.example_id]
            for e in examples
        ]
        spans, registry = self._collect_observability(
            method.name, report.records, cached, fresh_gold, lru_before, pool_before
        )
        if fingerprint is not None and fresh:
            self.log_store.store_cached_records(fingerprint, list(fresh.values()))
        if self.log_store is not None and report.records:
            run_id = self.log_store.store_records(self.dataset.name, report.records)
            if registry is not None:
                self.log_store.store_trace(run_id, spans)
                self.log_store.store_metrics(run_id, registry)
        return report

    def _collect_observability(
        self,
        method_name: str,
        records: list[EvaluationRecord],
        cached: dict[str, EvaluationRecord],
        fresh_gold: int,
        lru_before: dict[str, dict[str, int]] | None = None,
        pool_before: dict[str, int] | None = None,
    ) -> tuple[list[ExampleSpan], MetricsRegistry | None]:
        """Drain this method's spans (synthesizing cache-hit spans) and
        build its per-run metrics — mirror of the sequential evaluator's."""
        trace = get_tracer()
        if not trace.enabled:
            return [], None
        # Examples served by the cross-run cache never ran the pipeline,
        # so they get synthetic stage-less spans; the failure tag is
        # re-derived from the record's deterministic fields (corruption
        # tags are not persisted, so attribution is coarser here).
        synthetic = [
            ExampleSpan(
                method=record.method,
                example_id=record.example_id,
                cache_hit=True,
                input_tokens=record.input_tokens,
                output_tokens=record.output_tokens,
                cost_usd=record.cost_usd,
                failure=classify_failure(
                    ex=record.ex,
                    truncated=record.gold_truncated or record.predicted_truncated,
                ),
            )
            for record in records
            if record.example_id in cached
        ]
        trace.add_spans(synthetic)
        spans = trace.drain(method=method_name)
        self.trace_spans.extend(spans)
        registry = MetricsRegistry()
        registry.count(
            "gold_executions",
            value=fresh_gold,
            method=method_name,
            benchmark=self.dataset.name,
        )
        ingest_lru_deltas(registry, self.dataset.name, method_name, lru_before)
        ingest_pool_deltas(
            registry,
            self.dataset.name,
            method_name,
            pool_before,
            self._local.pool_totals(),
        )
        for record in records:
            ingest_record(
                registry,
                self.dataset.name,
                record,
                cache_hit=record.example_id in cached,
            )
        for span in spans:
            ingest_span(registry, self.dataset.name, span)
        trace.metrics.merge(registry)
        return spans, registry

    def evaluate_zoo(
        self,
        methods: list[NL2SQLMethod],
        examples: list[Example] | None = None,
        split: str = "dev",
    ) -> dict[str, MethodReport]:
        """Evaluate several methods; returns name -> report.

        The worker pool persists across methods, so each worker prepares a
        method at most once and the gold precompute is shared by all.
        """
        return {
            method.name: self.evaluate_method(method, examples=examples, split=split)
            for method in methods
        }
