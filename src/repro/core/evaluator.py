"""The NL2SQL360 Evaluator: run methods over benchmarks, produce reports.

The evaluator executes gold and predicted SQL against the live SQLite
databases (caching gold executions), computes EX with Spider's
order-sensitivity rule, EM with Spider's component comparison, and times
executions for VES.  Every record can be persisted to the SQLite-backed
:class:`~repro.core.logs.ExperimentLogStore` for later analysis.

Hot-path memo layers (all bit-identical on vs off, see
``repro.utils.cache``): prepared methods select few-shot examples
through the shared :class:`~repro.modules.retrieval.FewShotIndex`, the
simulated model memoizes honestly-parsed intents per question, PICARD
verdicts and candidate executions are memoized per schema/database, and
untimed predicted-SQL scoring reuses the candidate-execution LRU.

Observability: when a tracer is installed (``repro.obs.tracing()``),
``evaluate_example`` opens an example span with ``execute``/``score``
stage children (prediction-side stages are emitted inside the method
pipeline), tags failures via
:func:`repro.core.taxonomy.classify_failure`, and ``evaluate_method``
drains the method's spans into ``self.trace_spans``, folds them into the
tracer's :class:`~repro.obs.registry.MetricsRegistry`, and persists both
next to the records when a log store is attached.

Inputs/outputs: a :class:`~repro.datagen.benchmark.Dataset` plus methods
in, :class:`~repro.core.metrics.MethodReport` record streams out.

Thread/process safety: concurrent ``evaluate_example`` calls from
multiple threads are safe (database access is lock-guarded, cache-dict
updates are atomic under the GIL, span state is thread-local);
``evaluate_method`` / ``evaluate_zoo`` are coordinator-only.  Instances
do not cross process boundaries — the parallel engine rebuilds one
evaluator per worker.
"""

from __future__ import annotations

from repro.core.logs import ExperimentLogStore
from repro.core.metrics import EvaluationRecord, MethodReport
from repro.core.taxonomy import classify_failure
from repro.datagen.benchmark import Dataset, Example
from repro.dbengine.executor import (
    ExecutionResult,
    execute_sql,
    execute_sql_cached,
    results_match,
)
from repro.dbengine.timing import timed_execute
from repro.methods.base import NL2SQLMethod
from repro.obs.registry import (
    MetricsRegistry,
    ingest_lru_deltas,
    ingest_pool_deltas,
    ingest_record,
    ingest_span,
)
from repro.obs.trace import ExampleSpan, get_tracer
from repro.utils.cache import lru_cache_stats
from repro.sqlkit.exact_match import exact_match
from repro.sqlkit.features import SQLFeatures, extract_features

# (db_id, data_version, gold_sql) -> (result, seconds); shared between the
# sequential evaluator and the parallel engine's one-pass gold precompute.
GoldCache = dict[str, tuple[ExecutionResult, float]]


def gold_key(example: Example, data_version: int = 0, backend: str = "sqlite") -> str:
    """Cache key for one (db_id, backend, data_version, gold_sql) gold execution.

    Keying on the database's ``data_version`` means a content mutation
    (``Database.mark_mutated``) invalidates the gold result along with
    every other execution memo — a mid-run mutation can never serve a
    stale gold row set.  The execution backend is part of the key so a
    gold result computed on one engine is never served for another
    (results must be bit-identical across backends, but errors and
    timings need not be).
    """
    return f"{example.db_id}::{backend}::{data_version}::{example.gold_sql}"


class Evaluator:
    """Evaluates methods against one benchmark dataset."""

    def __init__(
        self,
        dataset: Dataset,
        log_store: ExperimentLogStore | None = None,
        timing_repeats: int = 1,
        measure_timing: bool = True,
        gold_cache: GoldCache | None = None,
        feature_cache: dict[str, SQLFeatures] | None = None,
    ) -> None:
        self.dataset = dataset
        self.log_store = log_store
        self.timing_repeats = timing_repeats
        self.measure_timing = measure_timing
        # Caches may be injected so several evaluators (e.g. the parallel
        # engine's local path and its workers) share one set of results.
        self._gold_cache: GoldCache = gold_cache if gold_cache is not None else {}
        self._feature_cache: dict[str, SQLFeatures] = (
            feature_cache if feature_cache is not None else {}
        )
        # Spans drained from the ambient tracer, one batch per
        # evaluate_method call; empty while tracing is disabled.
        self.trace_spans: list[ExampleSpan] = []

    # -- internals ----------------------------------------------------------

    def _gold_execution(self, example: Example) -> tuple[ExecutionResult, float]:
        database = self.dataset.database(example.db_id)
        key = gold_key(example, database.data_version, database.backend_name)
        if key not in self._gold_cache:
            if self.measure_timing:
                timed = timed_execute(
                    database, example.gold_sql, repeats=self.timing_repeats
                )
                self._gold_cache[key] = (timed.result, timed.seconds)
            else:
                result = execute_sql(database, example.gold_sql)
                self._gold_cache[key] = (result, 1e-4)
        return self._gold_cache[key]

    def precompute_gold(self, examples: list[Example]) -> int:
        """One-pass gold precompute: run each distinct (db_id, gold_sql) once.

        Shares the timed results with every method evaluated afterwards
        (and, via the injected ``gold_cache``, with parallel workers).
        Returns the number of fresh executions performed.
        """
        fresh = 0
        for example in examples:
            database = self.dataset.database(example.db_id)
            if gold_key(example, database.data_version, database.backend_name) not in self._gold_cache:
                self._gold_execution(example)
                fresh += 1
        return fresh

    def _features(self, gold_sql: str) -> SQLFeatures:
        if gold_sql not in self._feature_cache:
            self._feature_cache[gold_sql] = extract_features(gold_sql)
        return self._feature_cache[gold_sql]

    def evaluate_example(self, method: NL2SQLMethod, example: Example) -> EvaluationRecord:
        """Run ``method`` on one example and score it."""
        trace = get_tracer()
        with trace.example(method.name, example.example_id) as span:
            database = self.dataset.database(example.db_id)
            prediction = method.predict(example, database)
            gold_cached = (
                gold_key(example, database.data_version, database.backend_name)
                in self._gold_cache
            )
            with trace.stage("execute") as stage:
                stage.cache_hit = gold_cached
                gold_result, gold_seconds = self._gold_execution(example)
                if self.measure_timing:
                    predicted_timed = timed_execute(
                        database, prediction.sql, repeats=self.timing_repeats
                    )
                    predicted_result = predicted_timed.result
                    predicted_seconds = predicted_timed.seconds
                else:
                    # Untimed scoring shares the candidate-execution LRU:
                    # post-processing usually executed this exact SQL.
                    predicted_result = execute_sql_cached(database, prediction.sql)
                    predicted_seconds = 1e-4
            with trace.stage("score"):
                features = self._features(example.gold_sql)
                ex = results_match(
                    predicted_result, gold_result, order_matters=features.has_order_by
                )
                em = exact_match(prediction.sql, example.gold_sql)
            if trace.enabled:
                span.input_tokens = prediction.input_tokens
                span.output_tokens = prediction.output_tokens
                span.cost_usd = prediction.cost_usd
                span.failure = classify_failure(
                    ex=ex,
                    prediction_errors=prediction.errors,
                    execution_error=predicted_result.error,
                    truncated=gold_result.truncated or predicted_result.truncated,
                )
        return EvaluationRecord(
            method=method.name,
            example_id=example.example_id,
            db_id=example.db_id,
            domain=example.domain,
            question=example.question,
            gold_sql=example.gold_sql,
            predicted_sql=prediction.sql,
            hardness=example.hardness,
            bird_difficulty=example.bird_difficulty,
            variant_group=example.variant_group,
            variant_style=example.variant_style,
            ex=ex,
            em=em,
            gold_seconds=gold_seconds,
            predicted_seconds=predicted_seconds,
            input_tokens=prediction.input_tokens,
            output_tokens=prediction.output_tokens,
            cost_usd=prediction.cost_usd,
            latency_s=prediction.latency_s,
            has_join=features.has_join,
            has_subquery=features.has_subquery,
            has_logical_connector=features.has_logical_connector,
            has_order_by=features.has_order_by,
            gold_truncated=gold_result.truncated,
            predicted_truncated=predicted_result.truncated,
        )

    def pool_totals(self) -> dict[str, int]:
        """Read-path counters summed over this dataset's databases."""
        totals = {"created": 0, "checkouts": 0, "refreshes": 0, "waits": 0}
        for database in self.dataset.databases.values():
            for key, value in database.pool_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def _collect_observability(
        self,
        method_name: str,
        records: list[EvaluationRecord],
        fresh_gold: int,
        lru_before: dict[str, dict[str, int]] | None = None,
        pool_before: dict[str, int] | None = None,
    ) -> tuple[list[ExampleSpan], MetricsRegistry | None]:
        """Drain this method's spans and build its per-run metrics."""
        trace = get_tracer()
        if not trace.enabled:
            return [], None
        spans = trace.drain(method=method_name)
        self.trace_spans.extend(spans)
        registry = MetricsRegistry()
        registry.count(
            "gold_executions",
            value=fresh_gold,
            method=method_name,
            benchmark=self.dataset.name,
        )
        ingest_lru_deltas(registry, self.dataset.name, method_name, lru_before)
        ingest_pool_deltas(
            registry, self.dataset.name, method_name, pool_before, self.pool_totals()
        )
        for record in records:
            ingest_record(registry, self.dataset.name, record)
        for span in spans:
            ingest_span(registry, self.dataset.name, span)
        trace.metrics.merge(registry)
        return spans, registry

    # -- public API --------------------------------------------------------------

    def evaluate_method(
        self,
        method: NL2SQLMethod,
        examples: list[Example] | None = None,
        split: str = "dev",
        prepare: bool = True,
    ) -> MethodReport:
        """Evaluate ``method`` on ``examples`` (default: the dev split)."""
        if prepare:
            method.prepare(self.dataset)
        examples = examples if examples is not None else self.dataset.split(split)
        # Snapshot the process-cumulative LRU and read-path counters so
        # the collected metrics carry only this run's deltas.
        lru_before = lru_cache_stats()
        pool_before = self.pool_totals()
        # Precompute gold up front: each distinct gold query runs exactly
        # once, and every example span sees the gold cache warm — same
        # behaviour as the parallel engine, so span trees are comparable.
        fresh_gold = self.precompute_gold(examples)
        report = MethodReport(method=method.name)
        for example in examples:
            report.records.append(self.evaluate_example(method, example))
        spans, registry = self._collect_observability(
            method.name, report.records, fresh_gold, lru_before, pool_before
        )
        if self.log_store is not None:
            run_id = self.log_store.store_records(self.dataset.name, report.records)
            if registry is not None:
                self.log_store.store_trace(run_id, spans)
                self.log_store.store_metrics(run_id, registry)
        return report

    def evaluate_zoo(
        self,
        methods: list[NL2SQLMethod],
        examples: list[Example] | None = None,
        split: str = "dev",
    ) -> dict[str, MethodReport]:
        """Evaluate several methods; returns name -> report."""
        return {
            method.name: self.evaluate_method(method, examples=examples, split=split)
            for method in methods
        }
