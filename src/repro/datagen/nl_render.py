"""Render a :class:`QueryIntent` as an English question.

The templates define the *canonical* phrasing of each intent shape; the
paraphraser (:mod:`repro.datagen.paraphrase`) derives surface variants
for query-variance testing.  Phrasing is designed to be information
complete — every schema element, value, and operator the gold SQL needs
is recoverable from the text — so that the NLU substrate faces a genuine
(but solvable) parsing problem.
"""

from __future__ import annotations

from repro.datagen.intents import (
    Aggregate,
    ColumnSel,
    Filter,
    HavingSpec,
    IntentShape,
    OrderSpec,
    QueryIntent,
)
from repro.errors import DataGenerationError
from repro.schema.model import DatabaseSchema

AGG_PHRASES = {
    Aggregate.COUNT: "number",
    Aggregate.SUM: "total",
    Aggregate.AVG: "average",
    Aggregate.MIN: "minimum",
    Aggregate.MAX: "maximum",
}

OP_PHRASES = {
    "=": "is",
    "!=": "is not",
    ">": "is greater than",
    "<": "is less than",
    ">=": "is at least",
    "<=": "is at most",
    "like": "contains",
}


def _column_phrase(schema: DatabaseSchema, sel: ColumnSel) -> str:
    if sel.is_star:
        return "records"
    column = schema.table(sel.table).column(sel.column)
    return column.display_name


def _table_phrase(schema: DatabaseSchema, table_name: str) -> str:
    return schema.table(table_name).display_name


def _value_phrase(value: object, op: str) -> str:
    if op == "like":
        # Strip SQL wildcards for the NL surface form.
        text = str(value).strip("%")
        return f"'{text}'"
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _filter_phrase(schema: DatabaseSchema, flt: Filter) -> str:
    column = _column_phrase(schema, flt.column)
    if flt.op == "between":
        low = _value_phrase(flt.value, "=")
        high = _value_phrase(flt.value2, "=")
        return f"{column} is between {low} and {high}"
    op_phrase = OP_PHRASES[flt.op]
    return f"{column} {op_phrase} {_value_phrase(flt.value, flt.op)}"


def _filters_phrase(schema: DatabaseSchema, filters: tuple[Filter, ...]) -> str:
    parts = []
    for i, flt in enumerate(filters):
        phrase = _filter_phrase(schema, flt)
        if i > 0:
            phrase = f"{flt.connector} whose {phrase}"
        parts.append(phrase)
    return " ".join(parts)


def _projection_phrase(schema: DatabaseSchema, projection: tuple[ColumnSel, ...]) -> str:
    phrases = [_column_phrase(schema, sel) for sel in projection]
    if not phrases:
        return "records"
    if len(phrases) == 1:
        return phrases[0]
    return ", ".join(phrases[:-1]) + " and " + phrases[-1]


def _agg_phrase(schema: DatabaseSchema, aggregate: Aggregate, sel: ColumnSel | None) -> str:
    word = AGG_PHRASES[aggregate]
    if aggregate == Aggregate.COUNT or sel is None or sel.is_star:
        return "number of records"
    return f"{word} {_column_phrase(schema, sel)}"


def _having_phrase(having: HavingSpec) -> str:
    value = int(having.value) if float(having.value).is_integer() else having.value
    op_text = {">": "more than", ">=": "at least", "<": "fewer than", "<=": "at most"}[
        having.op
    ]
    return f"keeping only groups with {op_text} {value} records"


def _order_phrase(schema: DatabaseSchema, order: OrderSpec) -> str:
    direction = "descending" if order.direction == "desc" else "ascending"
    if order.aggregate != Aggregate.NONE:
        key = _agg_phrase(schema, order.aggregate, order.column)
    else:
        key = _column_phrase(schema, order.column)
    phrase = f"sorted by {key} in {direction} order"
    if order.limit is not None:
        phrase += f", showing only the top {order.limit}"
    return phrase


def render_intent_nl(intent: QueryIntent, schema: DatabaseSchema) -> str:
    """Render the canonical English question for ``intent``."""
    renderer = {
        IntentShape.PROJECT: _render_project,
        IntentShape.AGG: _render_agg,
        IntentShape.GROUP_AGG: _render_group_agg,
        IntentShape.ORDER_TOP: _render_order_top,
        IntentShape.JOIN_PROJECT: _render_join_project,
        IntentShape.JOIN_GROUP: _render_group_agg,
        IntentShape.SUBQUERY_CMP_AGG: _render_subquery_cmp,
        IntentShape.SUBQUERY_IN: _render_subquery_in,
        IntentShape.SUBQUERY_NOT_IN: _render_subquery_in,
        IntentShape.EXTREME: _render_extreme,
        IntentShape.SET_OP: _render_set_op,
    }[intent.shape]
    return renderer(intent, schema)


def _where_tail(intent: QueryIntent, schema: DatabaseSchema) -> str:
    if not intent.filters:
        return ""
    return f" whose {_filters_phrase(schema, intent.filters)}"


def _render_project(intent: QueryIntent, schema: DatabaseSchema) -> str:
    table = _table_phrase(schema, intent.tables[0])
    cols = _projection_phrase(schema, intent.projection)
    distinct = "distinct " if intent.distinct else ""
    return f"Show the {distinct}{cols} of all {table}{_where_tail(intent, schema)}."


def _render_agg(intent: QueryIntent, schema: DatabaseSchema) -> str:
    table = _table_phrase(schema, intent.tables[0])
    tail = _where_tail(intent, schema)
    if intent.aggregate == Aggregate.COUNT:
        return f"How many {table} are there{tail}?"
    word = AGG_PHRASES[intent.aggregate]
    column = _column_phrase(schema, intent.agg_column) if intent.agg_column else "value"
    return f"What is the {word} {column} of all {table}{tail}?"


def _render_group_agg(intent: QueryIntent, schema: DatabaseSchema) -> str:
    if intent.group_by is None:
        raise DataGenerationError("group_agg intent missing group key")
    key = _column_phrase(schema, intent.group_by)
    agg = _agg_phrase(schema, intent.aggregate, intent.agg_column)
    if intent.has_join:
        child = _table_phrase(schema, intent.tables[0])
        subject = f"{agg} of the related {child}"
    else:
        table = _table_phrase(schema, intent.tables[0])
        subject = f"{agg} of the {table}"
    sentence = f"For each {key}, show the {subject}"
    if intent.having is not None:
        sentence += f", {_having_phrase(intent.having)}"
    if intent.order is not None:
        sentence += f", {_order_phrase(schema, intent.order)}"
    return sentence + "."


def _render_order_top(intent: QueryIntent, schema: DatabaseSchema) -> str:
    if intent.order is None:
        raise DataGenerationError("order_top intent missing order spec")
    table = _table_phrase(schema, intent.tables[0])
    cols = _projection_phrase(schema, intent.projection)
    sentence = f"List the {cols} of all {table}{_where_tail(intent, schema)}"
    sentence += f", {_order_phrase(schema, intent.order)}"
    return sentence + "."


def _render_join_project(intent: QueryIntent, schema: DatabaseSchema) -> str:
    first_table = _table_phrase(schema, intent.tables[0])
    second_table = _table_phrase(schema, intent.tables[1])
    first_cols = [sel for sel in intent.projection if sel.table == intent.tables[0]]
    second_cols = [sel for sel in intent.projection if sel.table == intent.tables[1]]
    first = _projection_phrase(schema, tuple(first_cols))
    second = _projection_phrase(schema, tuple(second_cols))
    sentence = (
        f"Show the {first} of each {first_table} together with the {second} "
        f"of its {second_table}{_where_tail(intent, schema)}"
    )
    return sentence + "."


def _render_subquery_cmp(intent: QueryIntent, schema: DatabaseSchema) -> str:
    spec = intent.subquery
    if spec is None:
        raise DataGenerationError("subquery intent missing spec")
    table = _table_phrase(schema, intent.tables[0])
    cols = _projection_phrase(schema, intent.projection)
    column = _column_phrase(schema, spec.outer_column)
    direction = "above" if spec.op == ">" else "below"
    return (
        f"List the {cols} of all {table} whose {column} is {direction} "
        f"the average {column}."
    )


def _render_subquery_in(intent: QueryIntent, schema: DatabaseSchema) -> str:
    spec = intent.subquery
    if spec is None or spec.inner_filter is None:
        raise DataGenerationError("subquery-in intent missing inner filter")
    parent = _table_phrase(schema, intent.tables[0])
    child = _table_phrase(schema, spec.inner_table)
    cols = _projection_phrase(schema, intent.projection)
    condition = _filter_phrase(schema, spec.inner_filter)
    if spec.negated:
        return f"Show the {cols} of all {parent} that have no {child} whose {condition}."
    return (
        f"Show the {cols} of all {parent} that have at least one {child} "
        f"whose {condition}."
    )


def _render_extreme(intent: QueryIntent, schema: DatabaseSchema) -> str:
    spec = intent.subquery
    if spec is None:
        raise DataGenerationError("extreme intent missing spec")
    table = _table_phrase(schema, intent.tables[0])
    cols = _projection_phrase(schema, intent.projection)
    column = _column_phrase(schema, spec.outer_column)
    superlative = "highest" if spec.aggregate == Aggregate.MAX else "lowest"
    return f"Show the {cols} of the {table} with the {superlative} {column}."


def _render_set_op(intent: QueryIntent, schema: DatabaseSchema) -> str:
    if intent.set_op is None or intent.set_branch_filter is None or not intent.filters:
        raise DataGenerationError("set_op intent missing branches")
    table = _table_phrase(schema, intent.tables[0])
    cols = _projection_phrase(schema, intent.projection)
    first = _filter_phrase(schema, intent.filters[0])
    second = _filter_phrase(schema, intent.set_branch_filter)
    connector = {
        "intersect": "and also whose",
        "union": "or alternatively whose",
        "except": "but not whose",
    }[intent.set_op]
    return f"Show the {cols} of all {table} whose {first} {connector} {second}."
