"""Generate database schemas from domain specifications.

Each database follows the domain's entity pattern:

* a **category** lookup table (``genres``: id, name),
* a **secondary** entity (``directors``: id, name, city, ...),
* a **primary** entity (``movies``: id, name, FK->category, FK->secondary,
  numeric attributes),
* an **event** table (``screenings``: id, FK->primary, date, numeric).

Spider-like databases use 2–8 of these tables; BIRD-like databases add
extra attribute columns and wider tables to match Table 2's statistics.
"""

from __future__ import annotations

import random

from repro.datagen.domains import DomainSpec
from repro.schema.model import Column, ColumnType, DatabaseSchema, ForeignKey, Table
from repro.utils.rng import derive_rng
from repro.utils.text import singularize

_NUMERIC_EXTRAS = [
    "rank", "level", "count_total", "score_avg", "value", "index_number",
    "growth", "share", "density", "volume",
]
_TEXT_EXTRAS = [
    "status", "notes_code", "region", "phase", "grade", "tier",
]


def _plural(noun: str) -> str:
    if noun.endswith("y") and not noun.endswith(("ay", "ey", "oy", "uy")):
        return noun[:-1] + "ies"
    if noun.endswith(("s", "x", "z", "ch", "sh")):
        return noun + "es"
    return noun + "s"


def _pk(noun: str) -> Column:
    return Column(name=f"{noun}_id", col_type=ColumnType.INTEGER, is_primary_key=True)


def _numeric_columns(rng: random.Random, pool: list[str], count: int) -> list[Column]:
    chosen = rng.sample(pool, min(count, len(pool)))
    columns = []
    for name in chosen:
        col_type = ColumnType.REAL if rng.random() < 0.4 else ColumnType.INTEGER
        columns.append(Column(name=name, col_type=col_type))
    return columns


def generate_schema(
    domain: DomainSpec,
    db_index: int,
    seed: int = 0,
    wide: bool = False,
) -> DatabaseSchema:
    """Generate one database schema within ``domain``.

    Args:
        domain: Domain vocabulary.
        db_index: Index of this database within the domain (varies the
            table subset and column widths so databases differ).
        seed: Base seed for deterministic generation.
        wide: BIRD-style generation — more columns per table.
    """
    rng = derive_rng(seed, "schema", domain.name, db_index, wide)
    suffix = "" if db_index == 0 else f"_{db_index}"
    db_id = f"{domain.name}{suffix}"

    category_table = _plural(domain.category)
    secondary_table = _plural(domain.secondary)
    primary_table = _plural(domain.primary)
    event_table = _plural(domain.event)

    extra_width = (2 if wide else 0) + rng.randrange(0, 3 if wide else 2)

    tables: list[Table] = []
    foreign_keys: list[ForeignKey] = []

    # Category lookup table.
    tables.append(
        Table(
            name=category_table,
            columns=[
                _pk(domain.category),
                Column(name=f"{domain.category}_name", col_type=ColumnType.TEXT),
            ],
        )
    )

    # Secondary (owner) entity.
    secondary_columns = [
        _pk(domain.secondary),
        Column(name="name", col_type=ColumnType.TEXT,
               natural_name=f"{domain.secondary} name"),
        Column(name="city", col_type=ColumnType.TEXT),
        Column(name="age", col_type=ColumnType.INTEGER),
    ]
    if rng.random() < 0.6 or wide:
        secondary_columns.append(Column(name="country", col_type=ColumnType.TEXT))
    secondary_columns.extend(_numeric_columns(rng, _NUMERIC_EXTRAS, extra_width))
    tables.append(Table(name=secondary_table, columns=secondary_columns))

    # Primary entity.
    attributes = list(domain.extra_attributes)
    rng.shuffle(attributes)
    primary_columns = [
        _pk(domain.primary),
        Column(name="name", col_type=ColumnType.TEXT,
               natural_name=f"{domain.primary} name"),
        Column(name=f"{domain.category}_id", col_type=ColumnType.INTEGER),
        Column(name=f"{domain.secondary}_id", col_type=ColumnType.INTEGER),
        Column(name="year", col_type=ColumnType.INTEGER),
    ]
    attr_count = min(len(attributes), 3 + (2 if wide else 0))
    existing = {column.name.lower() for column in primary_columns}
    for attr in attributes[:attr_count]:
        if attr.lower() in existing:
            continue
        existing.add(attr.lower())
        col_type = ColumnType.REAL if rng.random() < 0.5 else ColumnType.INTEGER
        primary_columns.append(Column(name=attr, col_type=col_type))
    if wide:
        primary_columns.extend(
            Column(name=name, col_type=ColumnType.TEXT)
            for name in rng.sample(_TEXT_EXTRAS, 2)
        )
    tables.append(Table(name=primary_table, columns=primary_columns))
    foreign_keys.append(
        ForeignKey(primary_table, f"{domain.category}_id", category_table,
                   f"{domain.category}_id")
    )
    foreign_keys.append(
        ForeignKey(primary_table, f"{domain.secondary}_id", secondary_table,
                   f"{domain.secondary}_id")
    )

    # Event (transaction) table, present in most databases.
    if db_index % 4 != 3:
        event_columns = [
            _pk(domain.event),
            Column(name=f"{domain.primary}_id", col_type=ColumnType.INTEGER),
            Column(name="event_date", col_type=ColumnType.DATE,
                   natural_name=f"{domain.event} date"),
            Column(name="amount", col_type=ColumnType.REAL),
        ]
        event_columns.extend(_numeric_columns(rng, _NUMERIC_EXTRAS[3:], extra_width // 2))
        tables.append(Table(name=event_table, columns=event_columns))
        foreign_keys.append(
            ForeignKey(event_table, f"{domain.primary}_id", primary_table,
                       f"{domain.primary}_id")
        )

    # Optional location table for wider schemas.
    if wide or rng.random() < 0.3:
        location_table = "locations"
        tables.append(
            Table(
                name=location_table,
                columns=[
                    _pk(singularize(location_table)),
                    Column(name="city", col_type=ColumnType.TEXT),
                    Column(name="country", col_type=ColumnType.TEXT),
                    Column(name="population", col_type=ColumnType.INTEGER),
                ],
            )
        )

    return DatabaseSchema(
        db_id=db_id,
        tables=tables,
        foreign_keys=foreign_keys,
        domain=domain.name,
    )
