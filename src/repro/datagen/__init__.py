"""Synthetic benchmark generation: domains, schemas, values, SQL+NL pairs."""

from repro.datagen.domains import DOMAIN_CATALOG, DomainSpec, get_domain
from repro.datagen.schema_gen import generate_schema
from repro.datagen.populate import populate_database
from repro.datagen.intents import Aggregate, Filter, IntentShape, QueryIntent
from repro.datagen.intent_gen import generate_intent
from repro.datagen.sql_render import render_intent_sql
from repro.datagen.nl_render import render_intent_nl
from repro.datagen.paraphrase import paraphrase_question
from repro.datagen.export import export_spider_format, load_spider_format
from repro.datagen.benchmark import (
    BenchmarkConfig,
    bird_like_config,
    build_benchmark,
    kaggle_dbqa_config,
    spider_like_config,
    spider_realistic_config,
)

__all__ = [
    "DOMAIN_CATALOG",
    "DomainSpec",
    "get_domain",
    "generate_schema",
    "populate_database",
    "Aggregate",
    "Filter",
    "IntentShape",
    "QueryIntent",
    "generate_intent",
    "render_intent_sql",
    "render_intent_nl",
    "paraphrase_question",
    "export_spider_format",
    "load_spider_format",
    "BenchmarkConfig",
    "bird_like_config",
    "build_benchmark",
    "kaggle_dbqa_config",
    "spider_like_config",
    "spider_realistic_config",
]
