"""Typed value synthesis for populating tables.

Value pools are chosen from the owning domain's vocabulary so that NL
questions can mention real cell values ("whose city is 'Aberdeen'") and
BRIDGE-style content matching has something genuine to match against.
"""

from __future__ import annotations

import random

from repro.datagen.domains import DomainSpec
from repro.schema.model import Column, ColumnType, Table

# Numeric ranges keyed by attribute-name fragments (first match wins).
_NUMERIC_RANGES: list[tuple[str, tuple[float, float]]] = [
    ("rating", (1, 10)),
    ("stars", (1, 5)),
    ("score", (0, 100)),
    ("gpa", (1, 4)),
    ("age", (18, 80)),
    ("year", (1980, 2023)),
    ("price", (5, 2000)),
    ("budget", (100_000, 200_000_000)),
    ("box_office", (100_000, 900_000_000)),
    ("salary", (30_000, 250_000)),
    ("balance", (0, 500_000)),
    ("premium", (200, 9_000)),
    ("coverage", (10_000, 1_000_000)),
    ("capacity", (10, 800)),
    ("distance", (1, 9_000)),
    ("duration", (10, 600)),
    ("population", (1_000, 9_000_000)),
    ("attendance", (100, 90_000)),
    ("amount", (1, 5_000)),
    ("weight", (1, 500)),
    ("wins", (0, 60)),
    ("losses", (0, 60)),
    ("points", (0, 120)),
    ("credits", (0, 160)),
    ("tuition", (2_000, 60_000)),
]
_DEFAULT_RANGE = (0.0, 1_000.0)

_DATES = [
    f"202{year}-{month:02d}-{day:02d}"
    for year in range(0, 4)
    for month in (1, 3, 5, 7, 9, 11)
    for day in (4, 12, 21, 28)
]
_STATUS_VALUES = ["active", "pending", "closed", "archived", "open"]


def numeric_range(column_name: str) -> tuple[float, float]:
    """Return the (low, high) value range implied by a column name."""
    lowered = column_name.lower()
    for fragment, bounds in _NUMERIC_RANGES:
        if fragment in lowered:
            return bounds
    return _DEFAULT_RANGE


def text_pool(domain: DomainSpec, table: Table, column: Column) -> list[str]:
    """Return the value pool for a text column."""
    name = column.name.lower()
    if name == f"{domain.category}_name":
        return list(domain.category_values)
    if name == "name":
        if table.name.startswith(domain.primary):
            return list(domain.name_values)
        return domain.person_names[:40]
    if name == "city":
        return domain.cities
    if name == "country":
        return domain.countries
    if name in ("status", "phase", "tier", "grade"):
        return _STATUS_VALUES
    if name in ("region",):
        return ["north", "south", "east", "west", "central"]
    if name == "notes_code":
        return [f"N-{i:03d}" for i in range(1, 30)]
    return [f"{column.name}_{i}" for i in range(1, 25)]


def sample_value(
    rng: random.Random,
    domain: DomainSpec,
    table: Table,
    column: Column,
    row_index: int,
) -> object:
    """Sample one cell value for ``column`` in ``table``."""
    if column.is_primary_key:
        return row_index + 1
    if column.col_type == ColumnType.TEXT:
        pool = text_pool(domain, table, column)
        value = pool[rng.randrange(len(pool))]
        if column.name.lower() == "name" and rng.random() < 0.15:
            # A slice of unique long-tail names so that equality filters are
            # selective and LIKE patterns have realistic variety.
            value = f"{value} {row_index % 97}"
        return value
    if column.col_type == ColumnType.DATE:
        return _DATES[rng.randrange(len(_DATES))]
    if column.col_type == ColumnType.BOOLEAN:
        return rng.randrange(2)
    low, high = numeric_range(column.name)
    if column.col_type == ColumnType.INTEGER:
        return rng.randrange(int(low), int(high) + 1)
    return round(rng.uniform(low, high), 2)
