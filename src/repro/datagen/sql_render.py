"""Render a :class:`QueryIntent` to SQL.

This renderer is used twice, symmetrically:

* the benchmark generator renders *gold* SQL from the generated intent;
* the simulated models render SQL from whatever (possibly corrupted)
  intent their NLU recovered.

Both sides therefore share one notion of how intent maps to SQL, and any
discrepancy between a model's SQL and the gold SQL comes from genuine
intent-level errors, not renderer asymmetry.
"""

from __future__ import annotations

from repro.datagen.intents import (
    Aggregate,
    ColumnSel,
    Filter,
    HavingSpec,
    OrderSpec,
    QueryIntent,
    SubquerySpec,
)
from repro.errors import DataGenerationError
from repro.schema.model import DatabaseSchema
from repro.sqlkit.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expr,
    FromClause,
    FuncCall,
    InExpr,
    Join,
    LikeExpr,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    SetOperation,
    Star,
    Subquery,
    TableRef,
)
from repro.sqlkit.printer import to_sql


class _Scope:
    """Table alias bindings for one statement."""

    def __init__(self, tables: list[str], use_aliases: bool) -> None:
        self.tables = tables
        self.use_aliases = use_aliases and len(tables) > 1
        self.aliases = {
            table.lower(): (f"T{i + 1}" if self.use_aliases else table)
            for i, table in enumerate(tables)
        }

    def qualifier(self, table: str) -> str | None:
        if len(self.tables) == 1:
            return None
        return self.aliases.get(table.lower(), table)

    def column(self, sel: ColumnSel) -> Expr:
        if sel.is_star:
            return Star()
        return ColumnRef(column=sel.column, table=self.qualifier(sel.table))


def _aggregate_expr(aggregate: Aggregate, sel: ColumnSel | None, scope: _Scope) -> Expr:
    if aggregate == Aggregate.NONE:
        if sel is None:
            raise DataGenerationError("aggregate NONE requires a column")
        return scope.column(sel)
    if sel is None or sel.is_star:
        return FuncCall(name="count", args=[Star()])
    return FuncCall(name=aggregate.value, args=[scope.column(sel)])


def _filter_expr(flt: Filter, scope: _Scope) -> Expr:
    column = scope.column(flt.column)
    if flt.op == "like":
        return LikeExpr(operand=column, pattern=Literal(value=str(flt.value)))
    if flt.op == "between":
        return BetweenExpr(
            operand=column,
            low=Literal(value=flt.value),
            high=Literal(value=flt.value2),
        )
    return BinaryOp(op=flt.op, left=column, right=Literal(value=flt.value))


def _combine_filters(exprs_and_connectors: list[tuple[Expr, str]]) -> Expr | None:
    """Fold (expr, connector) pairs left-to-right, flattening same-op chains."""
    if not exprs_and_connectors:
        return None
    result, __ = exprs_and_connectors[0]
    for expr, connector in exprs_and_connectors[1:]:
        if isinstance(result, BooleanOp) and result.op == connector:
            result.operands.append(expr)
        else:
            result = BooleanOp(op=connector, operands=[result, expr])
    return result


def _where_clause(intent: QueryIntent, scope: _Scope, schema: DatabaseSchema) -> Expr | None:
    parts: list[tuple[Expr, str]] = []
    for flt in intent.filters:
        parts.append((_filter_expr(flt, scope), flt.connector))
    if intent.subquery is not None:
        parts.append((_subquery_expr(intent.subquery, scope, schema), "and"))
    return _combine_filters(parts)


def _subquery_expr(spec: SubquerySpec, scope: _Scope, schema: DatabaseSchema) -> Expr:
    inner_scope = _Scope([spec.inner_table], use_aliases=False)
    inner = SelectStatement()
    if spec.aggregate == Aggregate.NONE:
        inner.select_items = [SelectItem(expr=inner_scope.column(spec.inner_column))]
    else:
        inner.select_items = [
            SelectItem(expr=_aggregate_expr(spec.aggregate, spec.inner_column, inner_scope))
        ]
    inner.from_clause = FromClause(base=TableRef(name=spec.inner_table))
    if spec.inner_filter is not None:
        inner.where = _filter_expr(spec.inner_filter, inner_scope)
    outer_column = scope.column(spec.outer_column)
    if spec.op == "in":
        return InExpr(operand=outer_column, subquery=Subquery(select=inner), negated=spec.negated)
    return BinaryOp(op=spec.op, left=outer_column, right=Subquery(select=inner))


def _from_clause(intent: QueryIntent, scope: _Scope, schema: DatabaseSchema) -> FromClause:
    tables = list(intent.tables)
    base_alias = scope.aliases[tables[0].lower()] if scope.use_aliases else None
    from_clause = FromClause(
        base=TableRef(name=tables[0], alias=base_alias)
    )
    if len(tables) == 1:
        return from_clause
    fk_edges = schema.join_path(tables)
    placed = [tables[0].lower()]
    for fk in fk_edges:
        next_table = (
            fk.target_table if fk.source_table.lower() in placed else fk.source_table
        )
        alias = scope.aliases[next_table.lower()] if scope.use_aliases else None
        condition = BinaryOp(
            op="=",
            left=ColumnRef(column=fk.source_column, table=scope.qualifier(fk.source_table)),
            right=ColumnRef(column=fk.target_column, table=scope.qualifier(fk.target_table)),
        )
        from_clause.joins.append(
            Join(table=TableRef(name=next_table, alias=alias), condition=condition)
        )
        placed.append(next_table.lower())
    return from_clause


def _having_expr(having: HavingSpec, scope: _Scope) -> Expr:
    agg = _aggregate_expr(
        having.aggregate,
        having.column if not having.column.is_star else None,
        scope,
    )
    return BinaryOp(op=having.op, left=agg, right=Literal(value=having.value))


def _order_items(order: OrderSpec, scope: _Scope) -> list[OrderItem]:
    expr = _aggregate_expr(
        order.aggregate,
        order.column if not order.column.is_star else None,
        scope,
    )
    return [OrderItem(expr=expr, direction=order.direction)]


def build_statement(intent: QueryIntent, schema: DatabaseSchema) -> SelectStatement:
    """Build the AST for ``intent`` against ``schema``."""
    scope = _Scope(list(intent.tables), use_aliases=True)
    statement = SelectStatement()
    statement.distinct = intent.distinct

    if intent.aggregate != Aggregate.NONE and intent.group_by is None:
        statement.select_items = [
            SelectItem(expr=_aggregate_expr(intent.aggregate, intent.agg_column, scope))
        ]
    elif intent.group_by is not None:
        statement.select_items = [SelectItem(expr=scope.column(intent.group_by))]
        if intent.aggregate != Aggregate.NONE:
            statement.select_items.append(
                SelectItem(expr=_aggregate_expr(intent.aggregate, intent.agg_column, scope))
            )
    else:
        statement.select_items = [
            SelectItem(expr=scope.column(sel)) for sel in intent.projection
        ]
    if not statement.select_items:
        raise DataGenerationError(f"intent has empty projection: {intent}")

    statement.from_clause = _from_clause(intent, scope, schema)
    statement.where = _where_clause(intent, scope, schema)
    if intent.group_by is not None:
        statement.group_by = [scope.column(intent.group_by)]
        if intent.having is not None:
            statement.having = _having_expr(intent.having, scope)
    if intent.order is not None:
        statement.order_by = _order_items(intent.order, scope)
        if intent.order.limit is not None:
            statement.limit = intent.order.limit

    if intent.set_op is not None and intent.set_branch_filter is not None:
        branch = SelectStatement()
        branch.select_items = [
            SelectItem(expr=scope.column(sel)) for sel in intent.projection
        ]
        branch.from_clause = _from_clause(intent, scope, schema)
        branch.where = _filter_expr(intent.set_branch_filter, scope)
        statement.set_operation = SetOperation(op=intent.set_op, right=branch)
    return statement


def render_intent_sql(intent: QueryIntent, schema: DatabaseSchema) -> str:
    """Render ``intent`` to SQL text."""
    return to_sql(build_statement(intent, schema))
