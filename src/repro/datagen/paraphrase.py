"""Paraphrase generation for Query Variance Testing (QVT).

Every canonical question can be rewritten through layered substitutions:

* **easy** rewrites are common synonyms any competent model resolves
  ("Show" -> "List", "greater than" -> "more than");
* **hard** rewrites use rarer phrasings ("whose" -> "with", "average" ->
  "mean", "have no" -> "do not have any") that the NLU lexicon only
  resolves when the model has either strong linguistic capability or has
  been fine-tuned on the dataset's phrasing distribution — reproducing
  the paper's Finding 6 (fine-tuning stabilizes QVT).

Each variant carries a ``difficulty`` score: the number of hard rewrites
applied.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.utils.rng import derive_rng

# (canonical phrase, replacement, is_hard)
EASY_REWRITES: list[tuple[str, str]] = [
    ("Show the", "List the"),
    ("Show the", "Display the"),
    ("Show the", "Give me the"),
    ("List the", "Show the"),
    ("What is the", "Tell me the"),
    ("How many", "Count how many"),
    ("is greater than", "is more than"),
    ("is less than", "is under"),
    ("is at least", "is no less than"),
    ("is at most", "is no more than"),
    ("sorted by", "ordered by"),
    ("of all", "of the"),
]

HARD_REWRITES: list[tuple[str, str]] = [
    ("whose", "with"),
    ("average", "mean"),
    ("maximum", "biggest"),
    ("minimum", "smallest"),
    ("total", "sum of the"),
    ("have no", "do not have any"),
    ("have at least one", "are linked to some"),
    ("showing only the top", "limited to the first"),
    ("in descending order", "from highest to lowest"),
    ("in ascending order", "from lowest to highest"),
    ("together with", "along with"),
    ("are there", "exist"),
]


@dataclass(frozen=True)
class NLVariant:
    """One phrasing of a question with its linguistic difficulty."""

    text: str
    style: str          # "canonical" | "easy" | "hard" | "mixed"
    difficulty: int     # number of hard rewrites applied


def _apply_rewrites(
    text: str,
    rewrites: list[tuple[str, str]],
    rng: random.Random,
    max_applications: int,
) -> tuple[str, int]:
    applicable = [(src, dst) for src, dst in rewrites if src in text]
    rng.shuffle(applicable)
    applied = 0
    for src, dst in applicable:
        if applied >= max_applications:
            break
        if src in text:
            text = text.replace(src, dst, 1)
            applied += 1
    return text, applied


def paraphrase_question(
    question: str,
    count: int = 2,
    seed: int = 0,
    key: object = "",
) -> list[NLVariant]:
    """Generate up to ``count`` distinct paraphrases of ``question``.

    The canonical question is *not* included in the returned list.
    Roughly half of the variants include hard rewrites.
    """
    rng = derive_rng(seed, "paraphrase", key, question)
    variants: list[NLVariant] = []
    seen = {question}
    attempts = 0
    while len(variants) < count and attempts < count * 6:
        attempts += 1
        use_hard = rng.random() < 0.5
        text, easy_applied = _apply_rewrites(question, EASY_REWRITES, rng, 2)
        hard_applied = 0
        if use_hard:
            text, hard_applied = _apply_rewrites(text, HARD_REWRITES, rng, 2)
        if text in seen:
            continue
        seen.add(text)
        if hard_applied and easy_applied:
            style = "mixed"
        elif hard_applied:
            style = "hard"
        else:
            style = "easy"
        variants.append(NLVariant(text=text, style=style, difficulty=hard_applied))
    return variants
