"""Sample :class:`QueryIntent` objects against a populated database.

The sampler draws filter values from the *actual database contents*, so
equality/LIKE predicates are selective and execution-accuracy comparisons
are meaningful.  Shape mix is controlled by the caller (the benchmark
builder matches Spider's hardness distribution).
"""

from __future__ import annotations

import random

from repro.datagen.intents import (
    Aggregate,
    ColumnSel,
    Filter,
    HavingSpec,
    IntentShape,
    OrderSpec,
    QueryIntent,
    SubquerySpec,
)
from repro.dbengine.database import Database
from repro.errors import DataGenerationError
from repro.schema.model import Column, ColumnType, DatabaseSchema, Table

_NUMERIC_AGGS = (Aggregate.SUM, Aggregate.AVG, Aggregate.MIN, Aggregate.MAX)


def _fk_columns(schema: DatabaseSchema, table: Table) -> set[str]:
    names = set()
    for fk in schema.foreign_keys:
        if fk.source_table.lower() == table.name.lower():
            names.add(fk.source_column.lower())
        if fk.target_table.lower() == table.name.lower():
            names.add(fk.target_column.lower())
    return names


def _plain_columns(schema: DatabaseSchema, table: Table) -> list[Column]:
    """Columns suitable for projection/filtering: not PK, not FK."""
    fk_names = _fk_columns(schema, table)
    return [
        column
        for column in table.columns
        if not column.is_primary_key and column.name.lower() not in fk_names
    ]


def _numeric_columns(schema: DatabaseSchema, table: Table) -> list[Column]:
    return [c for c in _plain_columns(schema, table) if c.col_type.is_numeric]


def _text_columns(schema: DatabaseSchema, table: Table) -> list[Column]:
    return [
        c
        for c in _plain_columns(schema, table)
        if c.col_type in (ColumnType.TEXT, ColumnType.DATE)
    ]


def _join_pairs(schema: DatabaseSchema) -> list[tuple[str, str]]:
    pairs = []
    for fk in schema.foreign_keys:
        if fk.source_table.lower() != fk.target_table.lower():
            pairs.append((fk.source_table, fk.target_table))
    return pairs


class IntentSampler:
    """Samples intents of requested shapes against one database."""

    def __init__(self, database: Database, rng: random.Random) -> None:
        self.database = database
        self.schema = database.schema
        self.rng = rng

    # -- primitives -----------------------------------------------------

    def _pick_table(self) -> Table:
        candidates = [
            table for table in self.schema.tables if _plain_columns(self.schema, table)
        ]
        if not candidates:
            raise DataGenerationError(f"no usable tables in {self.schema.db_id}")
        return candidates[self.rng.randrange(len(candidates))]

    def _pick_value(self, table: str, column: Column) -> object:
        values = self.database.column_values(table, column.name)
        values = [v for v in values if v is not None]
        if not values:
            return 1 if column.col_type.is_numeric else "unknown"
        return values[self.rng.randrange(len(values))]

    def _make_filter(self, table: Table, connector: str = "and",
                     numeric_ok: bool = True) -> Filter | None:
        columns = _text_columns(self.schema, table)
        if numeric_ok:
            columns = columns + _numeric_columns(self.schema, table)
        if not columns:
            return None
        column = columns[self.rng.randrange(len(columns))]
        sel = ColumnSel(table=table.name, column=column.name)
        value = self._pick_value(table.name, column)
        if column.col_type.is_numeric:
            op = self.rng.choice(["=", ">", "<", ">=", "<=", "!="])
            if op == "between" or self.rng.random() < 0.08:
                value2 = self._pick_value(table.name, column)
                low, high = sorted([value, value2])  # type: ignore[type-var]
                return Filter(column=sel, op="between", value=low, value2=high,
                              connector=connector)
            return Filter(column=sel, op=op, value=value, connector=connector)
        if self.rng.random() < 0.15 and isinstance(value, str) and len(value) > 3:
            pattern = f"%{value[: max(3, len(value) // 2)]}%"
            return Filter(column=sel, op="like", value=pattern, connector=connector)
        op = "!=" if self.rng.random() < 0.1 else "="
        return Filter(column=sel, op=op, value=value, connector=connector)

    def _make_filters(self, table: Table, count: int) -> tuple[Filter, ...]:
        filters: list[Filter] = []
        for i in range(count):
            connector = "and" if i == 0 else self.rng.choice(["and", "and", "or"])
            flt = self._make_filter(table, connector=connector)
            if flt is not None:
                filters.append(flt)
        return tuple(filters)

    def _projection(self, table: Table, count: int) -> tuple[ColumnSel, ...]:
        columns = _plain_columns(self.schema, table)
        if not columns:
            return (ColumnSel(table=table.name, column="*"),)
        chosen = self.rng.sample(columns, min(count, len(columns)))
        return tuple(ColumnSel(table=table.name, column=c.name) for c in chosen)

    # -- shape constructors ----------------------------------------------

    def sample(self, shape: IntentShape) -> QueryIntent:
        """Sample an intent of the requested shape.

        Raises:
            DataGenerationError: if the schema cannot support the shape
                (e.g. no FK pair for a join shape).
        """
        builder = {
            IntentShape.PROJECT: self._sample_project,
            IntentShape.AGG: self._sample_agg,
            IntentShape.GROUP_AGG: self._sample_group_agg,
            IntentShape.ORDER_TOP: self._sample_order_top,
            IntentShape.JOIN_PROJECT: self._sample_join_project,
            IntentShape.JOIN_GROUP: self._sample_join_group,
            IntentShape.SUBQUERY_CMP_AGG: self._sample_subquery_cmp,
            IntentShape.SUBQUERY_IN: self._sample_subquery_in,
            IntentShape.SUBQUERY_NOT_IN: self._sample_subquery_not_in,
            IntentShape.EXTREME: self._sample_extreme,
            IntentShape.SET_OP: self._sample_set_op,
        }[shape]
        return builder()

    def _sample_project(self) -> QueryIntent:
        table = self._pick_table()
        num_filters = self.rng.choice([0, 1, 1, 2])
        return QueryIntent(
            shape=IntentShape.PROJECT,
            db_id=self.schema.db_id,
            tables=(table.name,),
            projection=self._projection(table, self.rng.choice([1, 1, 2])),
            distinct=self.rng.random() < 0.1,
            filters=self._make_filters(table, num_filters),
        )

    def _sample_agg(self) -> QueryIntent:
        table = self._pick_table()
        numerics = _numeric_columns(self.schema, table)
        if numerics and self.rng.random() < 0.6:
            aggregate = self.rng.choice(_NUMERIC_AGGS)
            column = numerics[self.rng.randrange(len(numerics))]
            agg_column = ColumnSel(table=table.name, column=column.name)
        else:
            aggregate = Aggregate.COUNT
            agg_column = ColumnSel(table=table.name, column="*")
        return QueryIntent(
            shape=IntentShape.AGG,
            db_id=self.schema.db_id,
            tables=(table.name,),
            projection=(),
            aggregate=aggregate,
            agg_column=agg_column,
            filters=self._make_filters(table, self.rng.choice([0, 1, 1, 2])),
        )

    def _group_key(self, table: Table) -> ColumnSel | None:
        texts = _text_columns(self.schema, table)
        preferred = [c for c in texts if c.name.lower() not in ("name",)]
        pool = preferred or texts
        if not pool:
            return None
        column = pool[self.rng.randrange(len(pool))]
        return ColumnSel(table=table.name, column=column.name)

    def _sample_group_agg(self) -> QueryIntent:
        table = self._pick_table()
        key = self._group_key(table)
        if key is None:
            return self._sample_agg()
        numerics = _numeric_columns(self.schema, table)
        if numerics and self.rng.random() < 0.5:
            aggregate = self.rng.choice((Aggregate.AVG, Aggregate.SUM, Aggregate.MAX))
            column = numerics[self.rng.randrange(len(numerics))]
            agg_column = ColumnSel(table=table.name, column=column.name)
        else:
            aggregate = Aggregate.COUNT
            agg_column = ColumnSel(table=table.name, column="*")
        having: HavingSpec | None = None
        if self.rng.random() < 0.35:
            having = HavingSpec(
                aggregate=Aggregate.COUNT,
                column=ColumnSel(table=table.name, column="*"),
                op=self.rng.choice([">", ">="]),
                value=float(self.rng.randrange(1, 6)),
            )
        order: OrderSpec | None = None
        if self.rng.random() < 0.3:
            order = OrderSpec(
                column=agg_column,
                aggregate=aggregate,
                direction=self.rng.choice(["asc", "desc"]),
                limit=self.rng.choice([None, 1, 3, 5]),
            )
        return QueryIntent(
            shape=IntentShape.GROUP_AGG,
            db_id=self.schema.db_id,
            tables=(table.name,),
            projection=(),
            aggregate=aggregate,
            agg_column=agg_column,
            group_by=key,
            having=having,
            order=order,
        )

    def _sample_order_top(self) -> QueryIntent:
        table = self._pick_table()
        numerics = _numeric_columns(self.schema, table)
        if not numerics:
            return self._sample_project()
        column = numerics[self.rng.randrange(len(numerics))]
        order = OrderSpec(
            column=ColumnSel(table=table.name, column=column.name),
            direction=self.rng.choice(["asc", "desc", "desc"]),
            limit=self.rng.choice([1, 1, 3, 5, None]),
        )
        return QueryIntent(
            shape=IntentShape.ORDER_TOP,
            db_id=self.schema.db_id,
            tables=(table.name,),
            projection=self._projection(table, 1),
            filters=self._make_filters(table, self.rng.choice([0, 0, 1])),
            order=order,
        )

    def _join_pair(self) -> tuple[Table, Table]:
        pairs = _join_pairs(self.schema)
        if not pairs:
            raise DataGenerationError(f"{self.schema.db_id} has no FK pairs for joins")
        source, target = pairs[self.rng.randrange(len(pairs))]
        return self.schema.table(source), self.schema.table(target)

    def _sample_join_project(self) -> QueryIntent:
        child, parent = self._join_pair()
        proj_child = self._projection(child, 1)
        proj_parent = self._projection(parent, 1)
        filter_table = child if self.rng.random() < 0.5 else parent
        return QueryIntent(
            shape=IntentShape.JOIN_PROJECT,
            db_id=self.schema.db_id,
            tables=(child.name, parent.name),
            projection=proj_child + proj_parent,
            filters=self._make_filters(filter_table, self.rng.choice([0, 1, 1, 2])),
        )

    def _sample_join_group(self) -> QueryIntent:
        child, parent = self._join_pair()
        key = self._group_key(parent) or self._group_key(child)
        if key is None:
            return self._sample_join_project()
        numerics = _numeric_columns(self.schema, child)
        if numerics and self.rng.random() < 0.5:
            aggregate = self.rng.choice((Aggregate.AVG, Aggregate.SUM))
            column = numerics[self.rng.randrange(len(numerics))]
            agg_column = ColumnSel(table=child.name, column=column.name)
        else:
            aggregate = Aggregate.COUNT
            agg_column = ColumnSel(table=child.name, column="*")
        having: HavingSpec | None = None
        if self.rng.random() < 0.3:
            having = HavingSpec(
                aggregate=Aggregate.COUNT,
                column=ColumnSel(table=child.name, column="*"),
                op=">",
                value=float(self.rng.randrange(1, 5)),
            )
        order: OrderSpec | None = None
        if self.rng.random() < 0.35:
            order = OrderSpec(
                column=agg_column,
                aggregate=aggregate,
                direction="desc",
                limit=self.rng.choice([None, 1, 5]),
            )
        return QueryIntent(
            shape=IntentShape.JOIN_GROUP,
            db_id=self.schema.db_id,
            tables=(child.name, parent.name),
            projection=(),
            aggregate=aggregate,
            agg_column=agg_column,
            group_by=key,
            having=having,
            order=order,
        )

    def _sample_subquery_cmp(self) -> QueryIntent:
        table = self._pick_table()
        numerics = _numeric_columns(self.schema, table)
        if not numerics:
            return self._sample_project()
        column = numerics[self.rng.randrange(len(numerics))]
        sel = ColumnSel(table=table.name, column=column.name)
        subquery = SubquerySpec(
            outer_column=sel,
            op=self.rng.choice([">", "<"]),
            aggregate=Aggregate.AVG,
            inner_table=table.name,
            inner_column=sel,
        )
        return QueryIntent(
            shape=IntentShape.SUBQUERY_CMP_AGG,
            db_id=self.schema.db_id,
            tables=(table.name,),
            projection=self._projection(table, 1),
            subquery=subquery,
        )

    def _subquery_in_intent(self, negated: bool) -> QueryIntent:
        pairs = _join_pairs(self.schema)
        if not pairs:
            return self._sample_project()
        child_name, parent_name = pairs[self.rng.randrange(len(pairs))]
        child = self.schema.table(child_name)
        parent = self.schema.table(parent_name)
        fk = self.schema.foreign_keys_between(child_name, parent_name)[0]
        inner_filter = self._make_filter(child, numeric_ok=True)
        subquery = SubquerySpec(
            outer_column=ColumnSel(table=parent.name, column=fk.target_column),
            op="in",
            aggregate=Aggregate.NONE,
            inner_table=child.name,
            inner_column=ColumnSel(table=child.name, column=fk.source_column),
            inner_filter=inner_filter,
            negated=negated,
        )
        shape = IntentShape.SUBQUERY_NOT_IN if negated else IntentShape.SUBQUERY_IN
        return QueryIntent(
            shape=shape,
            db_id=self.schema.db_id,
            tables=(parent.name,),
            projection=self._projection(parent, 1),
            subquery=subquery,
        )

    def _sample_subquery_in(self) -> QueryIntent:
        return self._subquery_in_intent(negated=False)

    def _sample_subquery_not_in(self) -> QueryIntent:
        return self._subquery_in_intent(negated=True)

    def _sample_extreme(self) -> QueryIntent:
        table = self._pick_table()
        numerics = _numeric_columns(self.schema, table)
        if not numerics:
            return self._sample_project()
        column = numerics[self.rng.randrange(len(numerics))]
        sel = ColumnSel(table=table.name, column=column.name)
        subquery = SubquerySpec(
            outer_column=sel,
            op="=",
            aggregate=self.rng.choice((Aggregate.MAX, Aggregate.MIN)),
            inner_table=table.name,
            inner_column=sel,
        )
        return QueryIntent(
            shape=IntentShape.EXTREME,
            db_id=self.schema.db_id,
            tables=(table.name,),
            projection=self._projection(table, 1),
            subquery=subquery,
        )

    def _sample_set_op(self) -> QueryIntent:
        table = self._pick_table()
        first = self._make_filter(table)
        second = self._make_filter(table)
        if first is None or second is None:
            return self._sample_project()
        return QueryIntent(
            shape=IntentShape.SET_OP,
            db_id=self.schema.db_id,
            tables=(table.name,),
            projection=self._projection(table, 1),
            filters=(first,),
            set_op=self.rng.choice(["intersect", "union", "except"]),
            set_branch_filter=second,
        )


def generate_intent(
    database: Database,
    shape: IntentShape,
    rng: random.Random,
) -> QueryIntent:
    """Sample one intent of ``shape`` against ``database``."""
    return IntentSampler(database, rng).sample(shape)
