"""Benchmark assembly: databases + (NL, SQL) examples + splits.

``build_benchmark`` materializes a full synthetic benchmark in the image
of Spider or BIRD: per-domain databases (train/dev splits), populated
SQLite contents, and (NL, SQL) examples sampled from the intent grammar
with a shape mix matched to the target hardness distribution, plus NL
paraphrase variants for query-variance testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.domains import get_domain
from repro.datagen.intent_gen import IntentSampler
from repro.datagen.intents import IntentShape, QueryIntent
from repro.datagen.nl_render import render_intent_nl
from repro.datagen.paraphrase import paraphrase_question
from repro.datagen.populate import populate_database
from repro.datagen.schema_gen import generate_schema
from repro.datagen.sql_render import render_intent_sql
from repro.dbengine.database import Database
from repro.dbengine.executor import execute_sql
from repro.errors import DataGenerationError
from repro.sqlkit.hardness import BirdDifficulty, Hardness, classify_bird_difficulty, classify_hardness
from repro.utils.rng import derive_rng

# Shape mix approximating Spider-dev's hardness distribution.
SPIDER_SHAPE_WEIGHTS: dict[IntentShape, float] = {
    IntentShape.PROJECT: 0.22,
    IntentShape.AGG: 0.16,
    IntentShape.GROUP_AGG: 0.14,
    IntentShape.ORDER_TOP: 0.12,
    IntentShape.JOIN_PROJECT: 0.12,
    IntentShape.JOIN_GROUP: 0.08,
    IntentShape.SUBQUERY_CMP_AGG: 0.04,
    IntentShape.SUBQUERY_IN: 0.03,
    IntentShape.SUBQUERY_NOT_IN: 0.03,
    IntentShape.EXTREME: 0.03,
    IntentShape.SET_OP: 0.03,
}

# BIRD skews markedly harder: more joins and subqueries.
BIRD_SHAPE_WEIGHTS: dict[IntentShape, float] = {
    IntentShape.PROJECT: 0.14,
    IntentShape.AGG: 0.12,
    IntentShape.GROUP_AGG: 0.12,
    IntentShape.ORDER_TOP: 0.10,
    IntentShape.JOIN_PROJECT: 0.16,
    IntentShape.JOIN_GROUP: 0.12,
    IntentShape.SUBQUERY_CMP_AGG: 0.07,
    IntentShape.SUBQUERY_IN: 0.05,
    IntentShape.SUBQUERY_NOT_IN: 0.04,
    IntentShape.EXTREME: 0.04,
    IntentShape.SET_OP: 0.04,
}

# Spider train-set databases per domain (paper Fig. 9(b): College,
# Competition, and Transportation are the data-rich domains).
SPIDER_TRAIN_DB_COUNTS: dict[str, int] = {
    "college": 10, "competition": 8, "transportation": 7, "sports": 5,
    "flights": 4, "music": 4, "movies": 4, "restaurants": 3, "hotels": 3,
    "healthcare": 3, "banking": 3, "retail": 3, "insurance": 2,
    "library": 2, "museums": 2, "parks": 2, "real_estate": 2,
    "automotive": 2, "energy": 2, "agriculture": 2, "weather": 2,
    "gaming": 2, "social_media": 2, "ecommerce": 2, "logistics": 2,
    "telecom": 1, "government": 1, "nonprofit": 1, "science_lab": 1,
    "publishing": 1, "pets": 0, "hr": 0, "events": 0,
}

# Spider dev-set databases per domain (20 total; includes domains with no
# training databases so Exp-4's crossover is observable).
SPIDER_DEV_DB_COUNTS: dict[str, int] = {
    "college": 2, "competition": 2, "transportation": 2, "sports": 1,
    "flights": 1, "music": 1, "movies": 1, "restaurants": 1, "banking": 1,
    "retail": 1, "library": 1, "museums": 1, "gaming": 1, "weather": 1,
    "pets": 1, "hr": 1, "events": 1, "telecom": 1,
}

BIRD_DEV_DB_COUNTS: dict[str, int] = {
    "banking": 2, "healthcare": 2, "retail": 1, "ecommerce": 1,
    "logistics": 1, "energy": 1, "publishing": 1, "social_media": 1,
    "science_lab": 1,
}


@dataclass(frozen=True)
class Example:
    """One (NL, SQL) evaluation example."""

    example_id: str
    db_id: str
    domain: str
    question: str
    gold_sql: str
    hardness: Hardness
    bird_difficulty: BirdDifficulty
    split: str                      # "train" | "dev"
    variant_group: str              # shared by NL variants of one gold SQL
    variant_style: str = "canonical"
    linguistic_difficulty: int = 0  # number of hard rewrites in the phrasing
    intent: QueryIntent | None = None


@dataclass
class Dataset:
    """A built benchmark: databases plus train/dev examples."""

    name: str
    examples: list[Example] = field(default_factory=list)
    databases: dict[str, Database] = field(default_factory=dict)
    # The recipe this dataset was built from (set by build_benchmark).
    # Parallel evaluation workers use it to rebuild the dataset in-process,
    # since live sqlite3 connections cannot cross a process boundary.
    config: "BenchmarkConfig | None" = None

    def fingerprint(self) -> str:
        """Stable identity of this dataset's contents across processes.

        Built datasets hash their full build recipe (name, seed, scale-derived
        counts, shape weights); hand-assembled datasets fall back to hashing
        the example stream itself.
        """
        from repro.utils.rng import stable_hash

        if self.config is not None:
            return f"{stable_hash('benchmark-config', repr(self.config)):016x}"
        content = [
            (e.example_id, e.db_id, e.gold_sql, e.question, e.split)
            for e in self.examples
        ]
        return f"{stable_hash('dataset-content', self.name, content):016x}"

    def database(self, db_id: str) -> Database:
        try:
            return self.databases[db_id]
        except KeyError as exc:
            raise DataGenerationError(f"unknown database {db_id!r}") from exc

    def split(self, name: str) -> list[Example]:
        return [example for example in self.examples if example.split == name]

    @property
    def train_examples(self) -> list[Example]:
        return self.split("train")

    @property
    def dev_examples(self) -> list[Example]:
        return self.split("dev")

    def schemas(self, split: str | None = None) -> list:
        db_ids = {
            example.db_id for example in self.examples
            if split is None or example.split == split
        }
        return [self.databases[db_id].schema for db_id in sorted(db_ids)]

    def variant_groups(self, split: str = "dev") -> dict[str, list[Example]]:
        """Group examples by shared gold SQL (for QVT)."""
        groups: dict[str, list[Example]] = {}
        for example in self.split(split):
            groups.setdefault(example.variant_group, []).append(example)
        return groups

    def close(self) -> None:
        for database in self.databases.values():
            database.close()


@dataclass(frozen=True)
class BenchmarkConfig:
    """Parameters of one synthetic benchmark build."""

    name: str
    seed: int = 42
    train_db_counts: dict[str, int] = field(default_factory=dict)
    dev_db_counts: dict[str, int] = field(default_factory=dict)
    examples_per_train_db: int = 12
    examples_per_dev_db: int = 16
    rows_per_table: int = 60
    wide_schemas: bool = False
    shape_weights: dict[IntentShape, float] = field(default_factory=dict)
    variant_rate: float = 0.45       # fraction of dev groups with NL variants
    variants_per_question: int = 2
    require_nonempty_results: bool = True
    ambient_difficulty: float = 0.0
    # Execution backend every database in this benchmark is built on
    # ("sqlite" default, "duckdb" when installed).  Part of the config
    # repr, so dataset fingerprints — and the parallel engine's
    # cross-run result cache — never mix engines.
    backend: str = "sqlite"


def spider_like_config(scale: float = 1.0, seed: int = 42) -> BenchmarkConfig:
    """Spider-like benchmark config; ``scale`` shrinks example counts."""
    return BenchmarkConfig(
        name="spider-like",
        seed=seed,
        train_db_counts=dict(SPIDER_TRAIN_DB_COUNTS),
        dev_db_counts=dict(SPIDER_DEV_DB_COUNTS),
        examples_per_train_db=max(2, round(24 * scale)),
        examples_per_dev_db=max(3, round(26 * scale)),
        rows_per_table=50,
        wide_schemas=False,
        shape_weights=dict(SPIDER_SHAPE_WEIGHTS),
    )


def bird_like_config(scale: float = 1.0, seed: int = 43) -> BenchmarkConfig:
    """BIRD-like benchmark config: wider schemas, harder shape mix."""
    return BenchmarkConfig(
        name="bird-like",
        seed=seed,
        train_db_counts={name: 3 for name in BIRD_DEV_DB_COUNTS},
        dev_db_counts=dict(BIRD_DEV_DB_COUNTS),
        examples_per_train_db=max(2, round(40 * scale)),
        examples_per_dev_db=max(3, round(24 * scale)),
        rows_per_table=90,
        wide_schemas=True,
        shape_weights=dict(BIRD_SHAPE_WEIGHTS),
        variant_rate=0.1,  # BIRD has few NL variants per SQL (paper Exp-3)
        ambient_difficulty=1.0,
    )


def spider_realistic_config(scale: float = 1.0, seed: int = 44) -> BenchmarkConfig:
    """Spider-Realistic analogue: every dev question is a paraphrase.

    Deng et al. (2021) rewrote Spider's dev questions to drop explicit
    column mentions; we approximate the same pressure by paraphrasing
    every question (high variant rate) so that surface forms diverge
    maximally from the canonical templates.
    """
    config = spider_like_config(scale=scale, seed=seed)
    return BenchmarkConfig(
        name="spider-realistic-like",
        seed=seed,
        train_db_counts=config.train_db_counts,
        dev_db_counts=config.dev_db_counts,
        examples_per_train_db=config.examples_per_train_db,
        examples_per_dev_db=config.examples_per_dev_db,
        rows_per_table=config.rows_per_table,
        shape_weights=config.shape_weights,
        variant_rate=1.0,
        variants_per_question=2,
    )


def kaggle_dbqa_config(scale: float = 1.0, seed: int = 45) -> BenchmarkConfig:
    """KaggleDBQA analogue: few real-world databases, no in-domain training.

    KaggleDBQA evaluates parsers on 8 web-scraped databases with no
    training split, stressing zero-shot generalization; we mirror that
    with a dev-only benchmark over eight domains unseen at training time.
    """
    return BenchmarkConfig(
        name="kaggledbqa-like",
        seed=seed,
        train_db_counts={},
        dev_db_counts={
            "weather": 1, "pets": 1, "hr": 1, "events": 1,
            "nonprofit": 1, "government": 1, "science_lab": 1, "publishing": 1,
        },
        examples_per_train_db=0,
        examples_per_dev_db=max(3, round(34 * scale)),
        rows_per_table=70,
        shape_weights=dict(SPIDER_SHAPE_WEIGHTS),
        variant_rate=0.3,
    )


def _weighted_shapes(config: BenchmarkConfig, rng, count: int) -> list[IntentShape]:
    weights_map = config.shape_weights or SPIDER_SHAPE_WEIGHTS
    shapes = list(weights_map)
    weights = [weights_map[shape] for shape in shapes]
    return rng.choices(shapes, weights=weights, k=count)


def _build_database(
    config: BenchmarkConfig, domain_name: str, db_index: int
) -> Database:
    domain = get_domain(domain_name)
    schema = generate_schema(
        domain, db_index, seed=config.seed, wide=config.wide_schemas
    )
    schema.ambient_difficulty = config.ambient_difficulty
    database = Database(schema, backend=config.backend)
    populate_database(
        database, domain, rows_per_table=config.rows_per_table, seed=config.seed
    )
    return database


def _gold_is_usable(database: Database, sql: str, require_rows: bool) -> bool:
    result = execute_sql(database, sql)
    if not result.ok:
        return False
    if require_rows and not result.rows:
        return False
    return len(result.rows) < 5_000


def _make_examples(
    config: BenchmarkConfig,
    database: Database,
    domain_name: str,
    split: str,
    count: int,
) -> list[Example]:
    rng = derive_rng(config.seed, "examples", database.db_id, split)
    sampler = IntentSampler(database, rng)
    examples: list[Example] = []
    shapes = _weighted_shapes(config, rng, count * 3)
    shape_index = 0
    attempts = 0
    while len(examples) < count and attempts < count * 12:
        attempts += 1
        if shape_index >= len(shapes):
            shapes.extend(_weighted_shapes(config, rng, count))
        shape = shapes[shape_index]
        shape_index += 1
        try:
            intent = sampler.sample(shape)
            gold_sql = render_intent_sql(intent, database.schema)
            question = render_intent_nl(intent, database.schema)
        except DataGenerationError:
            continue
        if not _gold_is_usable(database, gold_sql, config.require_nonempty_results):
            continue
        index = len(examples)
        group = f"{database.db_id}-{split}-{index}"
        base = Example(
            example_id=f"{group}-0",
            db_id=database.db_id,
            domain=domain_name,
            question=question,
            gold_sql=gold_sql,
            hardness=classify_hardness(gold_sql),
            bird_difficulty=classify_bird_difficulty(gold_sql),
            split=split,
            variant_group=group,
            intent=intent,
        )
        examples.append(base)
        if rng.random() < config.variant_rate:
            variants = paraphrase_question(
                question,
                count=config.variants_per_question,
                seed=config.seed,
                key=group,
            )
            for v_index, variant in enumerate(variants, start=1):
                examples.append(
                    Example(
                        example_id=f"{group}-{v_index}",
                        db_id=database.db_id,
                        domain=domain_name,
                        question=variant.text,
                        gold_sql=gold_sql,
                        hardness=base.hardness,
                        bird_difficulty=base.bird_difficulty,
                        split=split,
                        variant_group=group,
                        variant_style=variant.style,
                        linguistic_difficulty=variant.difficulty,
                        intent=intent,
                    )
                )
    return examples


def build_benchmark(config: BenchmarkConfig) -> Dataset:
    """Build the full benchmark described by ``config``."""
    dataset = Dataset(name=config.name, config=config)
    # Dev databases use distinct indices from train databases so dev
    # schemas are unseen during fine-tuning (cross-database evaluation, as
    # in Spider).
    for domain_name, dev_count in config.dev_db_counts.items():
        for db_index in range(dev_count):
            database = _build_database(config, domain_name, 100 + db_index)
            dataset.databases[database.db_id] = database
            dataset.examples.extend(
                _make_examples(
                    config, database, domain_name, "dev", config.examples_per_dev_db
                )
            )
    for domain_name, train_count in config.train_db_counts.items():
        for db_index in range(train_count):
            database = _build_database(config, domain_name, db_index)
            dataset.databases[database.db_id] = database
            dataset.examples.extend(
                _make_examples(
                    config, database, domain_name, "train", config.examples_per_train_db
                )
            )
    if not dataset.examples:
        raise DataGenerationError(f"benchmark {config.name!r} produced no examples")
    return dataset
