"""Catalog of 33 data domains for the synthetic benchmarks.

The paper (Exp-4) classifies Spider's 140 training databases and 20 dev
databases into 33 domains.  Each :class:`DomainSpec` names the entities of
one domain — a primary entity, a secondary "owner" entity, a transactional
"event" entity, and a categorical lookup — plus value vocabularies.  The
schema generator composes these into databases with realistic FK
structure, and the NL generator draws its nouns from the same vocabulary,
so schema linking is a genuine (not table-lookup) problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataGenerationError

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "David", "Emma", "Frank", "Grace", "Henry",
    "Irene", "Jack", "Karen", "Leo", "Maria", "Nathan", "Olivia", "Peter",
    "Quinn", "Rachel", "Samuel", "Tina", "Ulysses", "Victor", "Wendy", "Xavier",
]
_LAST_NAMES = [
    "Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis",
    "Martinez", "Wilson", "Anderson", "Taylor", "Thomas", "Moore", "Clark",
    "Lewis", "Walker", "Hall", "Young", "King", "Wright",
]
_CITIES = [
    "Aberdeen", "Boston", "Chicago", "Denver", "Edinburgh", "Frankfurt",
    "Geneva", "Houston", "Istanbul", "Jakarta", "Kyoto", "Lisbon", "Madrid",
    "Nairobi", "Oslo", "Prague", "Quebec", "Rome", "Seattle", "Toronto",
]
_COUNTRIES = [
    "USA", "UK", "France", "Germany", "Japan", "Brazil", "Canada", "Spain",
    "Italy", "India", "China", "Australia", "Mexico", "Norway", "Egypt",
]


@dataclass(frozen=True)
class DomainSpec:
    """Vocabulary of one data domain.

    Attributes:
        name: Domain label (e.g. ``movies``), used by Exp-4 filters.
        primary: Main entity noun (singular), e.g. ``movie``.
        secondary: Owner/creator entity, e.g. ``director``.
        event: Transactional entity linking primary+secondary, e.g. ``screening``.
        category: Categorical lookup entity, e.g. ``genre``.
        category_values: Value pool for the category name column.
        name_values: Value pool for primary-entity names.
        extra_attributes: Domain-flavoured numeric/text attribute names.
    """

    name: str
    primary: str
    secondary: str
    event: str
    category: str
    category_values: tuple[str, ...]
    name_values: tuple[str, ...]
    extra_attributes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def person_names(self) -> list[str]:
        return [f"{first} {last}" for first in _FIRST_NAMES[:12] for last in _LAST_NAMES[:6]]

    @property
    def cities(self) -> list[str]:
        return list(_CITIES)

    @property
    def countries(self) -> list[str]:
        return list(_COUNTRIES)


def _names(prefix: str, words: list[str]) -> tuple[str, ...]:
    return tuple(f"{word} {prefix}".strip() for word in words)


DOMAIN_CATALOG: dict[str, DomainSpec] = {}


def _register(spec: DomainSpec) -> None:
    if spec.name in DOMAIN_CATALOG:
        raise DataGenerationError(f"duplicate domain {spec.name!r}")
    DOMAIN_CATALOG[spec.name] = spec


_register(DomainSpec(
    "movies", "movie", "director", "screening", "genre",
    ("Drama", "Comedy", "Action", "Horror", "Documentary", "Romance", "Thriller"),
    ("Silent Dawn", "Iron Harbor", "Last Meridian", "Paper Skies", "Golden Hour",
     "Night Circuit", "The Long Field", "Winter Atlas", "Crimson Tide", "Echo Park"),
    ("budget", "box_office", "runtime", "rating"),
))
_register(DomainSpec(
    "music", "album", "artist", "concert", "label",
    ("Rock", "Jazz", "Pop", "Classical", "Hip Hop", "Electronic", "Folk"),
    ("Blue Lines", "Night Drive", "Amber Waves", "Static Bloom", "Low Tide",
     "Glass Animals", "Neon Youth", "Quiet Storm", "Wild Season", "Mirror City"),
    ("sales", "duration", "chart_position", "rating"),
))
_register(DomainSpec(
    "sports", "team", "coach", "match", "league",
    ("Premier", "Championship", "Division One", "National", "Regional"),
    ("Falcons", "Tigers", "Raptors", "Mariners", "Comets", "Wolves", "Chargers",
     "Pioneers", "Hornets", "Titans"),
    ("wins", "losses", "points", "attendance"),
))
_register(DomainSpec(
    "competition", "contestant", "judge", "round", "category",
    ("Vocal", "Dance", "Instrumental", "Drama", "Comedy Act"),
    ("Star Quest", "Talent Cup", "Grand Prix", "Open Finals", "Youth Gala",
     "Summer Clash", "Winter Trials", "City Showdown", "Royal Contest", "Apex Series"),
    ("score", "votes", "rank", "prize_money"),
))
_register(DomainSpec(
    "college", "student", "professor", "enrollment", "department",
    ("Mathematics", "Physics", "History", "Biology", "Economics", "Literature",
     "Computer Science"),
    tuple(f"{first} {last}" for first, last in zip(_FIRST_NAMES, _LAST_NAMES)),
    ("gpa", "credits", "age", "tuition"),
))
_register(DomainSpec(
    "transportation", "route", "driver", "trip", "vehicle_type",
    ("Bus", "Tram", "Metro", "Ferry", "Shuttle"),
    ("North Loop", "Harbor Line", "Airport Express", "City Circle", "East Link",
     "Hill Climb", "River Run", "Campus Hop", "Night Owl", "Coastal Way"),
    ("distance", "duration", "fare", "capacity"),
))
_register(DomainSpec(
    "flights", "flight", "pilot", "booking", "airline",
    ("SkyWest", "AirBlue", "Transglobal", "Northern Air", "Pacific Wings"),
    ("AB100", "AB205", "TG310", "NW415", "PW520", "SK625", "AB730", "TG835",
     "NW940", "PW045"),
    ("distance", "price", "duration", "capacity"),
))
_register(DomainSpec(
    "restaurants", "restaurant", "chef", "reservation", "cuisine",
    ("Italian", "Japanese", "Mexican", "French", "Indian", "Thai", "Greek"),
    ("Olive Grove", "Sakura House", "Casa Verde", "Le Jardin", "Spice Route",
     "Bamboo Garden", "The Anchor", "Salt and Stone", "Blue Door", "Ember"),
    ("rating", "price_range", "seats", "revenue"),
))
_register(DomainSpec(
    "hotels", "hotel", "manager", "stay", "brand",
    ("Grand", "Plaza", "Comfort", "Boutique", "Resort"),
    ("Seaside Inn", "Mountain Lodge", "City Central", "Royal Court", "The Birches",
     "Harbor View", "Sunset Palms", "Garden Gate", "Stonebridge", "The Meridian"),
    ("stars", "rooms", "price", "occupancy"),
))
_register(DomainSpec(
    "healthcare", "patient", "physician", "appointment", "ward",
    ("Cardiology", "Neurology", "Pediatrics", "Oncology", "Orthopedics"),
    tuple(f"{first} {last}" for first, last in zip(_FIRST_NAMES[5:], _LAST_NAMES[5:])),
    ("age", "weight", "visits", "bill"),
))
_register(DomainSpec(
    "banking", "account", "customer", "transaction", "branch",
    ("Downtown", "Westside", "Airport", "Harbor", "Central"),
    ("ACC1001", "ACC1002", "ACC1003", "ACC1004", "ACC1005", "ACC1006",
     "ACC1007", "ACC1008", "ACC1009", "ACC1010"),
    ("balance", "interest_rate", "credit_limit", "age"),
))
_register(DomainSpec(
    "retail", "product", "supplier", "order_item", "category",
    ("Electronics", "Clothing", "Grocery", "Toys", "Furniture", "Sports Gear"),
    ("Aurora Lamp", "Trail Backpack", "Nimbus Kettle", "Echo Speaker", "Atlas Desk",
     "Brio Jacket", "Pulse Watch", "Vista Monitor", "Crate Shelf", "Zephyr Fan"),
    ("price", "stock", "weight", "rating"),
))
_register(DomainSpec(
    "insurance", "policy", "agent", "claim", "plan_type",
    ("Auto", "Home", "Life", "Travel", "Health"),
    ("POL2001", "POL2002", "POL2003", "POL2004", "POL2005", "POL2006",
     "POL2007", "POL2008", "POL2009", "POL2010"),
    ("premium", "coverage", "deductible", "age"),
))
_register(DomainSpec(
    "library", "book", "author", "loan", "genre",
    ("Fiction", "Biography", "Science", "Poetry", "History", "Mystery"),
    ("The Glass Orchard", "River of Names", "A Minor Key", "Salt Meridian",
     "The Cartographer", "Hollow Crown", "Ashes of June", "Tide Tables",
     "The Ninth Door", "Letters Home"),
    ("pages", "copies", "year", "rating"),
))
_register(DomainSpec(
    "museums", "exhibit", "curator", "visit", "collection",
    ("Modern Art", "Antiquities", "Natural History", "Photography", "Sculpture"),
    ("Bronze Age Relics", "Impressionist Light", "Deep Sea Wonders",
     "Desert Civilizations", "The Silk Road", "Arctic Life", "Masks of Oceania",
     "Clockwork Century", "Painted Dynasties", "Stone and Sky"),
    ("artifacts", "year", "insurance_value", "popularity"),
))
_register(DomainSpec(
    "parks", "park", "ranger", "inspection", "park_type",
    ("National", "State", "Urban", "Marine", "Forest"),
    ("Cedar Hollow", "Eagle Ridge", "Lakeshore", "Granite Peak", "Fern Valley",
     "Dune Point", "Willow Bend", "Red Mesa", "Glacier Gate", "Pine Flats"),
    ("area", "trails", "visitors", "elevation"),
))
_register(DomainSpec(
    "real_estate", "property", "broker", "showing", "property_type",
    ("Apartment", "House", "Condo", "Townhouse", "Loft"),
    ("12 Oak Lane", "48 Birch Street", "7 Harbor Road", "101 Main Street",
     "33 Elm Court", "59 Maple Avenue", "204 Hill Drive", "86 River Walk",
     "15 Garden Place", "72 Summit Way"),
    ("price", "bedrooms", "area", "year_built"),
))
_register(DomainSpec(
    "automotive", "car_model", "manufacturer", "sale", "body_style",
    ("Sedan", "SUV", "Hatchback", "Coupe", "Pickup"),
    ("Falcon GT", "Metro EV", "Ridge Runner", "City Spark", "Vista Cruiser",
     "Bolt S", "Terra Trek", "Luxe 500", "Pace Setter", "Nomad X"),
    ("horsepower", "mpg", "price", "weight"),
))
_register(DomainSpec(
    "energy", "plant", "operator", "reading", "source_type",
    ("Solar", "Wind", "Hydro", "Nuclear", "Geothermal"),
    ("Sunfield Alpha", "Westwind Farm", "Bluewater Dam", "Ridgeline Station",
     "Deep Rock Geo", "Clearsky Array", "Northgate Plant", "Tidal Basin",
     "Ember Valley", "Highmast Farm"),
    ("capacity", "output", "efficiency", "cost"),
))
_register(DomainSpec(
    "agriculture", "farm", "farmer", "harvest", "crop_type",
    ("Wheat", "Corn", "Soybean", "Rice", "Barley", "Cotton"),
    ("Green Acres", "Sunrise Fields", "Meadowbrook", "Hilltop Farm", "Clearwater",
     "Oak Hollow", "Prairie Rose", "Stony Creek", "Golden Plains", "Fox Run"),
    ("acres", "yield", "rainfall", "revenue"),
))
_register(DomainSpec(
    "weather", "station", "meteorologist", "observation", "climate_zone",
    ("Temperate", "Tropical", "Arid", "Polar", "Mediterranean"),
    ("ST-North", "ST-East", "ST-West", "ST-South", "ST-Central", "ST-Harbor",
     "ST-Valley", "ST-Peak", "ST-Coast", "ST-Plains"),
    ("temperature", "rainfall", "humidity", "wind_speed"),
))
_register(DomainSpec(
    "gaming", "game", "developer", "session", "platform",
    ("PC", "Console", "Mobile", "VR", "Arcade"),
    ("Starfall Tactics", "Dungeon Loop", "Pixel Racer", "Mecha Arena",
     "Garden Story", "Rift Walkers", "Turbo League", "Shadow Keep",
     "Sky Harvest", "Circuit Break"),
    ("price", "playtime", "rating", "downloads"),
))
_register(DomainSpec(
    "social_media", "post", "user_account", "comment", "channel",
    ("News", "Gaming", "Lifestyle", "Tech", "Music", "Sports Talk"),
    ("Morning update", "Release notes", "Travel diary", "Recipe thread",
     "Match recap", "Patch review", "Studio tour", "Q and A", "Launch day",
     "Weekend plans"),
    ("likes", "shares", "views", "length"),
))
_register(DomainSpec(
    "ecommerce", "listing", "seller", "purchase", "department",
    ("Home", "Garden", "Office", "Outdoors", "Kitchen"),
    ("Bamboo Cutting Board", "LED Desk Lamp", "Canvas Tote", "Steel Thermos",
     "Wool Throw", "Cork Planter", "Walnut Tray", "Linen Apron",
     "Copper Kettle", "Slate Coasters"),
    ("price", "quantity", "rating", "shipping_cost"),
))
_register(DomainSpec(
    "logistics", "shipment", "carrier", "scan_event", "service_level",
    ("Standard", "Express", "Overnight", "Freight", "Economy"),
    ("SH-90001", "SH-90002", "SH-90003", "SH-90004", "SH-90005", "SH-90006",
     "SH-90007", "SH-90008", "SH-90009", "SH-90010"),
    ("weight", "distance", "cost", "days_in_transit"),
))
_register(DomainSpec(
    "telecom", "subscriber", "technician", "service_call", "plan",
    ("Basic", "Plus", "Premium", "Family", "Business"),
    tuple(f"{first} {last}" for first, last in zip(_FIRST_NAMES[3:], _LAST_NAMES[3:])),
    ("data_usage", "minutes", "bill", "tenure"),
))
_register(DomainSpec(
    "government", "agency", "official", "program", "sector",
    ("Education", "Transport", "Health", "Defense", "Environment"),
    ("Bureau of Roads", "Office of Parks", "Civic Records", "Harbor Authority",
     "Water Board", "Census Office", "Energy Commission", "Land Registry",
     "Public Works", "Transit Authority"),
    ("budget", "employees", "founded_year", "rating"),
))
_register(DomainSpec(
    "nonprofit", "charity", "donor", "donation", "cause",
    ("Education", "Hunger", "Environment", "Health", "Arts"),
    ("Bright Futures", "Clean Rivers", "Open Books", "Safe Harbor",
     "Green Canopy", "Food Forward", "Art Reach", "Care Bridge",
     "Hope Works", "Shelter First"),
    ("funds_raised", "members", "founded_year", "rating"),
))
_register(DomainSpec(
    "science_lab", "experiment", "researcher", "measurement", "field",
    ("Chemistry", "Genetics", "Materials", "Astronomy", "Ecology"),
    ("EXP-A1", "EXP-A2", "EXP-B1", "EXP-B2", "EXP-C1", "EXP-C2", "EXP-D1",
     "EXP-D2", "EXP-E1", "EXP-E2"),
    ("duration", "samples", "cost", "accuracy"),
))
_register(DomainSpec(
    "publishing", "journal", "editor", "submission", "discipline",
    ("Medicine", "Physics", "Economics", "Linguistics", "Robotics"),
    ("Annals of Data", "Systems Letters", "Field Notes", "Applied Minds",
     "The Review", "Methods Today", "Open Results", "Core Studies",
     "Frontier Papers", "Survey Quarterly"),
    ("impact_factor", "issues", "subscribers", "founded_year"),
))
_register(DomainSpec(
    "pets", "pet", "owner", "checkup", "breed",
    ("Labrador", "Siamese", "Beagle", "Persian", "Terrier", "Maine Coon"),
    ("Buddy", "Luna", "Max", "Bella", "Charlie", "Daisy", "Rocky", "Molly",
     "Duke", "Sadie"),
    ("age", "weight", "visits", "adoption_fee"),
))
_register(DomainSpec(
    "hr", "employee", "department_head", "review", "job_title",
    ("Engineer", "Analyst", "Designer", "Manager", "Accountant"),
    tuple(f"{first} {last}" for first, last in zip(_FIRST_NAMES[7:], _LAST_NAMES[7:])),
    ("salary", "age", "tenure", "performance_score"),
))
_register(DomainSpec(
    "events", "conference", "organizer", "registration", "track",
    ("Databases", "AI", "Security", "Networks", "HCI"),
    ("DataCon", "SysSummit", "CloudForum", "DevFest", "InfoDays", "TechWeek",
     "CodeCamp", "NetSymposium", "AI Assembly", "QueryCon"),
    ("attendees", "fee", "duration", "year"),
))

if len(DOMAIN_CATALOG) != 33:
    raise DataGenerationError(
        f"domain catalog must contain exactly 33 domains, found {len(DOMAIN_CATALOG)}"
    )


def get_domain(name: str) -> DomainSpec:
    """Look up a domain by name."""
    try:
        return DOMAIN_CATALOG[name]
    except KeyError as exc:
        raise DataGenerationError(f"unknown domain {name!r}") from exc


def domain_names() -> list[str]:
    """All domain names in registration order."""
    return list(DOMAIN_CATALOG)
