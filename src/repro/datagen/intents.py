"""Abstract query intents.

A :class:`QueryIntent` is the semantic content of one (NL, SQL) pair:
which tables, which projection, which filters, grouping, ordering, and —
for the harder shapes — which subquery or set operation.  The benchmark
generator renders an intent to both gold SQL (:mod:`sql_render`) and a
natural-language question (:mod:`nl_render`); the simulated models parse
the question back into an intent (:mod:`repro.nlu`) and render their own
SQL from it.  The intent is therefore the *interface*, never a hidden
channel: models only ever see the NL text and the schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum


class Aggregate(str, Enum):
    """Aggregate functions in the intent grammar."""

    NONE = "none"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    @property
    def sql_name(self) -> str:
        return self.value.upper()


class IntentShape(str, Enum):
    """The closed set of query shapes the benchmark grammar generates.

    Together these cover all four SQL characteristics the paper filters on
    (JOINs, subqueries, logical connectors, ORDER BY) and all four Spider
    hardness levels.
    """

    PROJECT = "project"                  # SELECT cols FROM t [WHERE ...]
    AGG = "agg"                          # SELECT agg(col) FROM t [WHERE ...]
    GROUP_AGG = "group_agg"              # ... GROUP BY key [HAVING ...]
    ORDER_TOP = "order_top"              # ... ORDER BY col LIMIT n
    JOIN_PROJECT = "join_project"        # two tables joined
    JOIN_GROUP = "join_group"            # join + group + agg [+ order/having]
    SUBQUERY_CMP_AGG = "subquery_cmp_agg"  # WHERE col > (SELECT AVG(col) ...)
    SUBQUERY_IN = "subquery_in"          # WHERE pk IN (SELECT fk ... WHERE ...)
    SUBQUERY_NOT_IN = "subquery_not_in"  # NOT IN variant
    EXTREME = "extreme"                  # WHERE col = (SELECT MAX(col) ...)
    SET_OP = "set_op"                    # INTERSECT / UNION / EXCEPT


# Comparison phrases usable in filters (op -> NL phrase).
FILTER_OPS = ("=", "!=", ">", "<", ">=", "<=", "like", "between")


@dataclass(frozen=True)
class ColumnSel:
    """A (table, column) selection; ``column == '*'`` means star."""

    table: str
    column: str

    @property
    def is_star(self) -> bool:
        return self.column == "*"


@dataclass(frozen=True)
class Filter:
    """One predicate: ``table.column <op> value`` (+ connector to previous)."""

    column: ColumnSel
    op: str
    value: object
    value2: object | None = None      # BETWEEN upper bound
    connector: str = "and"            # connector joining this to the prior filter


@dataclass(frozen=True)
class OrderSpec:
    """ORDER BY key: a column or an aggregate over a column."""

    column: ColumnSel
    aggregate: Aggregate = Aggregate.NONE
    direction: str = "asc"
    limit: int | None = None


@dataclass(frozen=True)
class HavingSpec:
    """HAVING predicate over an aggregate."""

    aggregate: Aggregate
    column: ColumnSel              # column='*' for COUNT(*)
    op: str
    value: float


@dataclass(frozen=True)
class SubquerySpec:
    """Subquery payload for the subquery-bearing shapes.

    * CMP_AGG / EXTREME: compare ``outer_column <op> (SELECT agg(inner_column)
      FROM inner_table)``.
    * IN / NOT_IN: ``outer_column [NOT] IN (SELECT inner_column FROM
      inner_table [WHERE inner_filter])``.
    """

    outer_column: ColumnSel
    op: str
    aggregate: Aggregate
    inner_table: str
    inner_column: ColumnSel
    inner_filter: Filter | None = None
    negated: bool = False


@dataclass(frozen=True)
class QueryIntent:
    """The full semantic specification of one benchmark question."""

    shape: IntentShape
    db_id: str
    tables: tuple[str, ...]
    projection: tuple[ColumnSel, ...]
    distinct: bool = False
    aggregate: Aggregate = Aggregate.NONE
    agg_column: ColumnSel | None = None
    filters: tuple[Filter, ...] = field(default_factory=tuple)
    group_by: ColumnSel | None = None
    having: HavingSpec | None = None
    order: OrderSpec | None = None
    subquery: SubquerySpec | None = None
    set_op: str | None = None             # intersect | union | except
    set_branch_filter: Filter | None = None

    def with_(self, **changes: object) -> "QueryIntent":
        """Return a modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)

    @property
    def has_join(self) -> bool:
        return len(self.tables) > 1

    @property
    def has_subquery(self) -> bool:
        return self.subquery is not None or self.set_op is not None

    @property
    def num_connectors(self) -> int:
        return max(len(self.filters) - 1, 0)

    @property
    def has_order_by(self) -> bool:
        return self.order is not None

    def signature(self) -> str:
        """A stable structural signature used for similarity-based few-shot
        example selection (DAIL-SQL's skeleton similarity)."""
        parts = [self.shape.value, str(len(self.tables)), str(len(self.filters))]
        parts.append(self.aggregate.value)
        parts.append("grp" if self.group_by else "-")
        parts.append("hav" if self.having else "-")
        if self.order:
            parts.append(f"ord:{self.order.direction}:{int(self.order.limit is not None)}")
        else:
            parts.append("-")
        parts.append(self.set_op or "-")
        return "|".join(parts)
