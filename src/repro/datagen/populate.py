"""Populate a :class:`Database` with synthetic rows.

Tables are filled in dependency order (lookup tables before the entities
that reference them) and FK columns sample existing parent keys, so the
database satisfies referential integrity with ``PRAGMA foreign_keys = ON``.
"""

from __future__ import annotations

from repro.datagen.domains import DomainSpec
from repro.datagen.schema_gen import _plural
from repro.datagen.values import sample_value
from repro.dbengine.database import Database
from repro.schema.model import DatabaseSchema, Table
from repro.utils.rng import derive_rng


def _dependency_order(schema: DatabaseSchema) -> list[Table]:
    """Topologically order tables so FK targets are populated first."""
    ordered: list[Table] = []
    placed: set[str] = set()
    remaining = list(schema.tables)
    while remaining:
        progressed = False
        for table in list(remaining):
            depends_on = {
                fk.target_table.lower()
                for fk in schema.foreign_keys
                if fk.source_table.lower() == table.name.lower()
                and fk.target_table.lower() != table.name.lower()
            }
            if depends_on <= placed:
                ordered.append(table)
                placed.add(table.name.lower())
                remaining.remove(table)
                progressed = True
        if not progressed:  # FK cycle: append the rest in declaration order
            ordered.extend(remaining)
            break
    return ordered


def _fk_targets(schema: DatabaseSchema, table: Table) -> dict[str, tuple[str, str]]:
    """Map FK source column -> (target table, target column)."""
    return {
        fk.source_column.lower(): (fk.target_table, fk.target_column)
        for fk in schema.foreign_keys
        if fk.source_table.lower() == table.name.lower()
    }


def populate_database(
    database: Database,
    domain: DomainSpec,
    rows_per_table: int = 60,
    seed: int = 0,
) -> dict[str, int]:
    """Fill every table of ``database`` with synthetic rows.

    Returns a map of table name to inserted row count.  Lookup/category
    tables get one row per vocabulary value; other tables get
    ``rows_per_table`` rows (events get 2x for realistic fan-out).
    """
    schema = database.schema
    rng = derive_rng(seed, "populate", schema.db_id)
    counts: dict[str, int] = {}
    parent_keys: dict[str, list[object]] = {}

    for table in _dependency_order(schema):
        row_count = _rows_for_table(domain, table, rows_per_table)
        fk_map = _fk_targets(schema, table)
        rows = []
        for row_index in range(row_count):
            row = []
            for column in table.columns:
                key = column.name.lower()
                if key in fk_map and not column.is_primary_key:
                    target_table, __ = fk_map[key]
                    keys = parent_keys.get(target_table.lower(), [1])
                    row.append(keys[rng.randrange(len(keys))])
                else:
                    row.append(sample_value(rng, domain, table, column, row_index))
            rows.append(tuple(row))
        database.insert_rows(table.name, rows)
        counts[table.name] = len(rows)
        pk_columns = table.primary_key_columns
        if len(pk_columns) == 1:
            index = [c.name for c in table.columns].index(pk_columns[0].name)
            parent_keys[table.name.lower()] = [row[index] for row in rows]
    return counts


def _rows_for_table(domain: DomainSpec, table: Table, rows_per_table: int) -> int:
    name = table.name.lower()
    if name == _plural(domain.category).lower():
        return len(domain.category_values)
    if name == _plural(domain.event).lower():
        return rows_per_table * 2
    if name == "locations":
        return min(rows_per_table, 20)
    return rows_per_table
