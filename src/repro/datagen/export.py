"""Export/import benchmarks in the standard Spider artifact layout.

``export_spider_format`` writes a built benchmark the way the Spider
release ships: ``tables.json`` (schemas in Spider's column-index format),
``train.json`` / ``dev.json`` (examples with ``db_id``, ``question``,
``query``), and one SQLite file per database under ``database/<db_id>/``.
``load_spider_format`` reads such a directory back into a live
:class:`Dataset`, which also makes the testbed usable on any external
dataset prepared in Spider's layout.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from repro.datagen.benchmark import Dataset, Example
from repro.dbengine.database import Database
from repro.errors import DataGenerationError
from repro.schema.introspect import schema_from_sqlite
from repro.schema.model import ColumnType, DatabaseSchema
from repro.sqlkit.hardness import classify_bird_difficulty, classify_hardness

_SPIDER_TYPE = {
    ColumnType.TEXT: "text",
    ColumnType.INTEGER: "number",
    ColumnType.REAL: "number",
    ColumnType.DATE: "time",
    ColumnType.BOOLEAN: "boolean",
}


def schema_to_spider_entry(schema: DatabaseSchema) -> dict:
    """Encode one schema as a Spider ``tables.json`` entry.

    Spider's format indexes columns globally: entry 0 is the ``*`` column,
    and each column is a ``[table_index, name]`` pair; primary keys are
    column indices and foreign keys are ``[source, target]`` index pairs.
    """
    table_names = [table.name for table in schema.tables]
    column_names: list[list] = [[-1, "*"]]
    column_types: list[str] = ["text"]
    index_of: dict[tuple[str, str], int] = {}
    for table_index, table in enumerate(schema.tables):
        for column in table.columns:
            index_of[(table.name.lower(), column.name.lower())] = len(column_names)
            column_names.append([table_index, column.display_name])
            column_types.append(_SPIDER_TYPE[column.col_type])

    primary_keys = [
        index_of[(table.name.lower(), column.name.lower())]
        for table in schema.tables
        for column in table.primary_key_columns
    ]
    foreign_keys = [
        [
            index_of[(fk.source_table.lower(), fk.source_column.lower())],
            index_of[(fk.target_table.lower(), fk.target_column.lower())],
        ]
        for fk in schema.foreign_keys
    ]
    column_names_original = [[-1, "*"]] + [
        [table_index, column.name]
        for table_index, table in enumerate(schema.tables)
        for column in table.columns
    ]
    return {
        "db_id": schema.db_id,
        "table_names": [table.display_name for table in schema.tables],
        "table_names_original": table_names,
        "column_names": column_names,
        "column_names_original": column_names_original,
        "column_types": column_types,
        "primary_keys": primary_keys,
        "foreign_keys": foreign_keys,
        # Non-standard extras (ignored by Spider tooling, used by ours).
        "x_domain": schema.domain,
        "x_ambient_difficulty": schema.ambient_difficulty,
    }


def _example_to_entry(example: Example) -> dict:
    return {
        "db_id": example.db_id,
        "question": example.question,
        "query": example.gold_sql,
        # Non-standard extras for round-tripping our metadata.
        "x_example_id": example.example_id,
        "x_variant_group": example.variant_group,
        "x_variant_style": example.variant_style,
        "x_linguistic_difficulty": example.linguistic_difficulty,
    }


def export_spider_format(dataset: Dataset, path: str | Path) -> Path:
    """Write ``dataset`` in Spider's artifact layout under ``path``."""
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    schemas = [database.schema for database in dataset.databases.values()]
    (root / "tables.json").write_text(
        json.dumps([schema_to_spider_entry(s) for s in schemas], indent=1)
    )
    for split in ("train", "dev"):
        entries = [_example_to_entry(e) for e in dataset.split(split)]
        (root / f"{split}.json").write_text(json.dumps(entries, indent=1))
    database_dir = root / "database"
    for db_id, database in dataset.databases.items():
        # Spider's layout is .sqlite files; only backends exposing the
        # sqlite3 backup API can emit them.
        if not database.backend.capabilities.supports_backup:
            raise DataGenerationError(
                f"database {db_id!r} runs on the "
                f"{database.backend_name!r} backend, which cannot export "
                f"Spider-format .sqlite artifacts"
            )
        target_dir = database_dir / db_id
        target_dir.mkdir(parents=True, exist_ok=True)
        target = sqlite3.connect(target_dir / f"{db_id}.sqlite")
        with target:
            database.connection.backup(target)
        target.close()
    return root


def load_spider_format(path: str | Path, name: str = "spider-import") -> Dataset:
    """Load a Spider-layout directory back into a live :class:`Dataset`.

    Works both for our own exports (metadata extras are restored) and for
    external datasets in the same layout (metadata is derived).
    """
    root = Path(path)
    tables_path = root / "tables.json"
    if not tables_path.exists():
        raise DataGenerationError(f"{root} has no tables.json")
    table_entries = json.loads(tables_path.read_text())

    dataset = Dataset(name=name)
    for entry in table_entries:
        db_id = entry["db_id"]
        sqlite_path = root / "database" / db_id / f"{db_id}.sqlite"
        if not sqlite_path.exists():
            raise DataGenerationError(f"missing SQLite file for {db_id!r}")
        source = sqlite3.connect(sqlite_path)
        schema = schema_from_sqlite(
            source, db_id, domain=entry.get("x_domain", "general")
        )
        schema.ambient_difficulty = float(entry.get("x_ambient_difficulty", 0.0))
        database = Database(schema)
        with database.connection:
            source.backup(database.connection)
        # The restore bypassed insert_rows: advance data_version so
        # execution memos and pooled replicas see the new content.
        database.mark_mutated()
        source.close()
        dataset.databases[db_id] = database

    for split in ("train", "dev"):
        split_path = root / f"{split}.json"
        if not split_path.exists():
            continue
        for index, entry in enumerate(json.loads(split_path.read_text())):
            gold_sql = entry["query"]
            example_id = entry.get("x_example_id", f"{split}-{index}")
            dataset.examples.append(Example(
                example_id=example_id,
                db_id=entry["db_id"],
                domain=dataset.databases[entry["db_id"]].schema.domain,
                question=entry["question"],
                gold_sql=gold_sql,
                hardness=classify_hardness(gold_sql),
                bird_difficulty=classify_bird_difficulty(gold_sql),
                split=split,
                variant_group=entry.get("x_variant_group", example_id),
                variant_style=entry.get("x_variant_style", "canonical"),
                linguistic_difficulty=int(entry.get("x_linguistic_difficulty", 0)),
            ))
    if not dataset.examples:
        raise DataGenerationError(f"{root} contains no examples")
    return dataset
