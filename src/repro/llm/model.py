"""The simulated language model.

``SimulatedLanguageModel.generate`` runs the full pipeline a real model
performs implicitly:

1. **read** the question through a capability-limited lexicon (paraphrase
   robustness),
2. **understand** it with the shared NLU intent parser against the
   (possibly schema-linked/pruned) schema,
3. **err** according to the corruption model — errors are split into a
   *systematic* component (fixed per question: the model's actual
   misunderstanding, shared across samples) and a *stochastic* component
   (varies per decode draw), so that self-consistency voting and beam
   re-ranking help exactly as much as they do in practice,
4. **render** SQL, possibly through the NatSQL IR, in the model's own
   style (EM-divergent but execution-equivalent choices), and
5. occasionally emit a **syntactically broken** completion, which
   constrained decoding (PICARD) or execution-guided selection can catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.datagen.intents import QueryIntent
from repro.dbengine.database import Database
from repro.errors import NatSQLError, ReproError, SQLError
from repro.llm.corruption import CorruptionContext, CorruptionSampler, error_rates
from repro.llm.finetune import make_finetune_state
from repro.llm.prompt import Prompt
from repro.llm.profile import FineTuneState, ModelProfile
from repro.llm.styles import sample_style, render_with_style, StyleChoices
from repro.llm.tokens import count_tokens
from repro.nlu.intent_parser import IntentParser, NLUParseError
from repro.nlu.lexicon import HARD_PHRASES, Lexicon
from repro.nlu.linker import SchemaLinker
from repro.obs.trace import get_tracer
from repro.schema.model import DatabaseSchema, ForeignKey
from repro.sqlkit.natsql import from_natsql, to_natsql
from repro.sqlkit.parser import parse_select
from repro.utils.cache import LRUCache, caches_enabled
from repro.utils.rng import derive_rng

# Fraction of each error class that is systematic (identical across
# samples of the same question) rather than per-draw noise.
_SYSTEMATIC_FRACTION = 0.75


@dataclass(frozen=True)
class GenerationCandidate:
    """One decoded SQL candidate with bookkeeping."""

    sql: str
    output_tokens: int
    parse_failed: bool = False
    errors: tuple[str, ...] = ()
    intent: QueryIntent | None = None
    draw: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors and not self.parse_failed


def _pruned_schema(schema: DatabaseSchema, tables: tuple[str, ...]) -> DatabaseSchema:
    """A sub-schema containing only ``tables`` and the FKs among them."""
    wanted = {name.lower() for name in tables}
    kept_tables = [t for t in schema.tables if t.name.lower() in wanted]
    kept_fks: list[ForeignKey] = [
        fk
        for fk in schema.foreign_keys
        if fk.source_table.lower() in wanted and fk.target_table.lower() in wanted
    ]
    return DatabaseSchema(
        db_id=schema.db_id, tables=kept_tables, foreign_keys=kept_fks,
        domain=schema.domain, ambient_difficulty=schema.ambient_difficulty,
    )


def _break_syntax(sql: str, rng: random.Random) -> str:
    """Produce a realistically malformed completion."""
    mode = rng.randrange(3)
    if mode == 0 and len(sql) > 12:
        return sql[: rng.randrange(len(sql) // 2, len(sql) - 4)]
    if mode == 1:
        return sql.replace("FROM", "FORM", 1)
    return sql + " AND"


class SimulatedLanguageModel:
    """A capability-profiled NL2SQL backbone."""

    def __init__(
        self,
        profile: ModelProfile,
        finetune: FineTuneState | None = None,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.finetune = finetune
        self.seed = seed
        self._lexicon: Lexicon | None = None
        # Honest-parse memo: the intent (or None on a parse failure) per
        # (db_id, question, pruned-table tuple).  Beam/sampling draws of
        # the same question re-derive an identical pre-corruption intent,
        # and QueryIntent is frozen, so sharing it is safe.
        self._intent_cache = LRUCache(maxsize=8192)
        self._pruned_cache = LRUCache(maxsize=512)

    # -- identity --------------------------------------------------------

    @property
    def name(self) -> str:
        if self.finetune is not None:
            return f"{self.profile.name}+sft:{self.finetune.dataset_name}"
        return self.profile.name

    def fine_tune(self, dataset_name: str, examples: list) -> "SimulatedLanguageModel":
        """Return a fine-tuned copy of this model (Alpaca-style SFT)."""
        state = make_finetune_state(self.profile, dataset_name, examples)
        return SimulatedLanguageModel(self.profile, finetune=state, seed=self.seed)

    # -- linguistic coverage ----------------------------------------------

    def lexicon(self) -> Lexicon:
        """The hard-phrase lexicon this model resolves.

        Fine-tuned models read the dataset's phrasing perfectly (the train
        split contains the paraphrase styles); otherwise each hard phrase
        is known with probability equal to the linguistic capability —
        decided once per model, so a model is *consistently* blind to the
        same phrasings (which is what QVT measures).
        """
        if self._lexicon is not None:
            return self._lexicon
        if self.finetune is not None and self.finetune.style_aligned:
            self._lexicon = Lexicon.full()
            return self._lexicon
        rng = derive_rng(self.seed, "lexicon", self.profile.name)
        linguistic = self.profile.linguistic
        enabled = {
            phrase for phrase in HARD_PHRASES if rng.random() < linguistic
        }
        self._lexicon = Lexicon.with_coverage(frozenset(enabled))
        return self._lexicon

    # -- generation --------------------------------------------------------

    def _effective_schema(self, database: Database, prompt: Prompt) -> DatabaseSchema:
        """The (possibly pruned) schema the model reads, memoized when on."""
        schema = database.schema
        if prompt.features.schema_tables is None:
            return schema
        if caches_enabled():
            pruned_key = (schema.db_id, prompt.features.schema_tables)
            hit, cached_schema = self._pruned_cache.lookup(pruned_key)
            if hit:
                return cached_schema
            effective_schema = _pruned_schema(schema, prompt.features.schema_tables)
            self._pruned_cache.put(pruned_key, effective_schema)
            return effective_schema
        return _pruned_schema(schema, prompt.features.schema_tables)

    def _question_key(self, prompt: Prompt) -> tuple:
        fingerprint = (
            (self.finetune.dataset_name, self.finetune.num_samples)
            if self.finetune
            else None
        )
        return (self.profile.name, fingerprint, prompt.db_id, prompt.question)

    def generate(
        self,
        prompt: Prompt,
        database: Database,
        temperature: float = 0.0,
        draw: int = 0,
        uses_natsql: bool = False,
        decomposed: bool = False,
        overdecompose: bool = False,
        style_divergence: float = 0.0,
    ) -> GenerationCandidate:
        """Generate one SQL candidate for ``prompt``.

        ``draw`` indexes independent decode samples (beam entries or
        self-consistency samples); draw 0 at temperature 0 is the greedy
        completion.
        """
        schema = database.schema
        use_caches = caches_enabled()
        effective_schema = self._effective_schema(database, prompt)

        context = CorruptionContext(
            schema=effective_schema,
            database=database,
            profile=self.profile,
            features=prompt.features,
            finetune=self.finetune,
            domain=schema.domain,
            temperature=temperature,
            uses_natsql=uses_natsql,
            decomposed=decomposed,
            overdecompose=overdecompose,
        )

        question_key = self._question_key(prompt)
        systematic_rng = derive_rng(self.seed, "sys", *question_key)
        draw_rng = derive_rng(self.seed, "draw", *question_key, draw, round(temperature, 3))

        # A parse failure is as deterministic as a parse success (both
        # depend only on question + effective schema + lexicon), so the
        # memo stores intent-or-None and parse_failed is derived from it.
        if use_caches:
            intent_key = (
                prompt.db_id,
                prompt.question,
                prompt.features.schema_tables,
            )
            hit, intent = self._intent_cache.lookup(intent_key)
            if hit:
                get_tracer().annotate_stage(memo_hits=1)
            else:
                intent = self._parse_intent(effective_schema, prompt.question)
                self._intent_cache.put(intent_key, intent)
        else:
            intent = self._parse_intent(effective_schema, prompt.question)
        parse_failed = intent is None

        if intent is None:
            sql = self._fallback_sql(prompt.question, effective_schema)
            tokens = count_tokens(sql)
            get_tracer().annotate_stage(llm_calls=1, output_tokens=tokens)
            return GenerationCandidate(
                sql=sql,
                output_tokens=tokens,
                parse_failed=True,
                errors=("parse_failure",),
                draw=draw,
            )

        rates = error_rates(context, intent)
        systematic_rates = {k: v * _SYSTEMATIC_FRACTION for k, v in rates.items()}
        stochastic_scale = (1.0 - _SYSTEMATIC_FRACTION) * (1.0 + 0.8 * temperature)
        stochastic_rates = {k: v * stochastic_scale for k, v in rates.items()}

        sampler_sys = CorruptionSampler(context, systematic_rng)
        intent = sampler_sys.apply(intent, systematic_rates)
        sampler_draw = CorruptionSampler(context, draw_rng)
        intent = sampler_draw.apply(intent, stochastic_rates)

        style = StyleChoices()
        if style_divergence > 0:
            style_rng = derive_rng(self.seed, "style", *question_key)
            style = sample_style(style_rng, style_divergence)

        sql = self._render(intent, schema, style, uses_natsql)

        # Syntax breakage is mostly a decoding-level accident: stochastic.
        if draw_rng.random() < rates["syntax_error"] * stochastic_scale * 1.8:
            sql = _break_syntax(sql, draw_rng)
            context.errors.append("syntax_error")

        tokens = count_tokens(sql)
        get_tracer().annotate_stage(llm_calls=1, output_tokens=tokens)
        return GenerationCandidate(
            sql=sql,
            output_tokens=tokens,
            parse_failed=parse_failed,
            errors=tuple(context.errors),
            intent=intent,
            draw=draw,
        )

    def generate_many(
        self,
        prompt: Prompt,
        database: Database,
        draws: list[tuple[int, float]],
        uses_natsql: bool = False,
        decomposed: bool = False,
        overdecompose: bool = False,
        style_divergence: float = 0.0,
    ) -> list[GenerationCandidate]:
        """Generate one candidate per ``(draw, temperature)`` pair, batched.

        Bit-identical to calling :meth:`generate` once per pair, but the
        draw-invariant work — lexicon, honest intent parse, pruned
        schema, style sampling, and the *systematic* corruption component
        (which depends only on the question and the temperature) — is
        hoisted out of the per-draw loop.  Each draw's stochastic RNG
        stream is derived and consumed exactly as in :meth:`generate`:
        the systematic stream is keyed by question only, the draw stream
        by ``(question, draw, temperature)``, and neither reads the
        other, so hoisting cannot change any sampled value.
        """
        if not draws:
            return []
        schema = database.schema
        use_caches = caches_enabled()
        effective_schema = self._effective_schema(database, prompt)
        question_key = self._question_key(prompt)

        # One honest parse for the whole batch (per-draw calls repeat it
        # verbatim; with the memo on they pay a lookup each instead).
        if use_caches:
            intent_key = (
                prompt.db_id,
                prompt.question,
                prompt.features.schema_tables,
            )
            hit, intent = self._intent_cache.lookup(intent_key)
            if hit:
                get_tracer().annotate_stage(memo_hits=1)
            else:
                intent = self._parse_intent(effective_schema, prompt.question)
                self._intent_cache.put(intent_key, intent)
        else:
            intent = self._parse_intent(effective_schema, prompt.question)

        if intent is None:
            # Parse failure: every draw degrades to the same deterministic
            # fallback; accounting matches one annotate per sequential call.
            sql = self._fallback_sql(prompt.question, effective_schema)
            tokens = count_tokens(sql)
            get_tracer().annotate_stage(
                llm_calls=len(draws),
                output_tokens=tokens * len(draws),
                llm_batched_calls=1,
                llm_batch_draws=len(draws),
            )
            return [
                GenerationCandidate(
                    sql=sql,
                    output_tokens=tokens,
                    parse_failed=True,
                    errors=("parse_failure",),
                    draw=draw,
                )
                for draw, _temperature in draws
            ]

        style = StyleChoices()
        if style_divergence > 0:
            # Sequential calls re-derive this stream per call and land on
            # the same choices; one sample is exactly equivalent.
            style_rng = derive_rng(self.seed, "style", *question_key)
            style = sample_style(style_rng, style_divergence)

        def make_context(temperature: float) -> CorruptionContext:
            return CorruptionContext(
                schema=effective_schema,
                database=database,
                profile=self.profile,
                features=prompt.features,
                finetune=self.finetune,
                domain=schema.domain,
                temperature=temperature,
                uses_natsql=uses_natsql,
                decomposed=decomposed,
                overdecompose=overdecompose,
            )

        # The systematic component is f(question, temperature): its RNG
        # stream is freshly derived per generate() call from question-only
        # keys, so all draws sharing a temperature share one systematic
        # intent and error list.  Cache it per distinct temperature.
        systematic: dict[float, tuple] = {}

        def systematic_state(temperature: float) -> tuple:
            state = systematic.get(temperature)
            if state is None:
                context = make_context(temperature)
                rates = error_rates(context, intent)
                systematic_rates = {
                    k: v * _SYSTEMATIC_FRACTION for k, v in rates.items()
                }
                stochastic_scale = (1.0 - _SYSTEMATIC_FRACTION) * (
                    1.0 + 0.8 * temperature
                )
                stochastic_rates = {k: v * stochastic_scale for k, v in rates.items()}
                systematic_rng = derive_rng(self.seed, "sys", *question_key)
                sampler_sys = CorruptionSampler(context, systematic_rng)
                sys_intent = sampler_sys.apply(intent, systematic_rates)
                state = (
                    sys_intent,
                    tuple(context.errors),
                    rates,
                    stochastic_rates,
                    stochastic_scale,
                )
                systematic[temperature] = state
            return state

        # Post-corruption rendering is deterministic, so identical
        # corrupted intents (common at low temperature) render once.
        render_memo: dict = {}
        results: list[GenerationCandidate] = []
        total_tokens = 0
        for draw, temperature in draws:
            (
                sys_intent,
                sys_errors,
                rates,
                stochastic_rates,
                stochastic_scale,
            ) = systematic_state(temperature)
            draw_rng = derive_rng(
                self.seed, "draw", *question_key, draw, round(temperature, 3)
            )
            draw_context = make_context(temperature)
            draw_context.errors.extend(sys_errors)
            sampler_draw = CorruptionSampler(draw_context, draw_rng)
            draw_intent = sampler_draw.apply(sys_intent, stochastic_rates)

            try:
                render_key = (draw_intent, style)
                sql = render_memo.get(render_key)
            except TypeError:
                render_key, sql = None, None
            if sql is None:
                sql = self._render(draw_intent, schema, style, uses_natsql)
                if render_key is not None:
                    render_memo[render_key] = sql

            if draw_rng.random() < rates["syntax_error"] * stochastic_scale * 1.8:
                sql = _break_syntax(sql, draw_rng)
                draw_context.errors.append("syntax_error")

            tokens = count_tokens(sql)
            total_tokens += tokens
            results.append(
                GenerationCandidate(
                    sql=sql,
                    output_tokens=tokens,
                    parse_failed=False,
                    errors=tuple(draw_context.errors),
                    intent=draw_intent,
                    draw=draw,
                )
            )
        get_tracer().annotate_stage(
            llm_calls=len(draws),
            output_tokens=total_tokens,
            llm_batched_calls=1,
            llm_batch_draws=len(draws),
        )
        return results

    def _parse_intent(
        self, effective_schema: DatabaseSchema, question: str
    ) -> QueryIntent | None:
        """Honestly parse ``question``; ``None`` signals a parse failure."""
        parser = IntentParser(effective_schema, self.lexicon())
        try:
            return parser.parse(question)
        except (NLUParseError, ReproError):
            return None

    def _render(
        self,
        intent: QueryIntent,
        schema: DatabaseSchema,
        style: StyleChoices,
        uses_natsql: bool,
    ) -> str:
        try:
            if uses_natsql:
                # Emit NatSQL (in the model's own style), then reconstruct
                # the join path from the schema FKs.  Subquery-rewriting
                # styles (EXISTS, set-op flattening) do not survive the
                # NatSQL round trip, so they are disabled here.
                natsql_style = replace(style, exists_for_in=False,
                                       connector_for_setop=False)
                sql = render_with_style(intent, schema, natsql_style)
                natsql = to_natsql(parse_select(sql))
                return from_natsql(natsql, schema)
            return render_with_style(intent, schema, style)
        except (NatSQLError, SQLError, ReproError):
            return self._fallback_sql("", schema)

    def _fallback_sql(self, question: str, schema: DatabaseSchema) -> str:
        """Last-resort completion when understanding failed entirely."""
        if question:
            linker = SchemaLinker(schema)
            tables = linker.relevant_tables(question, top_k=1)
            table = tables[0] if tables else schema.tables[0].name
        else:
            table = schema.tables[0].name
        return f"SELECT * FROM {table}"
