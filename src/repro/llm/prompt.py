"""Prompt objects: text plus the structured features the simulator reads.

A :class:`Prompt` is what a design-space configuration hands to the
model.  The ``text`` field is a real prompt string (schema DDL, few-shot
examples, question) used for token/cost accounting; the
:class:`PromptFeatures` describe the same content structurally so the
generation simulator can condition its error rates on what the prompt
actually contains (pruned schema, value hints, example quality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.llm.tokens import count_tokens


@dataclass(frozen=True)
class PromptFeatures:
    """Structured description of prompt content.

    Attributes:
        schema_tables: Tables included in the prompt (None = full schema).
        db_content: ``table -> column -> sample values`` hints (BRIDGE
            style); None when DB contents are not included.
        few_shot_count: Number of in-context examples.
        few_shot_quality: Mean structural similarity of the selected
            examples to the question, in [0, 1] (DAIL-SQL's selection
            achieves high quality; fixed manual examples are mid).
        sql_style: True when the prompt uses SQL-style (code) formatting,
            which the paper found beneficial for SFT prompts.
        instruction: Short label of the instruction framing (logged).
    """

    schema_tables: tuple[str, ...] | None = None
    db_content: dict[str, dict[str, list[str]]] | None = None
    few_shot_count: int = 0
    few_shot_quality: float = 0.0
    sql_style: bool = True
    instruction: str = "default"


@dataclass(frozen=True)
class Prompt:
    """A fully rendered prompt for one question."""

    text: str
    question: str
    db_id: str
    features: PromptFeatures = field(default_factory=PromptFeatures)

    @property
    def uses_schema_linking(self) -> bool:
        return self.features.schema_tables is not None

    @property
    def uses_db_content(self) -> bool:
        return self.features.db_content is not None

    @cached_property
    def token_count(self) -> int:
        """Token count of ``text``, computed (or primed) exactly once.

        Every accounting site (decode billing, repair re-draw billing)
        reads this instead of re-scanning the text.  The prefix-cached
        prompt builder primes it with a sum of per-segment counts via
        :meth:`prime_token_count`; the sum is exact because segment
        boundaries fall on whitespace and the tokenizer never matches
        across whitespace.
        """
        return count_tokens(self.text)

    def prime_token_count(self, tokens: int) -> None:
        """Seed the :attr:`token_count` cache without scanning the text."""
        # cached_property stores through the instance __dict__, which
        # bypasses the frozen-dataclass __setattr__ exactly like the
        # property's own first read would.
        self.__dict__["token_count"] = tokens
