"""Simulated language models: profiles, corruption model, decoding, pricing."""

from repro.llm.engine import (
    PromptPrefixCache,
    PromptSegment,
    batching_disabled,
    batching_enabled,
    clear_prefix_cache,
    prefix_cache,
    set_batching_enabled,
)
from repro.llm.profile import FineTuneState, ModelProfile
from repro.llm.registry import MODEL_REGISTRY, get_profile
from repro.llm.tokens import count_tokens
from repro.llm.pricing import PRICE_SHEET, prompt_cost
from repro.llm.prompt import Prompt, PromptFeatures
from repro.llm.model import GenerationCandidate, SimulatedLanguageModel
from repro.llm.finetune import fine_tune_boost, make_finetune_state

__all__ = [
    "PromptPrefixCache",
    "PromptSegment",
    "batching_disabled",
    "batching_enabled",
    "clear_prefix_cache",
    "prefix_cache",
    "set_batching_enabled",
    "FineTuneState",
    "ModelProfile",
    "MODEL_REGISTRY",
    "get_profile",
    "count_tokens",
    "PRICE_SHEET",
    "prompt_cost",
    "Prompt",
    "PromptFeatures",
    "GenerationCandidate",
    "SimulatedLanguageModel",
    "fine_tune_boost",
    "make_finetune_state",
]
