"""API price sheet (June 2024) and cost accounting for Exp-6.

The paper notes GPT-4's API is 60x more expensive than GPT-3.5-turbo for
input tokens and 40x for output tokens; the sheet below ($30/$60 vs
$0.50/$1.50 per million) reproduces those ratios exactly.
:func:`cost_per_correct` is the run-report economics counter (dollars
per EX-correct query, the paper's cost-effectiveness angle).

Thread/process safety: stateless pure functions over a constant price
sheet — safe from any thread or process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

# USD per 1k tokens: model -> (input, output).
PRICE_SHEET: dict[str, tuple[float, float]] = {
    "gpt-4": (0.03, 0.06),
    "gpt-3.5-turbo": (0.0005, 0.0015),
}


@dataclass(frozen=True)
class UsageRecord:
    """Token usage of one model call."""

    model: str
    input_tokens: int
    output_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @property
    def cost_usd(self) -> float:
        return prompt_cost(self.model, self.input_tokens, self.output_tokens)


def prompt_cost(model: str, input_tokens: int, output_tokens: int) -> float:
    """Dollar cost of one call; 0 for locally-served models."""
    if model not in PRICE_SHEET:
        return 0.0
    input_rate, output_rate = PRICE_SHEET[model]
    return input_tokens / 1000 * input_rate + output_tokens / 1000 * output_rate


def cost_per_correct(total_cost_usd: float, correct: int) -> float:
    """Dollars spent per EX-correct query (the run report's key counter).

    Zero correct answers with zero spend is a free (local) model — 0.0;
    zero correct answers with nonzero spend is unboundedly bad — inf.
    """
    if correct > 0:
        return total_cost_usd / correct
    return 0.0 if total_cost_usd <= 0 else float("inf")


def price_ratio(model_a: str, model_b: str) -> tuple[float, float]:
    """(input ratio, output ratio) of model_a's price over model_b's."""
    if model_a not in PRICE_SHEET or model_b not in PRICE_SHEET:
        raise ModelError("both models must be API-priced")
    a_in, a_out = PRICE_SHEET[model_a]
    b_in, b_out = PRICE_SHEET[model_b]
    return a_in / b_in, a_out / b_out
