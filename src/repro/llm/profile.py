"""Model capability profiles.

A :class:`ModelProfile` is the substitution for a real LLM/PLM backbone
(see DESIGN.md §1): four capability dimensions in [0, 1] govern the error
rates of the simulated generation pipeline, and resource fields govern
cost/latency accounting.

Capability semantics:

* ``reasoning`` — multi-step composition; drives subquery/HAVING success
  (the paper's Finding 2: GPT-4's reasoning wins on subqueries).
* ``schema`` — schema comprehension; drives join-path and column-linking
  success (Finding 4).
* ``precision`` — surface fidelity; drives value/operator/aggregate
  accuracy and syntax validity.
* ``linguistic`` — robustness to paraphrase; drives hard-phrase lexicon
  coverage (Finding 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FineTuneState:
    """Artifact of supervised fine-tuning on a benchmark's train split.

    Attributes:
        dataset_name: Which benchmark the model was tuned on.
        num_samples: Training examples seen.
        boost: Saturating gain in [0, 1] derived from ``num_samples``.
        domain_counts: Training databases per domain (drives in-domain
            adaptation, the paper's Finding 7).
        style_aligned: Fine-tuning aligns output style with the dataset's
            SQL distribution, collapsing EM-divergent renderings.
    """

    dataset_name: str
    num_samples: int
    boost: float
    domain_counts: dict[str, int] = field(default_factory=dict)
    style_aligned: bool = True

    def domain_boost(self, domain: str) -> float:
        """Extra in-domain gain: saturates with #training DBs in the domain."""
        count = self.domain_counts.get(domain, 0)
        if count <= 0:
            return 0.0
        return min(0.5 + 0.1 * count, 1.0)


@dataclass(frozen=True)
class ModelProfile:
    """Capabilities and resource characteristics of one backbone model."""

    name: str
    family: str                 # "gpt" | "starcoder" | "llama" | "t5" | ...
    params_billions: float
    api_only: bool = False      # True for GPT models (cannot be fine-tuned here)
    reasoning: float = 0.5
    schema: float = 0.5
    precision: float = 0.5
    linguistic: float = 0.5
    # Headroom multipliers: how much of the remaining gap fine-tuning closes.
    finetune_headroom: float = 0.6
    humaneval: float = 0.0      # published HumanEval Pass@1 (Exp-5 x-axis)
    # Economics (USD per 1k tokens) for API models; 0 for local models.
    input_cost_per_1k: float = 0.0
    output_cost_per_1k: float = 0.0
    # Efficiency model for locally-served models (Exp-7).
    base_latency_s: float = 0.2
    latency_per_billion_s: float = 0.55
    gpu_gb_per_billion: float = 7.0

    def capability(self, skill: str, finetune: FineTuneState | None = None,
                   domain: str | None = None) -> float:
        """Effective capability, with fine-tuning gains applied.

        Fine-tuning closes ``finetune_headroom * boost`` of the remaining
        gap to 1.0; code-pretrained models (higher ``humaneval``) convert
        tuning into larger gains (Finding 8) via a ±25% modulation.
        """
        base = getattr(self, skill)
        if finetune is None:
            return base
        code_factor = 0.75 + 0.5 * self.humaneval
        gain = (1.0 - base) * self.finetune_headroom * finetune.boost * code_factor
        if domain is not None:
            # In-domain training data is decisive (paper Finding 7): gains
            # shrink sharply out of domain and amplify in data-rich domains.
            gain *= 0.45 + 0.85 * finetune.domain_boost(domain)
        return min(base + gain, 0.995)

    @property
    def latency_per_sample_s(self) -> float:
        """Modelled inference latency for locally-served models (Exp-7)."""
        return self.base_latency_s + self.latency_per_billion_s * (
            self.params_billions ** 0.5
        )

    @property
    def gpu_memory_gb(self) -> float:
        """Modelled GPU memory footprint (Exp-7)."""
        return round(self.gpu_gb_per_billion * self.params_billions + 1.5, 2)
