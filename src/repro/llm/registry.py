"""Registry of calibrated model profiles.

Capability values are calibrated so that the method zoo's overall EX/EM on
the synthetic Spider-like benchmark lands near the paper's Tables 3–4
(see ``benchmarks/`` for the shape assertions).  HumanEval scores are the
published Pass@1 numbers the paper plots in Figure 11; API prices are the
June-2024 OpenAI sheet used in Exp-6 (GPT-4 is 60x/40x GPT-3.5 on
input/output tokens).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.llm.profile import ModelProfile

MODEL_REGISTRY: dict[str, ModelProfile] = {}


def _register(profile: ModelProfile) -> None:
    if profile.name in MODEL_REGISTRY:
        raise ModelError(f"duplicate model profile {profile.name!r}")
    MODEL_REGISTRY[profile.name] = profile


# -- API LLMs (prompt-only backbones) ---------------------------------------

_register(ModelProfile(
    name="gpt-4",
    family="gpt",
    params_billions=1760.0,
    api_only=True,
    reasoning=0.93,
    schema=0.85,
    precision=0.87,
    linguistic=0.95,
    humaneval=0.67,
    input_cost_per_1k=0.03,
    output_cost_per_1k=0.06,
))
_register(ModelProfile(
    name="gpt-3.5-turbo",
    family="gpt",
    params_billions=175.0,
    api_only=True,
    reasoning=0.77,
    schema=0.79,
    precision=0.83,
    linguistic=0.90,
    humaneval=0.48,
    input_cost_per_1k=0.0005,
    output_cost_per_1k=0.0015,
))

# -- Open-source LLMs (fine-tunable; CodeS bases are StarCoder-derived) ------

_register(ModelProfile(
    name="starcoder-1b",
    family="starcoder",
    params_billions=1.0,
    reasoning=0.40,
    schema=0.47,
    precision=0.52,
    linguistic=0.40,
    finetune_headroom=0.82,
    humaneval=0.15,
))
_register(ModelProfile(
    name="starcoder-3b",
    family="starcoder",
    params_billions=3.0,
    reasoning=0.49,
    schema=0.56,
    precision=0.61,
    linguistic=0.50,
    finetune_headroom=0.84,
    humaneval=0.21,
))
_register(ModelProfile(
    name="starcoder-7b",
    family="starcoder",
    params_billions=7.0,
    reasoning=0.52,
    schema=0.56,
    precision=0.59,
    linguistic=0.56,
    finetune_headroom=0.86,
    humaneval=0.28,
))
_register(ModelProfile(
    name="starcoder-15b",
    family="starcoder",
    params_billions=15.0,
    reasoning=0.54,
    schema=0.58,
    precision=0.61,
    linguistic=0.60,
    finetune_headroom=0.80,
    humaneval=0.33,
))
_register(ModelProfile(
    name="llama2-7b",
    family="llama",
    params_billions=7.0,
    reasoning=0.50,
    schema=0.52,
    precision=0.55,
    linguistic=0.62,
    finetune_headroom=0.72,
    humaneval=0.13,
))
_register(ModelProfile(
    name="llama3-8b",
    family="llama",
    params_billions=8.0,
    reasoning=0.58,
    schema=0.60,
    precision=0.62,
    linguistic=0.68,
    finetune_headroom=0.78,
    humaneval=0.33,
))
_register(ModelProfile(
    name="codellama-7b",
    family="llama",
    params_billions=7.0,
    reasoning=0.55,
    schema=0.60,
    precision=0.64,
    linguistic=0.58,
    finetune_headroom=0.80,
    humaneval=0.30,
))
_register(ModelProfile(
    name="deepseek-coder-7b",
    family="deepseek",
    params_billions=7.0,
    reasoning=0.60,
    schema=0.64,
    precision=0.68,
    linguistic=0.60,
    finetune_headroom=0.84,
    humaneval=0.46,
))

# -- PLMs (T5 family for RESDSQL/Graphix; BERT/BART for BRIDGE/RATSQL) --------

_register(ModelProfile(
    name="t5-base",
    family="t5",
    params_billions=0.22,
    reasoning=0.30,
    schema=0.40,
    precision=0.42,
    linguistic=0.35,
    finetune_headroom=0.86,
    humaneval=0.0,
    base_latency_s=0.55,
    latency_per_billion_s=0.78,
    gpu_gb_per_billion=8.0,
))
_register(ModelProfile(
    name="t5-large",
    family="t5",
    params_billions=0.77,
    reasoning=0.36,
    schema=0.46,
    precision=0.48,
    linguistic=0.40,
    finetune_headroom=0.87,
    humaneval=0.0,
    base_latency_s=0.55,
    latency_per_billion_s=0.95,
    gpu_gb_per_billion=8.5,
))
_register(ModelProfile(
    name="t5-3b",
    family="t5",
    params_billions=3.0,
    reasoning=0.44,
    schema=0.54,
    precision=0.55,
    linguistic=0.46,
    finetune_headroom=0.88,
    humaneval=0.0,
    base_latency_s=0.55,
    latency_per_billion_s=0.80,
    gpu_gb_per_billion=7.6,
))
_register(ModelProfile(
    name="bart-large",
    family="bart",
    params_billions=0.4,
    reasoning=0.32,
    schema=0.44,
    precision=0.45,
    linguistic=0.38,
    finetune_headroom=0.82,
    base_latency_s=0.5,
))
_register(ModelProfile(
    name="bert-large",
    family="bert",
    params_billions=0.34,
    reasoning=0.28,
    schema=0.42,
    precision=0.42,
    linguistic=0.36,
    finetune_headroom=0.80,
    base_latency_s=0.5,
))


def get_profile(name: str) -> ModelProfile:
    """Look up a profile by name."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError as exc:
        raise ModelError(f"unknown model {name!r}") from exc
