"""The generation error model.

Given the intent a model's NLU recovered, this module decides which
realistic mistakes the model makes while rendering SQL — dropped
subqueries, missed joins, near-miss columns, wrong literals, flipped
operators — with probabilities driven by the model's capability profile,
its fine-tuning state, and what the prompt contains.

Every mechanism maps to a paper finding:

* subquery drops scale with (1 - reasoning) → Finding 2;
* join errors scale with (1 - schema), are reduced by schema-linking
  prompts, and are *eliminated* by the NatSQL IR → Finding 4;
* value errors collapse when the prompt includes DB content samples
  (BRIDGE-style) → SuperSQL's design;
* everything shrinks with fine-tuning (Findings 1, 12) and with
  high-quality few-shot examples (DAIL-SQL's selection).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datagen.intents import (
    Aggregate,
    ColumnSel,
    Filter,
    IntentShape,
    OrderSpec,
    QueryIntent,
)
from repro.dbengine.database import Database
from repro.llm.profile import FineTuneState, ModelProfile
from repro.llm.prompt import PromptFeatures
from repro.nlu.linker import SchemaLinker
from repro.schema.model import DatabaseSchema

# Base rates: probability of each error class for a hypothetical
# zero-capability model with a bare prompt.  Effective rates multiply by
# (1 - relevant capability) and contextual modifiers.
BASE_RATES = {
    "drop_subquery": 0.85,
    "join_error": 0.75,
    "column_error": 0.52,
    "value_error": 0.60,
    "op_error": 0.24,
    "agg_error": 0.32,
    "connector_error": 0.38,
    "order_error": 0.33,
    "having_error": 0.45,
    "distinct_error": 0.22,
    "syntax_error": 0.30,
}


@dataclass
class CorruptionContext:
    """Everything the corruption sampler needs for one generation."""

    schema: DatabaseSchema
    database: Database | None
    profile: ModelProfile
    features: PromptFeatures
    finetune: FineTuneState | None = None
    domain: str | None = None
    temperature: float = 0.0
    uses_natsql: bool = False
    decomposed: bool = False     # multi-step staging (decompose/skeleton)
    overdecompose: bool = False  # DIN-style decomposition of simple questions
    errors: list[str] = field(default_factory=list)


def _cap(context: CorruptionContext, skill: str) -> float:
    return context.profile.capability(skill, context.finetune, context.domain)


def error_rates(context: CorruptionContext, intent: QueryIntent) -> dict[str, float]:
    """Effective per-class error probabilities for this generation."""
    reasoning = _cap(context, "reasoning")
    schema_skill = _cap(context, "schema")
    precision = _cap(context, "precision")

    features = context.features
    fewshot_relief = 1.0 - 0.45 * features.few_shot_quality
    temperature_penalty = 1.0 + 0.6 * context.temperature

    rates: dict[str, float] = {}

    subquery_rate = BASE_RATES["drop_subquery"] * (1.0 - reasoning)
    if context.decomposed:
        subquery_rate *= 0.55  # DIN-SQL's sub-question decomposition
    rates["drop_subquery"] = subquery_rate * fewshot_relief

    join_rate = BASE_RATES["join_error"] * (1.0 - schema_skill)
    if features.schema_tables is not None:
        join_rate *= 0.55  # pruned schema removes distractor tables
    if context.uses_natsql:
        join_rate = 0.0  # join path reconstructed from FKs at decode time
    rates["join_error"] = join_rate * fewshot_relief

    column_rate = BASE_RATES["column_error"] * (1.0 - schema_skill)
    if features.schema_tables is not None:
        column_rate *= 0.60
    rates["column_error"] = column_rate * fewshot_relief

    value_rate = BASE_RATES["value_error"] * (1.0 - precision)
    if features.db_content is not None:
        value_rate *= 0.22  # literal copied from the prompt's value samples
    rates["value_error"] = value_rate

    rates["op_error"] = BASE_RATES["op_error"] * (1.0 - precision)
    rates["agg_error"] = BASE_RATES["agg_error"] * (1.0 - precision) * fewshot_relief
    rates["connector_error"] = BASE_RATES["connector_error"] * (1.0 - precision)
    rates["order_error"] = BASE_RATES["order_error"] * (1.0 - precision) * fewshot_relief
    rates["having_error"] = BASE_RATES["having_error"] * (1.0 - reasoning)
    rates["distinct_error"] = BASE_RATES["distinct_error"] * (1.0 - precision)

    # Every additional clause is another chance to slip: value/operator
    # rates grow with the number of predicates, column rates with the
    # number of referenced columns.  This is what makes Extra-hard queries
    # genuinely harder than Easy ones (paper Tables 3-4 monotonicity).
    filter_sites = len(intent.filters)
    if intent.subquery is not None and intent.subquery.inner_filter is not None:
        filter_sites += 1
    if filter_sites > 1:
        growth = 1.0 + 0.40 * (filter_sites - 1)
        rates["value_error"] *= growth
        rates["op_error"] *= growth
    column_sites = (
        len(intent.projection)
        + len(intent.filters)
        + (1 if intent.group_by is not None else 0)
        + (1 if intent.agg_column is not None and not intent.agg_column.is_star else 0)
    )
    if column_sites > 1:
        rates["column_error"] *= 1.0 + 0.22 * (column_sites - 1)

    syntax_rate = BASE_RATES["syntax_error"] * (1.0 - precision)
    if not features.sql_style:
        syntax_rate *= 1.5
    rates["syntax_error"] = syntax_rate

    # Decomposition is a double-edged sword (paper Table 3: DIN-SQL wins
    # on Extra-hard but trails DAIL-SQL on Medium): splitting a simple
    # question into sub-problems introduces propagation errors.
    if context.overdecompose and intent.subquery is None and intent.set_op is None:
        rates["column_error"] += 0.040
        rates["value_error"] += 0.035

    # BIRD-style ambient difficulty: messier schemas and questions whose
    # answers need external knowledge.  All error classes inflate, and an
    # extra knowledge-gap channel opens that reasoning (GPT-4), in-context
    # examples (DAIL-SQL), and dataset fine-tuning (CodeS) each mitigate --
    # reproducing Table 4's ordering.
    ambient = context.schema.ambient_difficulty
    if ambient > 0:
        inflation = 1.0 + 0.55 * ambient
        rates = {name: rate * inflation for name, rate in rates.items()}
        # World knowledge comes from pre-training, not from NL2SQL pairs:
        # the gap scales with the backbone's *base* reasoning, while
        # dataset fine-tuning only relieves the dataset-specific part.
        base_reasoning = context.profile.reasoning
        knowledge = 0.60 * ambient * (1.0 - 0.45 * base_reasoning)
        knowledge *= 1.0 - 0.25 * features.few_shot_quality
        if context.finetune is not None:
            knowledge *= 1.0 - 0.55 * context.finetune.boost
        if intent.has_subquery:
            # BIRD's knowledge-heavy questions are typically the nested
            # ones (derived metrics, evidence-dependent conditions).
            knowledge *= 1.45
            rates["drop_subquery"] *= 1.35
        rates["knowledge_error"] = knowledge

    return {name: min(rate * temperature_penalty, 0.97) for name, rate in rates.items()}



class CorruptionSampler:
    """Applies sampled error classes to an intent."""

    def __init__(self, context: CorruptionContext, rng: random.Random) -> None:
        self.context = context
        self.rng = rng
        self.linker = SchemaLinker(context.schema)

    # -- helpers -----------------------------------------------------------

    def _distractor_column(self, sel: ColumnSel) -> ColumnSel:
        """A plausible near-miss: another column of the same table."""
        table = self.context.schema.table(sel.table)
        others = [c for c in table.columns if c.name.lower() != sel.column.lower()]
        if not others:
            return sel
        # Prefer a column of the same type (models confuse similar columns).
        try:
            original = table.column(sel.column)
            same_type = [c for c in others if c.col_type == original.col_type]
        except Exception:  # star column
            same_type = []
        pool = same_type or others
        choice = pool[self.rng.randrange(len(pool))]
        return ColumnSel(table=sel.table, column=choice.name)

    def _wrong_value(self, flt: Filter) -> object:
        database = self.context.database
        if database is not None and not flt.column.is_star:
            try:
                values = [
                    v
                    for v in database.column_values(flt.column.table, flt.column.column)
                    if v is not None and v != flt.value
                ]
            except Exception:
                values = []
            if values and isinstance(flt.value, str):
                return values[self.rng.randrange(len(values))]
        if isinstance(flt.value, (int, float)):
            delta = max(abs(float(flt.value)) * 0.1, 1.0)
            sign = 1 if self.rng.random() < 0.5 else -1
            perturbed = float(flt.value) + sign * delta
            return int(perturbed) if isinstance(flt.value, int) else round(perturbed, 2)
        if isinstance(flt.value, str) and flt.value:
            return flt.value[:-1] if len(flt.value) > 2 else flt.value + "x"
        return flt.value

    # -- corruption operators -----------------------------------------------

    def apply(self, intent: QueryIntent, rates: dict[str, float]) -> QueryIntent:
        """Sample error classes and apply the corresponding mutations."""
        for name, operator in (
            ("knowledge_error", self._corrupt_knowledge),
            ("drop_subquery", self._corrupt_subquery),
            ("join_error", self._corrupt_join),
            ("column_error", self._corrupt_column),
            ("value_error", self._corrupt_value),
            ("op_error", self._corrupt_op),
            ("agg_error", self._corrupt_agg),
            ("connector_error", self._corrupt_connector),
            ("order_error", self._corrupt_order),
            ("having_error", self._corrupt_having),
            ("distinct_error", self._corrupt_distinct),
        ):
            if self.rng.random() < rates.get(name, 0.0):
                mutated = operator(intent)
                if mutated is not None:
                    intent = mutated
                    self.context.errors.append(name)
        return intent

    def _corrupt_subquery(self, intent: QueryIntent) -> QueryIntent | None:
        if intent.subquery is None and intent.set_op is None:
            return None
        if intent.set_op is not None:
            # Model flattens the set operation into its first branch.
            return intent.with_(set_op=None, set_branch_filter=None,
                                shape=IntentShape.PROJECT)
        spec = intent.subquery
        assert spec is not None
        if spec.op == "in":
            # Model forgets the nesting (and the negation with it), keeping
            # only a bare projection of the outer table.
            return intent.with_(subquery=None, shape=IntentShape.PROJECT)
        # Comparison-to-aggregate collapses to a literal guess.
        guess: object = 0
        if self.context.database is not None:
            try:
                values = [
                    v
                    for v in self.context.database.column_values(
                        spec.outer_column.table, spec.outer_column.column
                    )
                    if isinstance(v, (int, float))
                ]
                if values:
                    guess = round(sum(values) / len(values) * (0.7 + 0.6 * self.rng.random()), 2)
            except Exception:
                pass
        literal_filter = Filter(column=spec.outer_column, op=spec.op if spec.op != "=" else ">",
                                value=guess)
        return intent.with_(
            subquery=None,
            filters=intent.filters + (literal_filter,),
            shape=IntentShape.PROJECT,
        )

    def _corrupt_knowledge(self, intent: QueryIntent) -> QueryIntent | None:
        """A BIRD-style knowledge gap: the model misreads what quantity or
        entity the question is really asking about."""
        mutated = self._corrupt_value(intent)
        if mutated is not None:
            return mutated
        return self._corrupt_column(intent)

    def _corrupt_join(self, intent: QueryIntent) -> QueryIntent | None:
        if len(intent.tables) < 2:
            return None
        keep = intent.tables[0]
        table = self.context.schema.table(keep)
        fallback_cols = [c for c in table.columns if not c.is_primary_key] or table.columns
        def _repoint(sel: ColumnSel) -> ColumnSel:
            if sel.table.lower() == keep.lower():
                return sel
            choice = fallback_cols[self.rng.randrange(len(fallback_cols))]
            return ColumnSel(table=keep, column=choice.name)
        projection = tuple(_repoint(sel) for sel in intent.projection)
        group_by = _repoint(intent.group_by) if intent.group_by else None
        agg_column = _repoint(intent.agg_column) if intent.agg_column else None
        filters = tuple(
            flt if flt.column.table.lower() == keep.lower() else None
            for flt in intent.filters
        )
        order = intent.order
        if order is not None and order.column.table.lower() != keep.lower():
            order = OrderSpec(
                column=_repoint(order.column),
                aggregate=order.aggregate,
                direction=order.direction,
                limit=order.limit,
            )
        return intent.with_(
            tables=(keep,),
            projection=projection,
            group_by=group_by,
            agg_column=agg_column,
            filters=tuple(f for f in filters if f is not None),
            order=order,
        )

    def _corrupt_column(self, intent: QueryIntent) -> QueryIntent | None:
        sites: list[str] = []
        if intent.projection:
            sites.append("projection")
        if intent.filters:
            sites.append("filter")
        if intent.agg_column is not None and not intent.agg_column.is_star:
            sites.append("agg")
        if intent.group_by is not None:
            sites.append("group")
        if not sites:
            return None
        site = sites[self.rng.randrange(len(sites))]
        if site == "projection":
            index = self.rng.randrange(len(intent.projection))
            sel = intent.projection[index]
            if sel.is_star:
                return None
            new_projection = list(intent.projection)
            new_projection[index] = self._distractor_column(sel)
            return intent.with_(projection=tuple(new_projection))
        if site == "filter":
            index = self.rng.randrange(len(intent.filters))
            flt = intent.filters[index]
            new_filters = list(intent.filters)
            new_filters[index] = Filter(
                column=self._distractor_column(flt.column),
                op=flt.op, value=flt.value, value2=flt.value2,
                connector=flt.connector,
            )
            return intent.with_(filters=tuple(new_filters))
        if site == "agg":
            assert intent.agg_column is not None
            return intent.with_(agg_column=self._distractor_column(intent.agg_column))
        assert intent.group_by is not None
        return intent.with_(group_by=self._distractor_column(intent.group_by))

    def _corrupt_value(self, intent: QueryIntent) -> QueryIntent | None:
        candidates = list(intent.filters)
        inner = intent.subquery.inner_filter if intent.subquery else None
        if not candidates and inner is None:
            return None
        if candidates and (inner is None or self.rng.random() < 0.7):
            index = self.rng.randrange(len(candidates))
            flt = candidates[index]
            new_filters = list(intent.filters)
            new_filters[index] = Filter(
                column=flt.column, op=flt.op, value=self._wrong_value(flt),
                value2=flt.value2, connector=flt.connector,
            )
            return intent.with_(filters=tuple(new_filters))
        assert inner is not None and intent.subquery is not None
        new_inner = Filter(
            column=inner.column, op=inner.op, value=self._wrong_value(inner),
            value2=inner.value2, connector=inner.connector,
        )
        from dataclasses import replace
        return intent.with_(subquery=replace(intent.subquery, inner_filter=new_inner))

    _OP_FLIPS = {">": ">=", ">=": ">", "<": "<=", "<=": "<", "=": "!=", "!=": "="}

    def _corrupt_op(self, intent: QueryIntent) -> QueryIntent | None:
        if not intent.filters:
            return None
        index = self.rng.randrange(len(intent.filters))
        flt = intent.filters[index]
        if flt.op not in self._OP_FLIPS:
            return None
        new_filters = list(intent.filters)
        new_filters[index] = Filter(
            column=flt.column, op=self._OP_FLIPS[flt.op], value=flt.value,
            value2=flt.value2, connector=flt.connector,
        )
        return intent.with_(filters=tuple(new_filters))

    _AGG_FLIPS = {
        Aggregate.AVG: Aggregate.SUM,
        Aggregate.SUM: Aggregate.AVG,
        Aggregate.MIN: Aggregate.MAX,
        Aggregate.MAX: Aggregate.MIN,
        Aggregate.COUNT: Aggregate.SUM,
    }

    def _corrupt_agg(self, intent: QueryIntent) -> QueryIntent | None:
        if intent.aggregate == Aggregate.NONE:
            return None
        flipped = self._AGG_FLIPS[intent.aggregate]
        if flipped == Aggregate.SUM and (
            intent.agg_column is None or intent.agg_column.is_star
        ):
            # SUM(*) is invalid; use a numeric column if one exists.
            table = self.context.schema.table(intent.tables[0])
            numerics = [c for c in table.columns if c.col_type.is_numeric and not c.is_primary_key]
            if not numerics:
                return None
            column = numerics[self.rng.randrange(len(numerics))]
            return intent.with_(
                aggregate=flipped,
                agg_column=ColumnSel(table=intent.tables[0], column=column.name),
            )
        return intent.with_(aggregate=flipped)

    def _corrupt_connector(self, intent: QueryIntent) -> QueryIntent | None:
        if len(intent.filters) < 2:
            return None
        index = self.rng.randrange(1, len(intent.filters))
        flt = intent.filters[index]
        new_filters = list(intent.filters)
        new_filters[index] = Filter(
            column=flt.column, op=flt.op, value=flt.value, value2=flt.value2,
            connector="or" if flt.connector == "and" else "and",
        )
        return intent.with_(filters=tuple(new_filters))

    def _corrupt_order(self, intent: QueryIntent) -> QueryIntent | None:
        if intent.order is None:
            return None
        order = intent.order
        if self.rng.random() < 0.5:
            flipped = OrderSpec(
                column=order.column, aggregate=order.aggregate,
                direction="asc" if order.direction == "desc" else "desc",
                limit=order.limit,
            )
            return intent.with_(order=flipped)
        if order.limit is not None:
            return intent.with_(order=OrderSpec(
                column=order.column, aggregate=order.aggregate,
                direction=order.direction, limit=None,
            ))
        return intent.with_(order=None)

    def _corrupt_having(self, intent: QueryIntent) -> QueryIntent | None:
        if intent.having is None:
            return None
        return intent.with_(having=None)

    def _corrupt_distinct(self, intent: QueryIntent) -> QueryIntent | None:
        if not intent.distinct:
            return None
        return intent.with_(distinct=False)
