"""Supervised fine-tuning as a capability update.

The paper's Exp-9 shows accuracy rising concavely with training-set size
and saturating around a few thousand samples; Exp-5 shows SFT gains
correlating with the base model's coding ability; Exp-4 shows fine-tuned
models winning in domains with many training databases.  All three are
functional relationships between training data and capability, which this
module reproduces with a saturating log-shaped boost plus per-domain
counts (the GPU fine-tuning runs themselves are the substitution — see
DESIGN.md §1).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.errors import ModelError
from repro.llm.profile import FineTuneState, ModelProfile

# Samples at which the boost reaches ~50% / ~90% of its ceiling.
_HALF_SATURATION = 300.0


def fine_tune_boost(num_samples: int) -> float:
    """Saturating gain in [0, 1) from ``num_samples`` training examples.

    A Michaelis-Menten-style curve: steep early gains, diminishing
    returns after a few thousand samples (paper Finding 12).
    """
    if num_samples <= 0:
        return 0.0
    curve = num_samples / (num_samples + _HALF_SATURATION)
    # Log-flavoured correction so 500 samples already help noticeably.
    log_part = math.log1p(num_samples) / math.log1p(30_000)
    return min(0.65 * curve + 0.35 * log_part, 0.99)


def make_finetune_state(
    profile: ModelProfile,
    dataset_name: str,
    examples: Iterable[object],
) -> FineTuneState:
    """Build a :class:`FineTuneState` from a train split.

    ``examples`` are benchmark :class:`~repro.datagen.benchmark.Example`
    objects (anything with ``domain`` and ``db_id`` attributes works).

    Raises:
        ModelError: if ``profile`` is an API-only model.
    """
    if profile.api_only:
        raise ModelError(f"{profile.name} is API-only and cannot be fine-tuned")
    examples = list(examples)
    domain_dbs: dict[str, set[str]] = {}
    for example in examples:
        domain_dbs.setdefault(example.domain, set()).add(example.db_id)
    return FineTuneState(
        dataset_name=dataset_name,
        num_samples=len(examples),
        boost=fine_tune_boost(len(examples)),
        domain_counts={domain: len(dbs) for domain, dbs in domain_dbs.items()},
        style_aligned=True,
    )
