"""Batched LM inference engine plumbing: prefix cache, batching switch.

This module is the infrastructure layer behind the batched generation
path (``SimulatedLanguageModel.generate_many``) and the prefix-cached
prompt builder (:func:`repro.modules.prompts.build_prompt`):

* :class:`PromptSegment` — one rendered prompt fragment paired with its
  token count, so whole-prompt accounting becomes a sum of cached
  per-segment counts instead of a fresh regex scan per example.  The
  approximate tokenizer (:func:`repro.llm.tokens.count_tokens`) never
  matches a token across whitespace, so segment counts are *exactly*
  additive as long as every segment boundary falls on whitespace — which
  :func:`repro.modules.prompts.build_prompt` guarantees (each cached
  segment ends with a newline).
* :class:`PromptPrefixCache` — a segment/radix cache over prompt
  construction.  Schema-DDL segments key on ``(db_id, data_version,
  pruned tables, value-comment content)``; few-shot blocks key on
  ``(strategy, k, selected examples)``; instruction overhead keys on its
  token budget.  All questions against the same database share one
  rendered (and token-counted) DDL segment, exactly like the prefix/
  radix KV caches of real inference servers share the prompt prefix.
* a process-global **batching switch** — :func:`batching_enabled`,
  :func:`set_batching_enabled`, and the :func:`batching_disabled`
  context manager — mirroring ``caches_disabled()`` /
  ``pooling_disabled()``.  The switch gates only *how* draws are
  executed (batched vs one ``generate`` call per draw); results are
  bit-identical either way, which ``tests/test_llm_engine.py`` asserts
  across every decoder and execution mode.
* a thread-local **decode window** registry — the hook through which
  :class:`repro.serve.scheduler.DecodeScheduler` observes (and
  accounts) the batched decode calls a ``(method, db_id)`` micro-batch
  submits, without ``repro.llm`` ever importing ``repro.serve``.

Thread/process safety: the prefix cache wraps thread-safe
:class:`~repro.utils.cache.LRUCache` instances and may be shared across
threads; it does not cross process boundaries (worker processes build
their own lazily).  The batching switch is process-global like the memo
and pooling switches; spawn-context workers must receive it explicitly
(see the gateway handshake and ``repro.core.parallel``).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Hashable

from repro.llm.tokens import count_tokens
from repro.utils.cache import LRUCache, caches_enabled


@dataclass(frozen=True)
class PromptSegment:
    """One rendered prompt fragment with its (exact) token count."""

    text: str
    tokens: int

    @classmethod
    def render(cls, text: str) -> "PromptSegment":
        return cls(text=text, tokens=count_tokens(text))


#: Segment kinds the cache partitions by (each gets its own LRU, so a
#: burst of distinct few-shot selections cannot evict schema DDL).
SEGMENT_KINDS = ("overhead", "schema", "fewshot")


class PromptPrefixCache:
    """Segment cache over prompt construction (prefix/radix-cache style).

    ``segment(kind, key, render)`` returns the cached
    :class:`PromptSegment` for ``(kind, key)`` or renders, counts, and
    stores it.  Lookups and stores are gated by the process-global memo
    switch (:func:`repro.utils.cache.caches_enabled`): with caches off
    every call renders fresh, so cached and uncached prompt construction
    stay bit-identical — the cache only ever reuses byte-equal text.
    """

    def __init__(self, maxsize: int = 2048) -> None:
        self._caches = {kind: LRUCache(maxsize=maxsize) for kind in SEGMENT_KINDS}

    def segment(
        self, kind: str, key: Hashable, render: Callable[[], str]
    ) -> tuple[PromptSegment, bool]:
        """Return ``(segment, hit)`` for ``(kind, key)``."""
        cache = self._caches[kind]
        if not caches_enabled():
            return PromptSegment.render(render()), False
        hit, value = cache.lookup(key)
        if hit:
            return value, True
        segment = PromptSegment.render(render())
        cache.put(key, segment)
        return segment, False

    def clear(self) -> None:
        for cache in self._caches.values():
            cache.clear()

    def stats(self) -> dict[str, dict[str, int]]:
        """Deterministic per-kind counter snapshot."""
        return {
            kind: {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "entries": len(cache),
            }
            for kind, cache in self._caches.items()
        }


# One cache per process, shared by every method and serving engine:
# prefix reuse across methods on the same database is the point.
_PREFIX_CACHE = PromptPrefixCache()


def prefix_cache() -> PromptPrefixCache:
    """The process-global prompt prefix cache."""
    return _PREFIX_CACHE


def clear_prefix_cache() -> None:
    """Drop every cached segment (tests and long-lived servers)."""
    _PREFIX_CACHE.clear()


# -- batching switch ------------------------------------------------------

_BATCHING_ENABLED = True


def batching_enabled() -> bool:
    """True while the batched decode path is active (the default)."""
    return _BATCHING_ENABLED


def set_batching_enabled(enabled: bool) -> None:
    """Globally enable/disable batched generation."""
    global _BATCHING_ENABLED
    _BATCHING_ENABLED = bool(enabled)


@contextmanager
def batching_disabled() -> Iterator[None]:
    """Scoped bypass of the batched decode path (equivalence tests)."""
    previous = _BATCHING_ENABLED
    set_batching_enabled(False)
    try:
        yield
    finally:
        set_batching_enabled(previous)


# -- decode window registry ----------------------------------------------

# The serving scheduler installs a window object around each micro-batch
# so member requests' batched decode calls flow through one shared
# accounting context (continuous batching across requests).  Windows are
# thread-local: each serve worker thread runs one micro-batch at a time.
_WINDOW_TLS = threading.local()


def current_decode_window():
    """The decode window installed on this thread, or ``None``."""
    return getattr(_WINDOW_TLS, "window", None)


@contextmanager
def decode_window(window) -> Iterator[None]:
    """Install ``window`` as this thread's decode window for the scope.

    ``window`` must expose ``submit(sampler, draws)`` returning the
    candidate list (see :class:`repro.serve.scheduler.DecodeScheduler`).
    """
    previous = current_decode_window()
    _WINDOW_TLS.window = window
    try:
        yield
    finally:
        _WINDOW_TLS.window = previous
