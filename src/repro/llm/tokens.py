"""Approximate BPE token counting.

Real GPT tokenizers average ~4 characters per token on English/SQL text;
we approximate with a word-piece heuristic (identifiers and words split
into 4-char pieces, punctuation one token each).  The Exp-6 economy
numbers need only consistent relative counts across prompt styles.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]")


def count_tokens(text: str) -> int:
    """Estimate the number of BPE tokens in ``text``."""
    total = 0
    for match in _TOKEN_RE.finditer(text):
        piece = match.group(0)
        if piece.isalnum() or "_" in piece:
            total += max(1, (len(piece) + 3) // 4)
        else:
            total += 1
    return total
