"""Decoding strategies over the simulated model.

* :class:`GreedyDecoder` — one deterministic completion (the OpenAI-API
  behaviour of the prompt-based methods).
* :class:`BeamDecoder` — several candidates; downstream modules pick
  (execution-guided selection, N-best reranking).
* :class:`PicardDecoder` — beam constrained by the PICARD validity gate:
  only parseable, schema-consistent candidates survive; if every entry is
  rejected, decoding degenerates to a guaranteed-valid fallback, exactly
  like PICARD's grammar forcing.
* :class:`SamplingDecoder` — temperature sampling for self-consistency.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.dbengine.database import Database
from repro.llm.model import GenerationCandidate, SimulatedLanguageModel
from repro.llm.prompt import Prompt
from repro.sqlkit.picard import PicardChecker

# A sampler closure: (draw index, temperature) -> candidate.
SampleFn = Callable[[int, float], GenerationCandidate]


def make_sampler(
    model: SimulatedLanguageModel,
    prompt: Prompt,
    database: Database,
    uses_natsql: bool = False,
    decomposed: bool = False,
    overdecompose: bool = False,
    style_divergence: float = 0.0,
) -> SampleFn:
    """Bind a model+prompt into a (draw, temperature) -> candidate closure."""

    def sample(draw: int, temperature: float) -> GenerationCandidate:
        return model.generate(
            prompt,
            database,
            temperature=temperature,
            draw=draw,
            uses_natsql=uses_natsql,
            decomposed=decomposed,
            overdecompose=overdecompose,
            style_divergence=style_divergence,
        )

    return sample


@dataclass(frozen=True)
class GreedyDecoder:
    """Single deterministic completion."""

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return [sample(0, 0.0)]


@dataclass(frozen=True)
class BeamDecoder:
    """``width`` candidates; the first is the greedy completion."""

    width: int = 4

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return [sample(draw, 0.0 if draw == 0 else 0.15) for draw in range(self.width)]


@dataclass(frozen=True)
class PicardDecoder:
    """Beam decoding under the PICARD validity gate.

    Candidates that fail to parse or reference unknown schema elements are
    rejected and re-drawn (up to ``max_attempts``); PICARD's guarantee —
    output always valid — is preserved by the fallback.
    """

    width: int = 4
    max_attempts: int = 10

    def decode(
        self, sample: SampleFn, checker: PicardChecker
    ) -> list[GenerationCandidate]:
        accepted: list[GenerationCandidate] = []
        seen: set[str] = set()
        draw = 0
        while len(accepted) < self.width and draw < self.max_attempts:
            candidate = sample(draw, 0.0 if draw == 0 else 0.15)
            draw += 1
            # Attempts are spent on distinct candidates: re-drawing the
            # identical SQL (accepted or rejected) cannot change the gate's
            # verdict, so duplicates are skipped instead of re-checked.
            if candidate.sql in seen:
                continue
            seen.add(candidate.sql)
            if checker.accepts(candidate.sql):
                accepted.append(candidate)
        if not accepted:
            fallback_table = (
                checker.schema.tables[0].name if checker.schema else "sqlite_master"
            )
            sql = f"SELECT * FROM {fallback_table}"
            accepted.append(
                GenerationCandidate(
                    sql=sql, output_tokens=4, errors=("picard_fallback",)
                )
            )
        return accepted


@dataclass(frozen=True)
class SamplingDecoder:
    """``num_samples`` stochastic completions for self-consistency voting."""

    num_samples: int = 5
    temperature: float = 0.5

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return [sample(draw, self.temperature) for draw in range(self.num_samples)]
