"""Decoding strategies over the simulated model.

* :class:`GreedyDecoder` — one deterministic completion (the OpenAI-API
  behaviour of the prompt-based methods).
* :class:`BeamDecoder` — several candidates; downstream modules pick
  (execution-guided selection, N-best reranking).
* :class:`PicardDecoder` — beam constrained by the PICARD validity gate:
  only parseable, schema-consistent candidates survive; if every entry is
  rejected, decoding degenerates to a guaranteed-valid fallback, exactly
  like PICARD's grammar forcing.
* :class:`SamplingDecoder` — temperature sampling for self-consistency.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.dbengine.database import Database
from repro.llm.model import GenerationCandidate, SimulatedLanguageModel
from repro.llm.prompt import Prompt
from repro.sqlkit.picard import PicardChecker

# A sampler closure: (draw index, temperature) -> candidate.
SampleFn = Callable[[int, float], GenerationCandidate]


def make_sampler(
    model: SimulatedLanguageModel,
    prompt: Prompt,
    database: Database,
    uses_natsql: bool = False,
    decomposed: bool = False,
    overdecompose: bool = False,
    style_divergence: float = 0.0,
) -> SampleFn:
    """Bind a model+prompt into a (draw, temperature) -> candidate closure."""

    def sample(draw: int, temperature: float) -> GenerationCandidate:
        return model.generate(
            prompt,
            database,
            temperature=temperature,
            draw=draw,
            uses_natsql=uses_natsql,
            decomposed=decomposed,
            overdecompose=overdecompose,
            style_divergence=style_divergence,
        )

    return sample


@dataclass(frozen=True)
class GreedyDecoder:
    """Single deterministic completion."""

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return [sample(0, 0.0)]


@dataclass(frozen=True)
class BeamDecoder:
    """``width`` candidates; the first is the greedy completion."""

    width: int = 4

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return [sample(draw, 0.0 if draw == 0 else 0.15) for draw in range(self.width)]


@dataclass(frozen=True)
class PicardDecoder:
    """Beam decoding under the PICARD validity gate.

    Candidates that fail to parse or reference unknown schema elements are
    rejected and re-drawn (up to ``max_attempts``); PICARD's guarantee —
    output always valid — is preserved by the fallback.

    The gate's verdict for a given SQL string cannot change between
    draws, so verdicts are memoized locally and each distinct candidate
    is checked once.  Beam *composition* is untouched: re-drawn accepted
    duplicates still fill beam slots (they act as self-consistency votes
    downstream) and rejected duplicates still consume attempts, exactly
    as in unmemoized decoding.  ``distinct=True`` opts into skipping
    duplicates entirely so attempts are spent on distinct candidates —
    that changes beam composition and therefore downstream selection, so
    it is off by default and unused by the reproduced method configs.
    """

    width: int = 4
    max_attempts: int = 10
    distinct: bool = False

    def decode(
        self, sample: SampleFn, checker: PicardChecker
    ) -> list[GenerationCandidate]:
        accepted: list[GenerationCandidate] = []
        verdicts: dict[str, bool] = {}
        draw = 0
        while len(accepted) < self.width and draw < self.max_attempts:
            candidate = sample(draw, 0.0 if draw == 0 else 0.15)
            draw += 1
            verdict = verdicts.get(candidate.sql)
            if verdict is None:
                verdict = checker.accepts(candidate.sql)
                verdicts[candidate.sql] = verdict
            elif self.distinct:
                continue
            if verdict:
                accepted.append(candidate)
        if not accepted:
            fallback_table = (
                checker.schema.tables[0].name if checker.schema else "sqlite_master"
            )
            sql = f"SELECT * FROM {fallback_table}"
            accepted.append(
                GenerationCandidate(
                    sql=sql, output_tokens=4, errors=("picard_fallback",)
                )
            )
        return accepted


@dataclass(frozen=True)
class SamplingDecoder:
    """``num_samples`` stochastic completions for self-consistency voting."""

    num_samples: int = 5
    temperature: float = 0.5

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return [sample(draw, self.temperature) for draw in range(self.num_samples)]
