"""Decoding strategies over the simulated model.

* :class:`GreedyDecoder` — one deterministic completion (the OpenAI-API
  behaviour of the prompt-based methods).
* :class:`BeamDecoder` — several candidates; downstream modules pick
  (execution-guided selection, N-best reranking).
* :class:`PicardDecoder` — beam constrained by the PICARD validity gate:
  only parseable, schema-consistent candidates survive; if every entry is
  rejected, decoding degenerates to a guaranteed-valid fallback, exactly
  like PICARD's grammar forcing.
* :class:`SamplingDecoder` — temperature sampling for self-consistency.

Decoders draw through a sampler bound by :func:`make_sampler`.  The
bound sampler is callable as ``(draw, temperature) -> candidate`` (the
historical closure contract, still used by the repair engine and
self-correction) and additionally exposes :meth:`BoundSampler.many`,
which routes a whole batch of draws through the model's batched
``generate_many`` path — bit-identical to per-draw calls, draw-invariant
work hoisted once.  ``many`` falls back to sequential per-draw calls
when batching is globally disabled
(:func:`repro.llm.engine.batching_disabled`), and reports through the
ambient decode window when one is installed (the serving scheduler's
continuous-batching hook).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.dbengine.database import Database
from repro.llm.engine import batching_enabled, current_decode_window
from repro.llm.model import GenerationCandidate, SimulatedLanguageModel
from repro.llm.prompt import Prompt
from repro.llm.tokens import count_tokens
from repro.sqlkit.picard import PicardChecker

# A sampler: (draw index, temperature) -> candidate.
SampleFn = Callable[[int, float], GenerationCandidate]


class BoundSampler:
    """A model+prompt bound into a sampler with a batched ``many`` path."""

    __slots__ = ("model", "prompt", "database", "_options")

    def __init__(
        self,
        model: SimulatedLanguageModel,
        prompt: Prompt,
        database: Database,
        uses_natsql: bool = False,
        decomposed: bool = False,
        overdecompose: bool = False,
        style_divergence: float = 0.0,
    ) -> None:
        self.model = model
        self.prompt = prompt
        self.database = database
        self._options = {
            "uses_natsql": uses_natsql,
            "decomposed": decomposed,
            "overdecompose": overdecompose,
            "style_divergence": style_divergence,
        }

    def __call__(self, draw: int, temperature: float) -> GenerationCandidate:
        return self.model.generate(
            self.prompt,
            self.database,
            temperature=temperature,
            draw=draw,
            **self._options,
        )

    def generate_batch(
        self, draws: list[tuple[int, float]]
    ) -> list[GenerationCandidate]:
        """Run ``draws`` through the batched model path (no window/switch)."""
        return self.model.generate_many(
            self.prompt, self.database, list(draws), **self._options
        )

    def many(self, draws: list[tuple[int, float]]) -> list[GenerationCandidate]:
        """Candidates for ``draws``, batched when batching is enabled.

        With batching disabled this is exactly the sequential per-draw
        loop; with it enabled the batch runs through ``generate_many``
        (and through the ambient decode window, when the serving
        scheduler has installed one) — both paths produce bit-identical
        candidates.
        """
        if not batching_enabled():
            return [self(draw, temperature) for draw, temperature in draws]
        window = current_decode_window()
        if window is not None:
            return window.submit(self, list(draws))
        return self.generate_batch(list(draws))


def make_sampler(
    model: SimulatedLanguageModel,
    prompt: Prompt,
    database: Database,
    uses_natsql: bool = False,
    decomposed: bool = False,
    overdecompose: bool = False,
    style_divergence: float = 0.0,
) -> BoundSampler:
    """Bind a model+prompt into a (draw, temperature) -> candidate sampler."""
    return BoundSampler(
        model,
        prompt,
        database,
        uses_natsql=uses_natsql,
        decomposed=decomposed,
        overdecompose=overdecompose,
        style_divergence=style_divergence,
    )


def _draw_many(
    sample: SampleFn, draws: list[tuple[int, float]]
) -> list[GenerationCandidate]:
    """Batch through ``sample.many`` when available, else draw singly.

    Plain-function samplers (tests, custom harnesses) keep working: only
    a :class:`BoundSampler` carries the batched path.
    """
    many = getattr(sample, "many", None)
    if many is not None:
        return many(draws)
    return [sample(draw, temperature) for draw, temperature in draws]


@dataclass(frozen=True)
class GreedyDecoder:
    """Single deterministic completion."""

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return _draw_many(sample, [(0, 0.0)])


@dataclass(frozen=True)
class BeamDecoder:
    """``width`` candidates; the first is the greedy completion."""

    width: int = 4

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return _draw_many(
            sample,
            [(draw, 0.0 if draw == 0 else 0.15) for draw in range(self.width)],
        )


@dataclass(frozen=True)
class PicardDecoder:
    """Beam decoding under the PICARD validity gate.

    Candidates that fail to parse or reference unknown schema elements are
    rejected and re-drawn (up to ``max_attempts``); PICARD's guarantee —
    output always valid — is preserved by the fallback.

    The gate's verdict for a given SQL string cannot change between
    draws, so verdicts are memoized locally and each distinct candidate
    is checked once.  Beam *composition* is untouched: re-drawn accepted
    duplicates still fill beam slots (they act as self-consistency votes
    downstream) and rejected duplicates still consume attempts, exactly
    as in unmemoized decoding.  ``distinct=True`` opts into skipping
    duplicates entirely so attempts are spent on distinct candidates —
    that changes beam composition and therefore downstream selection, so
    it is off by default and unused by the reproduced method configs.

    Batching: the attempt loop always consumes at least
    ``min(width, max_attempts)`` draws before it can stop (the beam
    cannot fill sooner), so that window is pre-drawn through the batched
    path and checked in order; any re-draws past it are topped up singly
    to preserve exact attempt accounting.
    """

    width: int = 4
    max_attempts: int = 10
    distinct: bool = False

    def decode(
        self, sample: SampleFn, checker: PicardChecker
    ) -> list[GenerationCandidate]:
        accepted: list[GenerationCandidate] = []
        verdicts: dict[str, bool] = {}
        prefetch = _draw_many(
            sample,
            [
                (draw, 0.0 if draw == 0 else 0.15)
                for draw in range(min(self.width, self.max_attempts))
            ],
        )
        draw = 0
        while len(accepted) < self.width and draw < self.max_attempts:
            if draw < len(prefetch):
                candidate = prefetch[draw]
            else:
                candidate = sample(draw, 0.0 if draw == 0 else 0.15)
            draw += 1
            verdict = verdicts.get(candidate.sql)
            if verdict is None:
                verdict = checker.accepts(candidate.sql)
                verdicts[candidate.sql] = verdict
            elif self.distinct:
                continue
            if verdict:
                accepted.append(candidate)
        if not accepted:
            fallback_table = (
                checker.schema.tables[0].name if checker.schema else "sqlite_master"
            )
            sql = f"SELECT * FROM {fallback_table}"
            accepted.append(
                GenerationCandidate(
                    sql=sql,
                    output_tokens=count_tokens(sql),
                    errors=("picard_fallback",),
                )
            )
        return accepted


@dataclass(frozen=True)
class SamplingDecoder:
    """``num_samples`` stochastic completions for self-consistency voting."""

    num_samples: int = 5
    temperature: float = 0.5

    def decode(self, sample: SampleFn) -> list[GenerationCandidate]:
        return _draw_many(
            sample,
            [(draw, self.temperature) for draw in range(self.num_samples)],
        )
