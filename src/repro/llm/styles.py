"""Execution-equivalent SQL style variants.

Different models phrase the same semantics differently: ``COUNT(*)`` vs
``COUNT(pk)``, ``BETWEEN`` vs a range conjunction, ``IN (subquery)`` vs
a correlated ``EXISTS``, ``INTERSECT`` vs ``AND`` with ``DISTINCT``, a
``MAX`` subquery vs ``ORDER BY ... LIMIT 1``.  These choices leave the
result set (EX) intact while breaking Exact Match (EM) — which is why the
paper finds prompt-based LLMs losing heavily on EM while staying
competitive on EX (Finding 1).  Fine-tuning aligns a model's style with
the dataset's, collapsing this divergence.
"""

from __future__ import annotations

import random
from contextvars import ContextVar
from dataclasses import dataclass

from repro.datagen.intents import Aggregate, IntentShape, OrderSpec, QueryIntent
from repro.datagen.sql_render import build_statement
from repro.schema.model import DatabaseSchema
from repro.sqlkit.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InExpr,
    NotExpr,
    SelectStatement,
    Star,
    Subquery,
)
from repro.sqlkit.printer import to_sql


@dataclass(frozen=True)
class StyleChoices:
    """Which equivalent renderings to use (all False = canonical style)."""

    count_pk: bool = False          # COUNT(pk) instead of COUNT(*)
    count_one: bool = False         # COUNT(1) instead of COUNT(*)
    range_for_between: bool = False  # col >= a AND col <= b
    exists_for_in: bool = False     # EXISTS (...) instead of IN (...)
    connector_for_setop: bool = False  # WHERE f1 AND/OR f2 + DISTINCT
    orderlimit_for_extreme: bool = False  # ORDER BY col LIMIT 1
    like_for_eq: bool = False       # text = 'v'  ->  text LIKE 'v'
    shifted_int_threshold: bool = False  # x > 5 -> x >= 6 (integers only)
    expand_star: bool = False       # SELECT * -> explicit column list
    gratuitous_order_by: bool = False  # append ORDER BY when gold has none

    @property
    def any_divergent(self) -> bool:
        return any(
            (self.count_pk, self.count_one, self.range_for_between,
             self.exists_for_in, self.connector_for_setop,
             self.orderlimit_for_extreme, self.like_for_eq,
             self.shifted_int_threshold, self.expand_star)
        )


def sample_style(rng: random.Random, divergence: float) -> StyleChoices:
    """Sample style choices; each site diverges with prob ``divergence``."""
    count_divergent = rng.random() < divergence
    count_pk = count_divergent and rng.random() < 0.5
    return StyleChoices(
        count_pk=count_pk,
        count_one=count_divergent and not count_pk,
        range_for_between=rng.random() < divergence,
        exists_for_in=rng.random() < divergence,
        connector_for_setop=rng.random() < divergence,
        orderlimit_for_extreme=rng.random() < divergence,
        like_for_eq=rng.random() < divergence * 0.7,
        shifted_int_threshold=rng.random() < divergence * 0.8,
        expand_star=rng.random() < divergence,
        gratuitous_order_by=rng.random() < divergence * 0.8,
    )


# Schema in effect during render_with_style (used by type-dependent styles).
_STYLE_SCHEMA: ContextVar[DatabaseSchema | None] = ContextVar(
    "style_schema", default=None
)


def _is_real_column(sel, intent: QueryIntent, schema: DatabaseSchema | None) -> bool:
    """True only for REAL-typed columns, where MAX/MIN ties are unlikely.

    The ORDER BY ... LIMIT 1 rendering of an extreme query diverges from
    the MAX/MIN-subquery form whenever the extreme value is tied; integer
    columns tie routinely, so the transform is restricted to REAL ones.
    REAL columns can still tie (values round to two decimals), so the
    transform remains probabilistically — not universally — EX-preserving;
    the style-equivalence property test tolerates that exact residual.
    """
    from repro.schema.model import ColumnType
    if schema is None or sel.is_star:
        return False
    try:
        column = schema.table(sel.table).column(sel.column)
    except Exception:
        return False
    return column.col_type == ColumnType.REAL


def _intent_with_style(intent: QueryIntent, style: StyleChoices) -> QueryIntent:
    """Intent-level rewrites (set-op flattening, extreme as order/limit)."""
    if (
        style.connector_for_setop
        and intent.set_op == "union"
        and intent.set_branch_filter
    ):
        # Only UNION flattens safely: the set union of the two branches'
        # projections equals SELECT DISTINCT ... WHERE f1 OR f2.
        # INTERSECT/EXCEPT operate on projected values across *different*
        # rows, which AND / AND NOT cannot express, so those keep their
        # set-operation form.
        branch = intent.set_branch_filter
        new_filter = type(branch)(
            column=branch.column, op=branch.op, value=branch.value,
            value2=branch.value2, connector="or",
        )
        return intent.with_(
            set_op=None,
            set_branch_filter=None,
            filters=intent.filters + (new_filter,),
            distinct=True,
        )
    if (
        style.orderlimit_for_extreme
        and intent.shape == IntentShape.EXTREME
        and intent.subquery is not None
        and intent.subquery.aggregate in (Aggregate.MAX, Aggregate.MIN)
        and _is_real_column(intent.subquery.outer_column, intent, _STYLE_SCHEMA.get())
    ):
        direction = "desc" if intent.subquery.aggregate == Aggregate.MAX else "asc"
        return intent.with_(
            subquery=None,
            order=OrderSpec(
                column=intent.subquery.outer_column, direction=direction, limit=1
            ),
            shape=IntentShape.ORDER_TOP,
        )
    return intent


def _is_integer_column(expr: Expr, statement: SelectStatement,
                       schema: DatabaseSchema) -> bool:
    """True if ``expr`` is a column reference with INTEGER type."""
    from repro.schema.model import ColumnType
    if not isinstance(expr, ColumnRef):
        return False
    if statement.from_clause is None:
        return False
    bindings = {t.binding.lower(): t.name for t in statement.from_clause.tables}
    table_name = (
        bindings.get(expr.table.lower(), expr.table)
        if expr.table
        else statement.from_clause.base.name
    )
    try:
        column = schema.table(table_name).column(expr.column)
    except Exception:
        return False
    return column.col_type == ColumnType.INTEGER


def _rewrite_expr(expr: Expr, statement: SelectStatement, style: StyleChoices,
                  schema: DatabaseSchema) -> Expr:
    if isinstance(expr, BooleanOp):
        expr.operands = [
            _rewrite_expr(op, statement, style, schema) for op in expr.operands
        ]
        return expr
    if isinstance(expr, NotExpr):
        expr.operand = _rewrite_expr(expr.operand, statement, style, schema)
        return expr
    if style.like_for_eq and isinstance(expr, BinaryOp) and expr.op == "=":
        from repro.sqlkit.ast_nodes import LikeExpr, Literal
        right = expr.right
        if (
            isinstance(right, Literal)
            and isinstance(right.value, str)
            and not any(ch in right.value for ch in _HAS_WILDCARD)
        ):
            return LikeExpr(operand=expr.left, pattern=right)
    if style.shifted_int_threshold and isinstance(expr, BinaryOp) and expr.op in (">", "<"):
        from repro.sqlkit.ast_nodes import Literal
        right = expr.right
        if (
            isinstance(right, Literal)
            and type(right.value) is int
            and _is_integer_column(expr.left, statement, schema)
        ):
            # Safe only on integer-typed columns: x > 5 === x >= 6.
            if expr.op == ">":
                return BinaryOp(op=">=", left=expr.left, right=Literal(value=right.value + 1))
            return BinaryOp(op="<=", left=expr.left, right=Literal(value=right.value - 1))
    if style.range_for_between and isinstance(expr, BetweenExpr) and not expr.negated:
        return BooleanOp(op="and", operands=[
            BinaryOp(op=">=", left=expr.operand, right=expr.low),
            BinaryOp(op="<=", left=expr.operand, right=expr.high),
        ])
    if style.exists_for_in and isinstance(expr, InExpr) and expr.subquery is not None:
        inner = expr.subquery.select
        if inner.select_items and isinstance(inner.select_items[0].expr, ColumnRef):
            inner_col = inner.select_items[0].expr
            outer_operand = expr.operand
            if isinstance(outer_operand, ColumnRef) and outer_operand.table is None:
                # Qualify the outer column explicitly so the correlated
                # predicate cannot capture a same-named inner column.
                outer_table = (
                    statement.from_clause.base.binding
                    if statement.from_clause is not None
                    else None
                )
                outer_operand = ColumnRef(column=outer_operand.column, table=outer_table)
            correlation = BinaryOp(op="=", left=ColumnRef(
                column=inner_col.column,
                table=inner.from_clause.base.name if inner.from_clause else None,
            ), right=outer_operand)
            new_inner = SelectStatement(
                select_items=[type(inner.select_items[0])(expr=Star())],
                from_clause=inner.from_clause,
                where=(
                    BooleanOp(op="and", operands=[inner.where, correlation])
                    if inner.where is not None
                    else correlation
                ),
            )
            return Exists(subquery=Subquery(select=new_inner), negated=expr.negated)
    return expr


def _count_star_replacement(
    statement: SelectStatement, style: StyleChoices, schema: DatabaseSchema
) -> Expr | None:
    """The expression COUNT(*)'s argument becomes under the chosen style."""
    if style.count_one:
        from repro.sqlkit.ast_nodes import Literal
        return Literal(value=1)
    if style.count_pk and statement.from_clause is not None:
        base = statement.from_clause.base
        try:
            pk_columns = schema.table(base.name).primary_key_columns
        except Exception:
            pk_columns = []
        if pk_columns:
            return ColumnRef(column=pk_columns[0].name, table=base.alias or None)
    return None


def _rewrite_counts(statement: SelectStatement, style: StyleChoices,
                    schema: DatabaseSchema) -> None:
    replacement = _count_star_replacement(statement, style, schema)
    if replacement is None:
        return
    exprs: list[Expr] = [item.expr for item in statement.select_items]
    if statement.having is not None:
        exprs.append(statement.having)
    exprs.extend(item.expr for item in statement.order_by)
    for root in exprs:
        for expr in root.walk():
            if (
                isinstance(expr, FuncCall)
                and expr.name == "count"
                and expr.args
                and isinstance(expr.args[0], Star)
                and not expr.distinct
            ):
                import copy
                expr.args[0] = copy.deepcopy(replacement)


def _expand_star(statement: SelectStatement, schema: DatabaseSchema) -> None:
    from_clause = statement.from_clause
    if from_clause is None or from_clause.joins:
        return
    try:
        columns = schema.table(from_clause.base.name).columns
    except Exception:
        return
    from repro.sqlkit.ast_nodes import SelectItem
    new_items: list[SelectItem] = []
    for item in statement.select_items:
        if isinstance(item.expr, Star) and item.expr.table is None:
            new_items.extend(
                SelectItem(expr=ColumnRef(column=column.name)) for column in columns
            )
        else:
            new_items.append(item)
    statement.select_items = new_items


_HAS_WILDCARD = ("%", "_")


def _add_gratuitous_order(statement: SelectStatement) -> None:
    """Sort by the first plain projected column (result multiset unchanged)."""
    from repro.sqlkit.ast_nodes import OrderItem
    import copy
    if statement.order_by or statement.limit is not None:
        return
    if statement.set_operation is not None:
        return
    for item in statement.select_items:
        if isinstance(item.expr, ColumnRef):
            statement.order_by = [OrderItem(expr=copy.deepcopy(item.expr))]
            return


def _rewrite_statement(statement: SelectStatement, style: StyleChoices,
                       schema: DatabaseSchema) -> SelectStatement:
    _rewrite_counts(statement, style, schema)
    if style.expand_star:
        _expand_star(statement, schema)
    if statement.where is not None:
        statement.where = _rewrite_expr(statement.where, statement, style, schema)
    if statement.having is not None:
        statement.having = _rewrite_expr(statement.having, statement, style, schema)
    if style.gratuitous_order_by:
        _add_gratuitous_order(statement)
    return statement


def render_with_style(
    intent: QueryIntent, schema: DatabaseSchema, style: StyleChoices
) -> str:
    """Render ``intent`` to SQL using the given style choices."""
    token = _STYLE_SCHEMA.set(schema)
    try:
        styled_intent = _intent_with_style(intent, style)
    finally:
        _STYLE_SCHEMA.reset(token)
    statement = build_statement(styled_intent, schema)
    statement = _rewrite_statement(statement, style, schema)
    return to_sql(statement)
