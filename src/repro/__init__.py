"""repro: a reproduction of "The Dawn of Natural Language to SQL: Are We
Fully Ready?" (VLDB 2024) — the NL2SQL360 multi-angle evaluation testbed,
a 20-method model zoo over simulated LLM/PLM backbones, the NL2SQL360-AAS
design-space search, and the SuperSQL hybrid method.

Quickstart::

    from repro import build_benchmark, spider_like_config, Evaluator, build_method

    dataset = build_benchmark(spider_like_config(scale=0.2))
    evaluator = Evaluator(dataset)
    report = evaluator.evaluate_method(build_method("SuperSQL"))
    print(report.summary())
"""

from repro.core.evaluator import Evaluator
from repro.core.parallel import ParallelEvaluator
from repro.core.filter import DatasetFilter
from repro.core.logs import ExperimentLogStore
from repro.core.metrics import EvaluationRecord, MethodReport
from repro.core.qvt import qvt_score
from repro.core.aas import AASConfig, AASResult, run_aas
from repro.core.design_space import SearchSpace, random_config
from repro.core.compare import Comparison, compare_methods
from repro.core.dashboard import render_dashboard
from repro.core.findings import FindingResult, check_all
from repro.datagen.export import export_spider_format, load_spider_format
from repro.datagen.benchmark import (
    BenchmarkConfig,
    Dataset,
    Example,
    bird_like_config,
    build_benchmark,
    kaggle_dbqa_config,
    spider_like_config,
    spider_realistic_config,
)
from repro.methods.base import MethodGroup, NL2SQLMethod, PipelineMethod, Prediction
from repro.methods.zoo import build_method, default_zoo, method_config
from repro.modules.base import PipelineConfig
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_run_report,
    render_markdown,
    report_from_store,
    tracing,
)

__version__ = "1.0.0"

__all__ = [
    "Evaluator",
    "ParallelEvaluator",
    "DatasetFilter",
    "ExperimentLogStore",
    "EvaluationRecord",
    "MethodReport",
    "qvt_score",
    "AASConfig",
    "AASResult",
    "run_aas",
    "SearchSpace",
    "random_config",
    "BenchmarkConfig",
    "Dataset",
    "Example",
    "bird_like_config",
    "build_benchmark",
    "spider_like_config",
    "spider_realistic_config",
    "kaggle_dbqa_config",
    "render_dashboard",
    "Comparison",
    "compare_methods",
    "export_spider_format",
    "load_spider_format",
    "FindingResult",
    "check_all",
    "MethodGroup",
    "NL2SQLMethod",
    "PipelineMethod",
    "Prediction",
    "build_method",
    "default_zoo",
    "method_config",
    "PipelineConfig",
    "Tracer",
    "tracing",
    "MetricsRegistry",
    "build_run_report",
    "report_from_store",
    "render_markdown",
    "__version__",
]
