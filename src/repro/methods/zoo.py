"""The model zoo: every method the paper evaluates, as pipeline configs.

Module assignments follow the paper's Table 1 taxonomy row by row:
backbone, few-shot style, schema linking, DB content, generation strategy,
decoding, and post-processing.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.methods.base import MethodGroup, PipelineMethod
from repro.modules.base import PipelineConfig

# -- Prompt-based LLM methods -------------------------------------------------

_PROMPT_CONFIGS = {
    # C3: GPT-3.5, zero-shot, schema-linking filter + calibration bias
    # instructions (large prompt), self-consistency.
    "C3SQL": PipelineConfig(
        name="C3SQL",
        backbone="gpt-3.5-turbo",
        schema_linking="c3",
        prompting="zero_shot",
        decoding="greedy",
        post_processing="self_consistency",
        self_consistency_samples=5,
        prompt_overhead_tokens=3700,
    ),
    # DIN-SQL: GPT-4, manual few-shot, sub-question decomposition,
    # NatSQL IR, self-correction; famously enormous prompts.
    "DINSQL": PipelineConfig(
        name="DINSQL",
        backbone="gpt-4",
        schema_linking="resdsql",
        prompting="manual_fewshot",
        few_shot_k=6,
        multi_step="decompose",
        intermediate="natsql",
        decoding="greedy",
        post_processing="self_correction",
        prompt_overhead_tokens=5600,
    ),
    # DAIL-SQL: GPT-4, similarity-selected few-shot, lean prompt.
    "DAILSQL": PipelineConfig(
        name="DAILSQL",
        backbone="gpt-4",
        prompting="similarity_fewshot",
        few_shot_k=5,
        decoding="greedy",
        prompt_overhead_tokens=300,
    ),
    "DAILSQL(SC)": PipelineConfig(
        name="DAILSQL(SC)",
        backbone="gpt-4",
        prompting="similarity_fewshot",
        few_shot_k=5,
        decoding="greedy",
        post_processing="self_consistency",
        self_consistency_samples=5,
        prompt_overhead_tokens=300,
    ),
}

# -- Fine-tuned LLM methods ----------------------------------------------------

_SFT_CODES_SIZES = {"1B": "starcoder-1b", "3B": "starcoder-3b",
                    "7B": "starcoder-7b", "15B": "starcoder-15b"}

_FT_CONFIGS = {
    f"SFT CodeS-{size}": PipelineConfig(
        name=f"SFT CodeS-{size}",
        backbone=backbone,
        finetuned=True,
        schema_linking="resdsql",
        db_content="codes",
        prompting="zero_shot",
        decoding="beam",
        post_processing="execution_guided",
        beam_width=4,
    )
    for size, backbone in _SFT_CODES_SIZES.items()
}

# Zero-shot SQL-style prompting of open LLMs (Exp-5 baselines) and their
# SFT counterparts.
_OPEN_LLMS = ("llama2-7b", "llama3-8b", "starcoder-7b", "codellama-7b",
              "deepseek-coder-7b")

for _backbone in _OPEN_LLMS:
    _FT_CONFIGS[f"ZS {_backbone}"] = PipelineConfig(
        name=f"ZS {_backbone}",
        backbone=_backbone,
        prompting="zero_shot",
        decoding="greedy",
    )
    _FT_CONFIGS[f"SFT {_backbone}"] = PipelineConfig(
        name=f"SFT {_backbone}",
        backbone=_backbone,
        finetuned=True,
        prompting="zero_shot",
        decoding="greedy",
    )

# -- PLM methods -----------------------------------------------------------------

_RESDSQL_SIZES = {"Base": "t5-base", "Large": "t5-large", "3B": "t5-3b"}

_PLM_CONFIGS: dict[str, PipelineConfig] = {}
for _size, _backbone in _RESDSQL_SIZES.items():
    _PLM_CONFIGS[f"RESDSQL-{_size}"] = PipelineConfig(
        name=f"RESDSQL-{_size}",
        backbone=_backbone,
        finetuned=True,
        schema_linking="resdsql",
        db_content="codes",
        prompting="zero_shot",
        multi_step="skeleton",
        decoding="beam",
        post_processing="execution_guided",
        beam_width=8,
    )
    _PLM_CONFIGS[f"RESDSQL-{_size} + NatSQL"] = _PLM_CONFIGS[f"RESDSQL-{_size}"].with_(
        name=f"RESDSQL-{_size} + NatSQL",
        intermediate="natsql",
    )

_PLM_CONFIGS["Graphix-3B + PICARD"] = PipelineConfig(
    name="Graphix-3B + PICARD",
    backbone="t5-3b",
    finetuned=True,
    schema_linking="resdsql",
    db_content="codes",
    prompting="zero_shot",
    decoding="picard",
    beam_width=8,
)

# Remaining Table-1 PLM rows.
_PLM_CONFIGS["N-best Rerankers + PICARD"] = PipelineConfig(
    name="N-best Rerankers + PICARD",
    backbone="t5-3b",
    finetuned=True,
    schema_linking="resdsql",
    db_content="codes",
    prompting="zero_shot",
    decoding="picard",
    post_processing="reranker",
    beam_width=8,
)
_PLM_CONFIGS["T5 + NatSQL + Token Preprocessing"] = PipelineConfig(
    name="T5 + NatSQL + Token Preprocessing",
    backbone="t5-3b",
    finetuned=True,
    schema_linking="resdsql",
    db_content="codes",
    prompting="zero_shot",
    intermediate="natsql",
    decoding="greedy",
)
_PLM_CONFIGS["RASAT + PICARD"] = PipelineConfig(
    name="RASAT + PICARD",
    backbone="t5-3b",
    finetuned=True,
    schema_linking="resdsql",
    db_content="codes",
    prompting="zero_shot",
    decoding="picard",
    beam_width=8,
)
_PLM_CONFIGS["SHiP + PICARD"] = PipelineConfig(
    name="SHiP + PICARD",
    backbone="t5-3b",
    finetuned=True,
    db_content="codes",
    prompting="zero_shot",
    decoding="picard",
    beam_width=8,
)
_PLM_CONFIGS["T5-3B + PICARD"] = PipelineConfig(
    name="T5-3B + PICARD",
    backbone="t5-3b",
    finetuned=True,
    db_content="codes",
    prompting="zero_shot",
    decoding="picard",
    beam_width=8,
)
_PLM_CONFIGS["RATSQL + GAP + NatSQL"] = PipelineConfig(
    name="RATSQL + GAP + NatSQL",
    backbone="bart-large",
    finetuned=True,
    schema_linking="resdsql",
    db_content="codes",
    prompting="zero_shot",
    intermediate="natsql",
    decoding="greedy",
)
_PLM_CONFIGS["BRIDGE v2"] = PipelineConfig(
    name="BRIDGE v2",
    backbone="bert-large",
    finetuned=True,
    db_content="bridge",
    prompting="zero_shot",
    decoding="beam",
    beam_width=4,
)

# The remaining Table-1 LLM row: CodeS prompted (not fine-tuned).
_FT_CONFIGS["CodeS (few-shot)"] = PipelineConfig(
    name="CodeS (few-shot)",
    backbone="starcoder-15b",
    schema_linking="resdsql",
    db_content="codes",
    prompting="similarity_fewshot",
    few_shot_k=3,
    decoding="beam",
    post_processing="execution_guided",
    beam_width=4,
)
_FT_CONFIGS["MAC-SQL"] = PipelineConfig(
    name="MAC-SQL",
    backbone="gpt-4",
    schema_linking="c3",
    prompting="zero_shot",
    multi_step="decompose",
    decoding="greedy",
    post_processing="self_correction",  # the Refiner agent
    prompt_overhead_tokens=2500,
)

# -- SuperSQL (the AAS-discovered hybrid, paper §5.3) ------------------------------

_HYBRID_CONFIGS = {
    "SuperSQL": PipelineConfig(
        name="SuperSQL",
        backbone="gpt-4",
        schema_linking="resdsql",     # RESDSQL's schema linking
        db_content="bridge",          # BRIDGE v2's content matching
        prompting="similarity_fewshot",  # DAIL-SQL's example selection
        few_shot_k=5,
        decoding="greedy",            # OpenAI default decoding
        post_processing="self_consistency",  # DAIL-SQL(SC)'s voting
        self_consistency_samples=5,
        prompt_overhead_tokens=250,
    ),
}

METHOD_GROUPS: dict[str, MethodGroup] = {}
_ALL_CONFIGS: dict[str, PipelineConfig] = {}
for _name, _config in _PROMPT_CONFIGS.items():
    _ALL_CONFIGS[_name] = _config
    METHOD_GROUPS[_name] = MethodGroup.PROMPT_LLM
for _name, _config in _FT_CONFIGS.items():
    _ALL_CONFIGS[_name] = _config
    METHOD_GROUPS[_name] = (
        MethodGroup.FINETUNED_LLM if _config.finetuned else MethodGroup.PROMPT_LLM
    )
for _name, _config in _PLM_CONFIGS.items():
    _ALL_CONFIGS[_name] = _config
    METHOD_GROUPS[_name] = MethodGroup.PLM
for _name, _config in _HYBRID_CONFIGS.items():
    _ALL_CONFIGS[_name] = _config
    METHOD_GROUPS[_name] = MethodGroup.HYBRID

# The headline comparison set used in most tables/figures.
CORE_SPIDER_METHODS = [
    "C3SQL", "DINSQL", "DAILSQL", "DAILSQL(SC)",
    "SFT CodeS-1B", "SFT CodeS-3B", "SFT CodeS-7B", "SFT CodeS-15B",
    "RESDSQL-3B", "RESDSQL-3B + NatSQL", "Graphix-3B + PICARD",
    "SuperSQL",
]

# On BIRD the paper drops DIN-SQL (GPT budget) and NatSQL variants (no
# public NatSQL annotations), and retrains RESDSQL from scratch.
CORE_BIRD_METHODS = [
    "C3SQL", "DAILSQL", "DAILSQL(SC)",
    "SFT CodeS-1B", "SFT CodeS-3B", "SFT CodeS-7B", "SFT CodeS-15B",
    "RESDSQL-Base", "RESDSQL-Large", "RESDSQL-3B",
    "SuperSQL",
]


def method_config(name: str) -> PipelineConfig:
    """Config of a named zoo method."""
    try:
        return _ALL_CONFIGS[name]
    except KeyError as exc:
        raise EvaluationError(f"unknown method {name!r}") from exc


def build_method(name: str, seed: int = 0) -> PipelineMethod:
    """Instantiate a named zoo method (unprepared)."""
    return PipelineMethod(method_config(name), METHOD_GROUPS[name], seed=seed)


def with_repair(
    method: PipelineMethod,
    mode: str = "pattern_lm",
    budget: int | None = None,
) -> PipelineMethod:
    """Clone ``method`` with the self-repair stage enabled.

    Returns a fresh unprepared :class:`PipelineMethod` (same group and
    seed) whose config sets ``repair=mode`` and, when given,
    ``repair_budget=budget``; the original method is untouched.
    """
    changes: dict[str, object] = {"repair": mode}
    if budget is not None:
        changes["repair_budget"] = budget
    return PipelineMethod(
        method.config.with_(**changes), method.group, seed=method.seed
    )


def zoo_configs() -> dict[str, PipelineConfig]:
    """All registered method configs (copies are cheap: frozen dataclasses)."""
    return dict(_ALL_CONFIGS)


def default_zoo(names: list[str] | None = None, seed: int = 0) -> list[PipelineMethod]:
    """Instantiate a list of methods (default: the core Spider set)."""
    return [build_method(name, seed=seed) for name in (names or CORE_SPIDER_METHODS)]
