"""Method driver: runs a :class:`PipelineConfig` end-to-end.

``PipelineMethod`` is the single execution engine for every method in the
zoo and every AAS individual: it prepares the backbone (fine-tuning when
configured), builds the prompt through the pre-processing modules, decodes
candidates, applies the configured post-processing, optionally repairs a
failing final candidate (``config.repair``, see
:mod:`repro.modules.repair`), and accounts tokens, dollars, and latency.
Under an enabled tracer the candidate decoding, the post-processing
branch, and the repair attempt are timed as the ``decode`` /
``post_process`` / ``repair`` stages of the example span (see
:mod:`repro.obs.trace`).  With ``config.repair`` unset the repair stage
is never entered and the pipeline is bit-identical to a build without
it.

Inputs/outputs: an :class:`Example` plus its :class:`Database` in, one
:class:`Prediction` (SQL + resource accounting + error tags) out.

Thread/process safety: ``predict`` is read-only over prepared state, so
one prepared method may serve many threads; ``prepare`` must finish
first, single-threaded.  Methods rebuilt in worker processes via
:class:`~repro.core.parallel.MethodSpec` are prepared per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.datagen.benchmark import Dataset, Example
from repro.dbengine.database import Database
from repro.errors import EvaluationError
from repro.llm.decoding import (
    BeamDecoder,
    GreedyDecoder,
    PicardDecoder,
    SamplingDecoder,
    make_sampler,
)
from repro.llm.model import GenerationCandidate, SimulatedLanguageModel
from repro.llm.pricing import prompt_cost
from repro.llm.prompt import Prompt
from repro.llm.registry import get_profile
from repro.modules.base import PipelineConfig
from repro.modules.post_processing import (
    execution_guided_select,
    needs_correction,
    rerank_candidates,
    self_consistency_vote,
)
from repro.modules.prompts import build_prompt
from repro.modules.repair import RepairOutcome, RepairPatternStore, run_repair
from repro.modules.retrieval import FewShotIndex, index_for
from repro.obs.trace import get_tracer
from repro.sqlkit.picard import PicardChecker


class MethodGroup(str, Enum):
    """Method families used throughout the paper's figures."""

    PROMPT_LLM = "llm_prompt"
    FINETUNED_LLM = "llm_finetuned"
    PLM = "plm"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class Prediction:
    """Output of one method on one example, with resource accounting."""

    sql: str
    input_tokens: int = 0
    output_tokens: int = 0
    cost_usd: float = 0.0
    latency_s: float = 0.0
    num_candidates: int = 1
    errors: tuple[str, ...] = ()

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


class NL2SQLMethod:
    """Interface all methods implement."""

    name: str
    group: MethodGroup

    def prepare(self, dataset: Dataset) -> None:
        """One-time setup against a benchmark (fine-tuning, example bank)."""
        raise NotImplementedError

    def predict(self, example: Example, database: Database) -> Prediction:
        """Translate one example's question into SQL."""
        raise NotImplementedError


class PipelineMethod(NL2SQLMethod):
    """A method fully described by a :class:`PipelineConfig`."""

    def __init__(self, config: PipelineConfig, group: MethodGroup, seed: int = 0) -> None:
        self.config = config
        self.group = group
        self.name = config.name
        self.seed = seed
        self.model: SimulatedLanguageModel | None = None
        self._train_pairs: list[tuple[str, str]] = []
        self._fewshot_index: FewShotIndex | None = None
        self._prepared_on: str | None = None
        # Learned (error class, schema) -> correction pairs; per-method
        # so parallel workers rebuilding the method start cold (hits are
        # accounting-neutral, so cold and warm stores agree bit-exactly).
        self._repair_store: RepairPatternStore | None = (
            RepairPatternStore() if config.repair is not None else None
        )

    # -- setup ---------------------------------------------------------------

    def prepare(self, dataset: Dataset) -> None:
        profile = get_profile(self.config.backbone)
        model = SimulatedLanguageModel(profile, seed=self.seed)
        train_examples = dataset.train_examples
        if self.config.finetuned:
            model = model.fine_tune(dataset.name, train_examples)
        self.model = model
        self._train_pairs = [(e.question, e.gold_sql) for e in train_examples]
        self._fewshot_index = index_for(self._train_pairs)
        self._prepared_on = dataset.name

    def prepare_with_examples(self, dataset_name: str, examples: list[Example]) -> None:
        """Prepare against an explicit train subset (Exp-9 sweeps)."""
        profile = get_profile(self.config.backbone)
        model = SimulatedLanguageModel(profile, seed=self.seed)
        if self.config.finetuned:
            model = model.fine_tune(dataset_name, examples)
        self.model = model
        self._train_pairs = [(e.question, e.gold_sql) for e in examples]
        self._fewshot_index = index_for(self._train_pairs)
        self._prepared_on = dataset_name

    def _require_model(self) -> SimulatedLanguageModel:
        if self.model is None:
            raise EvaluationError(
                f"method {self.name!r} not prepared; call prepare(dataset) first"
            )
        return self.model

    # -- prediction ------------------------------------------------------------

    def predict(self, example: Example, database: Database) -> Prediction:
        model = self._require_model()
        config = self.config
        prompt = build_prompt(
            config,
            database,
            example.question,
            self._train_pairs,
            fewshot_index=self._fewshot_index,
        )
        sampler = make_sampler(
            model,
            prompt,
            database,
            uses_natsql=config.intermediate == "natsql",
            decomposed=config.multi_step is not None,
            overdecompose=config.multi_step == "decompose",
            style_divergence=config.style_divergence,
        )
        checker = PicardChecker(database.schema)
        trace = get_tracer()
        model_calls = 1

        if config.post_processing == "self_consistency":
            with trace.stage("decode"):
                candidates = SamplingDecoder(
                    num_samples=config.self_consistency_samples, temperature=0.5
                ).decode(sampler)
            with trace.stage("post_process"):
                final = self_consistency_vote(candidates, database)
        elif config.post_processing == "execution_guided":
            with trace.stage("decode"):
                candidates = self._decode(sampler, checker)
                if len(candidates) == 1:
                    candidates = BeamDecoder(width=config.beam_width).decode(sampler)
            with trace.stage("post_process"):
                final = execution_guided_select(candidates, database)
        elif config.post_processing == "reranker":
            with trace.stage("decode"):
                candidates = self._decode(sampler, checker)
                if len(candidates) == 1:
                    candidates = BeamDecoder(width=config.beam_width).decode(sampler)
            with trace.stage("post_process"):
                final = rerank_candidates(candidates, database, checker)
        elif config.post_processing == "self_correction":
            with trace.stage("decode"):
                candidates = self._decode(sampler, checker)
            final = candidates[0]
            with trace.stage("post_process"):
                if needs_correction(final, database):
                    # The model re-reads its own faulty SQL with the problem
                    # pointed out; a fresh focused draw with lower noise.
                    corrected = sampler(101, 0.0)
                    model_calls += 1
                    if not needs_correction(corrected, database):
                        final = corrected
                    candidates = candidates + [corrected]
        else:
            with trace.stage("decode"):
                candidates = self._decode(sampler, checker)
            final = candidates[0]

        repair = None
        if config.repair is not None and self._repair_store is not None:
            with trace.stage("repair"):
                repair = run_repair(
                    final,
                    database,
                    sampler=sampler,
                    config=config,
                    store=self._repair_store,
                    prompt_text=prompt.text,
                )
            final = repair.final

        return self._account(prompt, final, candidates, model_calls, repair)

    def _decode(
        self, sampler, checker: PicardChecker
    ) -> list[GenerationCandidate]:
        config = self.config
        if config.decoding == "greedy":
            return GreedyDecoder().decode(sampler)
        if config.decoding == "beam":
            return BeamDecoder(width=config.beam_width).decode(sampler)
        return PicardDecoder(width=config.beam_width).decode(sampler, checker)

    def _account(
        self,
        prompt: Prompt,
        final: GenerationCandidate,
        candidates: list[GenerationCandidate],
        model_calls: int,
        repair: RepairOutcome | None = None,
    ) -> Prediction:
        config = self.config
        profile = get_profile(config.backbone)
        repair_calls = repair.llm_calls if repair is not None else 0
        # Each repair re-draw re-sends the prompt, so it bills input
        # tokens like any other model call.  ``token_count`` is primed by
        # the prefix-cached prompt builder, so no text rescan happens.
        input_tokens = prompt.token_count * (model_calls + repair_calls)
        if profile.api_only:
            # Sampling via the API's n parameter bills the prompt once but
            # every sampled completion's output tokens.
            output_tokens = sum(c.output_tokens for c in candidates)
            if repair is not None:
                output_tokens += repair.output_tokens
        else:
            output_tokens = final.output_tokens
        cost = prompt_cost(config.backbone, input_tokens, output_tokens)
        if profile.api_only:
            # Remote API round trip, roughly independent of parameter count.
            per_call = 2.2 if profile.name == "gpt-4" else 0.9
        else:
            per_call = profile.latency_per_sample_s
        latency = per_call
        if config.intermediate == "natsql":
            # NatSQL outputs are shorter (no JOIN clauses): faster decoding
            # and a smaller decoder state (paper Table 6).
            latency *= 0.92
        if config.post_processing == "self_consistency":
            latency *= 1.0 + 0.12 * config.self_consistency_samples
        if repair_calls:
            # Repair re-draws are sequential round trips on top of the
            # base pipeline latency.
            latency += per_call * repair_calls
        return Prediction(
            sql=final.sql,
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            cost_usd=cost,
            latency_s=round(latency, 3),
            num_candidates=len(candidates),
            errors=final.errors,
        )

    # -- resources (Exp-7) -------------------------------------------------------

    @property
    def gpu_memory_gb(self) -> float:
        """Modelled GPU footprint; NatSQL variants need a smaller decoder."""
        profile = get_profile(self.config.backbone)
        memory = profile.gpu_memory_gb
        if self.config.intermediate == "natsql":
            memory *= 0.90
        return round(memory, 2)
