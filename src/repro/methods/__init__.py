"""NL2SQL method zoo: prompt-based LLMs, fine-tuned LLMs, PLMs, SuperSQL."""

from repro.methods.base import MethodGroup, NL2SQLMethod, PipelineMethod, Prediction
from repro.methods.zoo import (
    METHOD_GROUPS,
    build_method,
    default_zoo,
    method_config,
    zoo_configs,
)

__all__ = [
    "MethodGroup",
    "NL2SQLMethod",
    "PipelineMethod",
    "Prediction",
    "METHOD_GROUPS",
    "build_method",
    "default_zoo",
    "method_config",
    "zoo_configs",
]
