"""NLU substrate: lexicon normalization, schema linking, intent parsing."""

from repro.nlu.lexicon import HARD_PHRASES, Lexicon
from repro.nlu.linker import LinkedColumn, LinkedTable, SchemaLinker
from repro.nlu.intent_parser import IntentParser, NLUParseError

__all__ = [
    "HARD_PHRASES",
    "Lexicon",
    "LinkedColumn",
    "LinkedTable",
    "SchemaLinker",
    "IntentParser",
    "NLUParseError",
]
