"""Parse a normalized English question back into a :class:`QueryIntent`.

This is the genuine "understanding" step of the simulated language
models: the parser sees only the question text and the database schema
(never the gold intent), pattern-matches the question against the
template grammar, and resolves every phrase through the
:class:`SchemaLinker`.  Parsing can fail — on unresolved paraphrases, on
ambiguous schema links — and those failures propagate into model errors
exactly like a real model's misunderstandings would.
"""

from __future__ import annotations

import re

from repro.datagen.intents import (
    Aggregate,
    ColumnSel,
    Filter,
    HavingSpec,
    IntentShape,
    OrderSpec,
    QueryIntent,
    SubquerySpec,
)
from repro.errors import ReproError
from repro.nlu.lexicon import Lexicon
from repro.nlu.linker import SchemaLinker
from repro.schema.model import DatabaseSchema


class NLUParseError(ReproError):
    """Raised when a question cannot be parsed into an intent."""


_AGG_WORDS = {
    "number": Aggregate.COUNT,
    "average": Aggregate.AVG,
    "total": Aggregate.SUM,
    "minimum": Aggregate.MIN,
    "maximum": Aggregate.MAX,
}

_OP_PHRASES = [
    ("is not", "!="),
    ("is greater than", ">"),
    ("is less than", "<"),
    ("is at least", ">="),
    ("is at most", "<="),
    ("contains", "like"),
    ("is", "="),
]

_HAVING_OPS = {
    "more than": ">",
    "at least": ">=",
    "fewer than": "<",
    "at most": "<=",
}

_COL = r"[\w ,']+?"
_TBL = r"[\w ]+?"


def _parse_value(raw: str, op: str) -> object:
    raw = raw.strip().rstrip(".?")
    if raw.startswith("'") and raw.endswith("'") and len(raw) >= 2:
        text = raw[1:-1]
        if op == "like":
            return f"%{text}%"
        return text
    try:
        if re.fullmatch(r"-?\d+", raw):
            return int(raw)
        return float(raw)
    except ValueError as exc:
        raise NLUParseError(f"cannot parse value {raw!r}") from exc


class IntentParser:
    """Template-grammar question parser for one database schema."""

    def __init__(self, schema: DatabaseSchema, lexicon: Lexicon | None = None) -> None:
        self.schema = schema
        self.linker = SchemaLinker(schema)
        self.lexicon = lexicon or Lexicon.full()

    # -- public API -------------------------------------------------------

    def parse(self, question: str) -> QueryIntent:
        """Parse ``question`` into an intent.

        Raises:
            NLUParseError: when no template matches or linking fails.
        """
        text = self.lexicon.normalize(question)
        for matcher in (
            self._match_how_many,
            self._match_what_is,
            self._match_for_each,
            self._match_subquery_cmp,
            self._match_subquery_in,
            self._match_extreme,
            self._match_set_op,
            self._match_join_project,
            self._match_show,
        ):
            intent = matcher(text)
            if intent is not None:
                return intent
        raise NLUParseError(f"no template matches question: {question!r}")

    # -- linking helpers ----------------------------------------------------

    def _table(self, phrase: str) -> str:
        linked = self.linker.link_table(phrase.strip())
        if linked is None:
            raise NLUParseError(f"cannot link table phrase {phrase!r}")
        return linked.table.name

    def _column(self, phrase: str, tables: list[str] | None = None) -> ColumnSel:
        phrase = phrase.strip()
        if phrase in ("records", "record"):
            table = tables[0] if tables else self.schema.tables[0].name
            return ColumnSel(table=table, column="*")
        linked = self.linker.link_column(phrase, tables)
        if linked is None:
            raise NLUParseError(f"cannot link column phrase {phrase!r}")
        return ColumnSel(table=linked.table.name, column=linked.column.name)

    def _projection(self, phrase: str, tables: list[str]) -> tuple[ColumnSel, ...]:
        phrase = phrase.strip()
        parts: list[str] = []
        for chunk in phrase.split(","):
            chunk = chunk.strip()
            if " and " in chunk:
                left, right = chunk.rsplit(" and ", 1)
                parts.extend([left.strip(), right.strip()])
            elif chunk:
                parts.append(chunk)
        return tuple(self._column(part, tables) for part in parts if part)

    # -- filters ------------------------------------------------------------

    def _split_filters(self, text: str) -> list[tuple[str, str]]:
        """Split a filters tail into (connector, clause) pairs."""
        clauses: list[tuple[str, str]] = []
        pieces = re.split(r"\s+(and|or)\s+whose\s+", text)
        clauses.append(("and", pieces[0]))
        for i in range(1, len(pieces), 2):
            clauses.append((pieces[i], pieces[i + 1]))
        return clauses

    def _parse_filter_clause(
        self, clause: str, tables: list[str], connector: str = "and"
    ) -> Filter:
        clause = clause.strip().rstrip(".?")
        between = re.match(
            rf"(?P<col>{_COL}) is between (?P<low>[^ ]+) and (?P<high>[^ ]+)$", clause
        )
        if between:
            column = self._column(between.group("col"), tables)
            return Filter(
                column=column,
                op="between",
                value=_parse_value(between.group("low"), "between"),
                value2=_parse_value(between.group("high"), "between"),
                connector=connector,
            )
        for phrase, op in _OP_PHRASES:
            marker = f" {phrase} "
            if marker in clause:
                col_phrase, value_raw = clause.split(marker, 1)
                column = self._column(col_phrase, tables)
                return Filter(
                    column=column,
                    op=op,
                    value=_parse_value(value_raw, op),
                    connector=connector,
                )
        raise NLUParseError(f"cannot parse filter clause {clause!r}")

    def _parse_filters(self, tail: str | None, tables: list[str]) -> tuple[Filter, ...]:
        if not tail:
            return ()
        return tuple(
            self._parse_filter_clause(clause, tables, connector)
            for connector, clause in self._split_filters(tail)
        )

    # -- order / having tails -------------------------------------------------

    def _parse_order(self, text: str, tables: list[str]) -> tuple[str, OrderSpec | None]:
        """Strip and parse a ', sorted by ...' tail; returns (rest, order)."""
        match = re.search(
            r",? sorted by (?P<key>[\w *]+?) in (?P<dir>ascending|descending) order"
            r"(?:, showing only the top (?P<limit>\d+))?[.?]?$",
            text,
        )
        if not match:
            return text, None
        rest = text[: match.start()]
        key_phrase = match.group("key").strip()
        aggregate = Aggregate.NONE
        first_word = key_phrase.split(" ", 1)[0]
        if first_word in _AGG_WORDS:
            aggregate = _AGG_WORDS[first_word]
            remainder = key_phrase[len(first_word):].strip()
            if aggregate == Aggregate.COUNT or remainder in ("of records", "of record", ""):
                column = ColumnSel(table=tables[0], column="*")
                if aggregate != Aggregate.COUNT:
                    aggregate = Aggregate.COUNT
            else:
                column = self._column(remainder, tables)
        else:
            column = self._column(key_phrase, tables)
        direction = "desc" if match.group("dir") == "descending" else "asc"
        limit = int(match.group("limit")) if match.group("limit") else None
        return rest, OrderSpec(
            column=column, aggregate=aggregate, direction=direction, limit=limit
        )

    def _parse_having(self, text: str, tables: list[str]) -> tuple[str, HavingSpec | None]:
        match = re.search(
            r",? keeping only groups with (?P<op>more than|at least|fewer than|at most) "
            r"(?P<value>\d+) records?",
            text,
        )
        if not match:
            return text, None
        rest = text[: match.start()] + text[match.end():]
        having = HavingSpec(
            aggregate=Aggregate.COUNT,
            column=ColumnSel(table=tables[0], column="*"),
            op=_HAVING_OPS[match.group("op")],
            value=float(match.group("value")),
        )
        return rest, having

    # -- template matchers -----------------------------------------------------

    def _match_how_many(self, text: str) -> QueryIntent | None:
        match = re.match(
            rf"how many (?P<table>{_TBL}) are there(?: whose (?P<filters>.+))?\?$", text
        )
        if not match:
            return None
        table = self._table(match.group("table"))
        filters = self._parse_filters(match.group("filters"), [table])
        return QueryIntent(
            shape=IntentShape.AGG,
            db_id=self.schema.db_id,
            tables=(table,),
            projection=(),
            aggregate=Aggregate.COUNT,
            agg_column=ColumnSel(table=table, column="*"),
            filters=filters,
        )

    def _match_what_is(self, text: str) -> QueryIntent | None:
        match = re.match(
            rf"(?:what is|show) the (?P<agg>number|average|total|minimum|maximum) "
            rf"(?P<col>{_COL}) of (?:all|the) (?P<table>{_TBL})"
            rf"(?: whose (?P<filters>.+?))?[.?]$",
            text,
        )
        if not match:
            return None
        aggregate = _AGG_WORDS[match.group("agg")]
        table = self._table(match.group("table"))
        col_phrase = match.group("col").strip()
        if aggregate == Aggregate.COUNT or col_phrase in ("of records", "records"):
            agg_column = ColumnSel(table=table, column="*")
            aggregate = Aggregate.COUNT
        else:
            agg_column = self._column(col_phrase, [table])
        filters = self._parse_filters(match.group("filters"), [table])
        return QueryIntent(
            shape=IntentShape.AGG,
            db_id=self.schema.db_id,
            tables=(table,),
            projection=(),
            aggregate=aggregate,
            agg_column=agg_column,
            filters=filters,
        )

    def _match_for_each(self, text: str) -> QueryIntent | None:
        if not text.startswith("for each "):
            return None
        body = text
        # Group key phrase up to the first comma.
        match = re.match(r"for each (?P<key>[\w ]+?), show the (?P<rest>.+)$", body)
        if not match:
            raise NLUParseError(f"malformed group-by question: {text!r}")
        key_column = self._column(match.group("key"))
        parent = key_column.table
        rest = match.group("rest")
        related = re.search(rf" of the related (?P<child>{_TBL})(?=[,.])", rest)
        if related:
            child = self._table(related.group("child"))
            tables: tuple[str, ...] = (child, parent)
            rest = rest[: related.start()] + rest[related.end():]
        else:
            simple = re.search(rf" of the (?P<table>{_TBL})(?=[,.])", rest)
            if simple:
                child = self._table(simple.group("table"))
                rest = rest[: simple.start()] + rest[simple.end():]
            else:
                child = parent
            tables = (child,) if child == parent else (child, parent)
        link_tables = list(dict.fromkeys([child, parent]))
        rest, having = self._parse_having(rest, [child])
        rest, order = self._parse_order(rest, link_tables)
        agg_phrase = rest.strip().rstrip(".?").strip(", ")
        first_word = agg_phrase.split(" ", 1)[0]
        if first_word not in _AGG_WORDS:
            raise NLUParseError(f"cannot parse aggregate phrase {agg_phrase!r}")
        aggregate = _AGG_WORDS[first_word]
        remainder = agg_phrase[len(first_word):].strip()
        if aggregate == Aggregate.COUNT or remainder in ("of records", "of record", ""):
            aggregate = Aggregate.COUNT
            agg_column = ColumnSel(table=child, column="*")
        else:
            agg_column = self._column(remainder, [child])
        shape = IntentShape.JOIN_GROUP if len(tables) > 1 else IntentShape.GROUP_AGG
        return QueryIntent(
            shape=shape,
            db_id=self.schema.db_id,
            tables=tables,
            projection=(),
            aggregate=aggregate,
            agg_column=agg_column,
            group_by=key_column,
            having=having,
            order=order,
        )

    def _match_subquery_cmp(self, text: str) -> QueryIntent | None:
        match = re.match(
            rf"show the (?P<cols>{_COL}) of (?:all|the) (?P<table>{_TBL}) whose "
            rf"(?P<col>{_COL}) is (?P<dir>above|below) the average (?P<col2>{_COL})[.?]$",
            text,
        )
        if not match:
            return None
        table = self._table(match.group("table"))
        projection = self._projection(match.group("cols"), [table])
        column = self._column(match.group("col"), [table])
        subquery = SubquerySpec(
            outer_column=column,
            op=">" if match.group("dir") == "above" else "<",
            aggregate=Aggregate.AVG,
            inner_table=table,
            inner_column=column,
        )
        return QueryIntent(
            shape=IntentShape.SUBQUERY_CMP_AGG,
            db_id=self.schema.db_id,
            tables=(table,),
            projection=projection,
            subquery=subquery,
        )

    def _match_subquery_in(self, text: str) -> QueryIntent | None:
        match = re.match(
            rf"show the (?P<cols>{_COL}) of (?:all|the) (?P<parent>{_TBL}) that have "
            rf"(?P<mode>at least one|no) (?P<child>{_TBL}) whose (?P<filter>.+)[.?]$",
            text,
        )
        if not match:
            return None
        parent = self._table(match.group("parent"))
        child = self._table(match.group("child"))
        fks = self.schema.foreign_keys_between(child, parent)
        if not fks:
            raise NLUParseError(f"no FK between {parent!r} and {child!r}")
        fk = fks[0]
        if fk.source_table.lower() == child.lower():
            outer_col, inner_col = fk.target_column, fk.source_column
        else:
            outer_col, inner_col = fk.source_column, fk.target_column
        inner_filter = self._parse_filter_clause(match.group("filter"), [child])
        negated = match.group("mode") == "no"
        subquery = SubquerySpec(
            outer_column=ColumnSel(table=parent, column=outer_col),
            op="in",
            aggregate=Aggregate.NONE,
            inner_table=child,
            inner_column=ColumnSel(table=child, column=inner_col),
            inner_filter=inner_filter,
            negated=negated,
        )
        return QueryIntent(
            shape=IntentShape.SUBQUERY_NOT_IN if negated else IntentShape.SUBQUERY_IN,
            db_id=self.schema.db_id,
            tables=(parent,),
            projection=self._projection(match.group("cols"), [parent]),
            subquery=subquery,
        )

    def _match_extreme(self, text: str) -> QueryIntent | None:
        match = re.match(
            rf"show the (?P<cols>{_COL}) of the (?P<table>{_TBL}) with the "
            rf"(?P<dir>highest|lowest) (?P<col>{_COL})[.?]$",
            text,
        )
        if not match:
            return None
        table = self._table(match.group("table"))
        column = self._column(match.group("col"), [table])
        subquery = SubquerySpec(
            outer_column=column,
            op="=",
            aggregate=Aggregate.MAX if match.group("dir") == "highest" else Aggregate.MIN,
            inner_table=table,
            inner_column=column,
        )
        return QueryIntent(
            shape=IntentShape.EXTREME,
            db_id=self.schema.db_id,
            tables=(table,),
            projection=self._projection(match.group("cols"), [table]),
            subquery=subquery,
        )

    def _match_set_op(self, text: str) -> QueryIntent | None:
        match = re.match(
            rf"show the (?P<cols>{_COL}) of (?:all|the) (?P<table>{_TBL}) whose "
            r"(?P<first>.+?) (?P<op>and also whose|or alternatively whose|but not whose) "
            r"(?P<second>.+)[.?]$",
            text,
        )
        if not match:
            return None
        table = self._table(match.group("table"))
        projection = self._projection(match.group("cols"), [table])
        first = self._parse_filter_clause(match.group("first"), [table])
        second = self._parse_filter_clause(match.group("second"), [table])
        set_op = {
            "and also whose": "intersect",
            "or alternatively whose": "union",
            "but not whose": "except",
        }[match.group("op")]
        return QueryIntent(
            shape=IntentShape.SET_OP,
            db_id=self.schema.db_id,
            tables=(table,),
            projection=projection,
            filters=(first,),
            set_op=set_op,
            set_branch_filter=second,
        )

    def _match_join_project(self, text: str) -> QueryIntent | None:
        match = re.match(
            rf"show the (?P<cols1>{_COL}) of each (?P<table1>{_TBL}) together with the "
            rf"(?P<cols2>{_COL}) of its (?P<table2>{_TBL})"
            rf"(?: whose (?P<filters>.+?))?[.?]$",
            text,
        )
        if not match:
            return None
        table1 = self._table(match.group("table1"))
        table2 = self._table(match.group("table2"))
        projection = self._projection(match.group("cols1"), [table1]) + self._projection(
            match.group("cols2"), [table2]
        )
        filters = self._parse_filters(match.group("filters"), [table1, table2])
        return QueryIntent(
            shape=IntentShape.JOIN_PROJECT,
            db_id=self.schema.db_id,
            tables=(table1, table2),
            projection=projection,
            filters=filters,
        )

    def _match_show(self, text: str) -> QueryIntent | None:
        # An ORDER BY tail contains commas the table pattern cannot span,
        # so strip and parse it before matching the core template.  The
        # order key may reference any table, which is resolved after the
        # core match below.
        head = re.match(rf"show the .+? of (?:all|the) (?P<table>{_TBL})[,.?\s]", text)
        if not head:
            return None
        try:
            order_table = self._table(head.group("table"))
        except NLUParseError:
            return None
        rest_text, order = self._parse_order(text, [order_table])
        pattern = (
            rf"show the (?P<distinct>distinct )?(?P<cols>{_COL}) of (?:all|the) "
            rf"(?P<table>{_TBL})(?: whose (?P<filters>.+?))?[,.?]?$"
        )
        match = re.match(pattern, rest_text if order is not None else text)
        if not match:
            if order is not None:
                raise NLUParseError(f"cannot parse ordered question: {text!r}")
            return None
        table = self._table(match.group("table"))
        projection = self._projection(match.group("cols"), [table])
        filters = self._parse_filters(match.group("filters"), [table])
        shape = IntentShape.ORDER_TOP if order is not None else IntentShape.PROJECT
        return QueryIntent(
            shape=shape,
            db_id=self.schema.db_id,
            tables=(table,),
            projection=projection,
            distinct=bool(match.group("distinct")),
            filters=filters,
            order=order,
        )
