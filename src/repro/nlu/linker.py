"""Schema linking: map natural-language phrases to schema elements.

This is the substrate behind both the NLU intent parser and the
design-space *Schema Linking* module (RESDSQL-style ranking): tables and
columns are indexed by their display phrases and matched by a blend of
token-set Jaccard similarity and normalized edit distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.model import Column, DatabaseSchema, Table
from repro.utils.text import jaccard, normalized_similarity, singularize, tokenize_words


@dataclass(frozen=True)
class LinkedTable:
    """A table match with its linking score in [0, 1]."""

    table: Table
    score: float


@dataclass(frozen=True)
class LinkedColumn:
    """A column match (with owning table) and its linking score."""

    table: Table
    column: Column
    score: float


def _phrase_tokens(phrase: str) -> list[str]:
    return [singularize(token) for token in tokenize_words(phrase)]


def phrase_similarity(a: str, b: str) -> float:
    """Blend of token-set Jaccard and character-level similarity."""
    tokens_a, tokens_b = _phrase_tokens(a), _phrase_tokens(b)
    token_score = jaccard(tokens_a, tokens_b)
    char_score = normalized_similarity(" ".join(tokens_a), " ".join(tokens_b))
    return 0.65 * token_score + 0.35 * char_score


class SchemaLinker:
    """Ranks schema elements against NL phrases for one database."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema

    # -- tables -----------------------------------------------------------

    def rank_tables(self, phrase: str) -> list[LinkedTable]:
        """All tables ranked by similarity to ``phrase`` (best first)."""
        ranked = [
            LinkedTable(table=table, score=phrase_similarity(phrase, table.display_name))
            for table in self.schema.tables
        ]
        ranked.sort(key=lambda lt: (-lt.score, lt.table.name))
        return ranked

    def link_table(self, phrase: str, threshold: float = 0.5) -> LinkedTable | None:
        """Best table match above ``threshold``, or None."""
        ranked = self.rank_tables(phrase)
        if ranked and ranked[0].score >= threshold:
            return ranked[0]
        return None

    # -- columns ----------------------------------------------------------

    def rank_columns(
        self, phrase: str, tables: list[str] | None = None
    ) -> list[LinkedColumn]:
        """All columns (optionally restricted to ``tables``) ranked by similarity.

        Column phrases are scored both standalone and with the owning
        table's name prefixed, so "department name" finds
        ``departments.department_name`` and plain ``name`` columns match
        "student name" through their table context.
        """
        wanted = {name.lower() for name in tables} if tables else None
        ranked: list[LinkedColumn] = []
        for table in self.schema.tables:
            if wanted is not None and table.name.lower() not in wanted:
                continue
            for column in table.columns:
                direct = phrase_similarity(phrase, column.display_name)
                contextual = phrase_similarity(
                    phrase, f"{table.display_name} {column.display_name}"
                )
                score = max(direct, 0.92 * contextual)
                ranked.append(LinkedColumn(table=table, column=column, score=score))
        ranked.sort(key=lambda lc: (-lc.score, lc.table.name, lc.column.name))
        return ranked

    def link_column(
        self,
        phrase: str,
        tables: list[str] | None = None,
        threshold: float = 0.45,
    ) -> LinkedColumn | None:
        """Best column match above ``threshold``, or None."""
        ranked = self.rank_columns(phrase, tables)
        if ranked and ranked[0].score >= threshold:
            return ranked[0]
        return None

    # -- question-level linking (RESDSQL-style pruning) --------------------

    def relevant_tables(self, question: str, top_k: int = 4) -> list[str]:
        """Tables likely referenced by ``question``, for prompt pruning.

        Scores each table by the best similarity between any of its
        phrases (table name, column names) and the question's token
        windows; returns up to ``top_k`` table names, always at least one.
        """
        question_tokens = _phrase_tokens(question)
        scores: list[tuple[float, str]] = []
        for table in self.schema.tables:
            best = self._table_evidence(table, question_tokens)
            scores.append((best, table.name))
        scores.sort(key=lambda pair: (-pair[0], pair[1]))
        selected = [name for score, name in scores[:top_k] if score > 0.2]
        if not selected:
            selected = [scores[0][1]]
        return selected

    def _table_evidence(self, table: Table, question_tokens: list[str]) -> float:
        question_set = set(question_tokens)
        best = jaccard(_phrase_tokens(table.display_name), question_set & set(
            _phrase_tokens(table.display_name)
        )) if question_set else 0.0
        table_tokens = set(_phrase_tokens(table.display_name))
        best = len(table_tokens & question_set) / max(len(table_tokens), 1)
        for column in table.columns:
            column_tokens = set(_phrase_tokens(column.display_name))
            if not column_tokens:
                continue
            overlap = len(column_tokens & question_set) / len(column_tokens)
            best = max(best, 0.9 * overlap)
        return best
