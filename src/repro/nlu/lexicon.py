"""Phrase lexicon: normalize question surface forms back to canonical.

Two layers:

* **base rules** cover the canonical templates and the *easy* paraphrase
  rewrites — any language model resolves these;
* **hard rules** cover the rarer paraphrase rewrites.  Which hard rules a
  given model resolves is decided by the caller (the simulated LLM) via
  the ``enabled_hard`` set, so linguistic capability and dataset-specific
  fine-tuning manifest as lexicon coverage — exactly the mechanism behind
  the paper's query-variance findings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

# Base (easy) normalization rules, applied in order.  Patterns operate on
# lowercase text.
_BASE_RULES: list[tuple[str, str]] = [
    (r"\balong with\b", "together with"),
    (r"\b(?:list|display|give me|find|tell me) the\b", "show the"),
    (r"\bcount how many\b", "how many"),
    (r"\bis more than\b", "is greater than"),
    (r"\bis under\b", "is less than"),
    (r"\bis no less than\b", "is at least"),
    (r"\bis no more than\b", "is at most"),
    (r"\bordered by\b", "sorted by"),
]

# Hard rules: phrase key -> (pattern, replacement).  The phrase key is what
# paraphrase injected; a model lacking the key leaves the phrase in place.
_HARD_RULES: dict[str, tuple[str, str]] = {
    # Only reverse "with" -> "whose" when it introduces a filter clause
    # ("with <column phrase> is/contains ..."), never "with the highest"
    # (EXTREME) or "groups with more than N records" (HAVING).
    "with": (r"(?<!together )\bwith (?=[\w'\"\x00- ]+? (?:is|contains)\b)", "whose "),
    "mean": (r"\bmean\b", "average"),
    "biggest": (r"\bbiggest\b", "maximum"),
    "smallest": (r"\bsmallest\b", "minimum"),
    "sum of the": (r"\bsum of the\b", "total"),
    "do not have any": (r"\bdo not have any\b", "have no"),
    "are linked to some": (r"\bare linked to some\b", "have at least one"),
    "limited to the first": (r"\blimited to the first\b", "showing only the top"),
    "from highest to lowest": (r"\bfrom highest to lowest\b", "in descending order"),
    "from lowest to highest": (r"\bfrom lowest to highest\b", "in ascending order"),
    "exist": (r"\bexist\b", "are there"),
}

HARD_PHRASES: tuple[str, ...] = tuple(_HARD_RULES)


@dataclass
class Lexicon:
    """A normalizer with configurable hard-phrase coverage.

    Attributes:
        enabled_hard: The hard phrases this lexicon resolves.  Defaults to
            all of them (a perfect reader); simulated models shrink this
            set according to their linguistic capability.
    """

    enabled_hard: frozenset[str] = field(
        default_factory=lambda: frozenset(HARD_PHRASES)
    )

    def normalize(self, question: str) -> str:
        """Normalize ``question`` to canonical template phrasing.

        The text is lowercased *except* inside single-quoted value spans,
        whose original case must survive so that generated SQL literals
        match database contents.
        """
        literals: list[str] = []

        def _stash(match: re.Match[str]) -> str:
            literals.append(match.group(0))
            return f"\x00{len(literals) - 1}\x00"

        text = re.sub(r"'[^']*'", _stash, question.strip())
        text = text.lower()
        for pattern, replacement in _BASE_RULES:
            text = re.sub(pattern, replacement, text)
        for phrase in HARD_PHRASES:
            if phrase not in self.enabled_hard:
                continue
            pattern, replacement = _HARD_RULES[phrase]
            text = re.sub(pattern, replacement, text)
        text = re.sub(r"\s+", " ", text).strip()
        for index, literal in enumerate(literals):
            text = text.replace(f"\x00{index}\x00", literal)
        return text

    def unresolved_hard_phrases(self, question: str) -> list[str]:
        """Hard phrases present in ``question`` that this lexicon cannot resolve."""
        text = question.lower()
        missing = []
        for phrase in HARD_PHRASES:
            if phrase in self.enabled_hard:
                continue
            pattern, __ = _HARD_RULES[phrase]
            if re.search(pattern, text):
                missing.append(phrase)
        return missing

    @staticmethod
    def full() -> "Lexicon":
        """A lexicon resolving every known phrase."""
        return Lexicon()

    @staticmethod
    def with_coverage(enabled: frozenset[str] | set[str]) -> "Lexicon":
        """A lexicon resolving only ``enabled`` hard phrases."""
        return Lexicon(enabled_hard=frozenset(enabled))
